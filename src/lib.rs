//! Umbrella crate for the SBR reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single import root. Library users should depend on the member crates
//! directly.

pub use sbr_baselines as baselines;
pub use sbr_core as core;
pub use sbr_datasets as datasets;
pub use sbr_obs as obs;
pub use sensor_net;
