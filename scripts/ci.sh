#!/usr/bin/env bash
# Tier-1+ verification entry point: everything CI runs, runnable locally.
#
#   scripts/ci.sh            # full pass
#   scripts/ci.sh --no-bench # skip the fig5 smoke benchmark
#
# The build is fully offline: every external dependency is vendored under
# vendor/ and pinned by the committed Cargo.lock.

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> cargo build -p sbr-core --no-default-features"
# Guard: the obs facade's disabled half must keep compiling (callers are
# cfg-free, so a drift here only surfaces on minimal builds).
cargo build -p sbr-core --no-default-features --offline

echo "==> probe-cache differential suite (cache on vs off, byte-identical)"
# Guard: the Search probe cache is a pure evaluation-order optimization —
# the cached and legacy probe paths must emit byte-identical streams.
cargo test -q --offline --test probe_cache_diff

echo "==> GetBase fit-cache differential suite (cache on vs off, byte-identical)"
# Guard: the incremental GetBase fit cache (and the wire_profile f32
# pre-screen) only reorder evaluation — cached, legacy and pre-screened
# paths must emit byte-identical streams.
cargo test -q --offline --test get_base_incremental_diff

echo "==> query differential suite (compressed-domain engine vs full decode)"
# Guard: the compressed-domain query engine answers from closed-form
# interval moments — min/max must match the decode-then-scan baseline bit
# for bit, sums within 1e-9 relative, across metrics, strategies, thread
# counts and recovered station indexes.
cargo test -q --offline --test query_diff

echo "==> ARQ differential suite (reliable link: ARQ log == direct delivery)"
# Guard: the loss-tolerant v2 protocol is pure delivery mechanics — on a
# perfect channel its base-station log must be byte-identical to legacy
# direct delivery.
cargo test -q --offline --test arq_diff

echo "==> failure-injection suite (whole-frame bit-flip sweep + seeded chaos)"
cargo test -q --offline --test failure_injection

echo "==> chaos seed matrix (sbr simulate under drops, dups and reordering)"
# Guard: without crashes the ARQ retransmission loop must heal every
# injected fault — a handful of fixed seeds must end with 100% of the
# flushed chunks delivered.
for seed in 7 42 1337; do
  sim="$(cargo run -p sbr-cli --release --offline --bin sbr -- simulate \
    --nodes 3 --len 512 --batch 64 --loss 0.1 --fault-seed "$seed" \
    --drop 0.3 --dup 0.1 --reorder 0.05)"
  echo "$sim" | grep -q "(100.0%)" \
    || { echo "seed $seed: chunks lost after recovery:"; echo "$sim"; exit 1; } >&2
done

echo "==> crash recovery smoke (sbr simulate --crash-at, metrics render)"
# Guard: a mid-run crash must fire, force a resync (epoch bump), and the
# recovery counters must land in the metrics snapshot that `sbr report`
# renders. Chunks un-ACKed at the crash are sacrificed by design, so
# delivered fraction is not asserted here — post-resync byte-exactness is
# covered by the failure-injection suite above.
sim="$(cargo run -p sbr-cli --release --offline --bin sbr -- simulate \
  --nodes 3 --len 512 --batch 64 --loss 0.1 --fault-seed 42 \
  --drop 0.3 --dup 0.1 --reorder 0.05 --crash-at 1:3 \
  --metrics target/sim-metrics.json)"
echo "$sim" | grep -Eq "crashes +1$" \
  || { echo "scheduled crash did not fire:"; echo "$sim"; exit 1; } >&2
echo "$sim" | grep -Eq "resyncs +[1-9]" \
  || { echo "crash did not force a resync:"; echo "$sim"; exit 1; } >&2
rep="$(cargo run -p sbr-cli --release --offline --bin sbr -- report \
  --input target/sim-metrics.json)"
for counter in sensor_net.recovery.acks sensor_net.recovery.resyncs; do
  echo "$rep" | grep -q "$counter" \
    || { echo "report missing $counter" >&2; exit 1; }
done

echo "==> storage recovery smoke (simulate --store, inspect audits clean)"
# Guard: the segmented store must survive a real simulate run end to end —
# every sensor directory audits clean, and a second simulate into the same
# tree resumes from checkpoints instead of erroring.
storedir="$(mktemp -d)"
trap 'rm -rf "$storedir"' EXIT
cargo run -p sbr-cli --release --offline --bin sbr -- simulate \
  --nodes 2 --len 512 --batch 64 --store "$storedir/s" --segment-bytes 4096 \
  > /dev/null
insp="$(cargo run -p sbr-cli --release --offline --bin sbr -- storage inspect "$storedir/s")"
echo "$insp" | grep -q "sensor" \
  || { echo "storage inspect reported no sensor stores:"; echo "$insp"; exit 1; } >&2

echo "==> storage corruption negative smoke (a flipped byte must exit nonzero)"
# Guard: an auditor that passes damaged stores is worse than none. Flip one
# byte in the middle of a sealed segment and require a nonzero exit.
seg="$(find "$storedir/s" -name 'seg-00000000.sbrseg' | head -1)"
test -n "$seg" || { echo "simulate --store produced no sealed segment" >&2; exit 1; }
python3 - "$seg" <<'EOF'
import sys
p = sys.argv[1]
raw = bytearray(open(p, "rb").read())
raw[len(raw) // 2] ^= 0x10
open(p, "wb").write(raw)
EOF
if cargo run -p sbr-cli --release --offline --bin sbr -- storage inspect "$storedir/s" \
    > /dev/null 2>&1; then
  echo "storage inspect passed a store with a flipped byte" >&2; exit 1
fi
rm -rf "$storedir"
trap - EXIT

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> repolint (workspace static analysis, LINT_REPORT.json archived)"
# Guard: the invariants DESIGN.md §7b lists — panic-freedom zones, wire
# constant agreement, atomics/obs confinement, manifest audit. The report
# is written next to the other CI artifacts.
cargo run -p repolint --release --offline -- --json target/LINT_REPORT.json
test -s target/LINT_REPORT.json \
  || { echo "LINT_REPORT.json missing or empty" >&2; exit 1; }
grep -q '"schema": "repolint/v2"' target/LINT_REPORT.json \
  || { echo "LINT_REPORT.json lost its schema tag" >&2; exit 1; }

echo "==> repolint report drift check (committed LINT_REPORT.json vs fresh run)"
# Guard: the committed report is documentation of the workspace's lint
# state — it must match what the linter actually says, modulo the file
# count (which moves with unrelated tree changes).
python3 - <<'PYEOF'
import json, sys

def canon(path):
    doc = json.load(open(path))
    doc.pop("files_scanned", None)
    return doc

committed, fresh = canon("LINT_REPORT.json"), canon("target/LINT_REPORT.json")
if committed != fresh:
    sys.exit("committed LINT_REPORT.json is stale — regenerate with "
             "'cargo run -p repolint --offline -- --json LINT_REPORT.json'")
PYEOF

echo "==> repolint negative smoke (a seeded violation must exit 1)"
# Guard: a linter that silently passes everything is worse than none.
# Seed one unguarded panic into a scratch copy of a zone file and require
# exit code 1 plus the finding in the scratch report.
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
cp -r crates tests DESIGN.md Cargo.toml Cargo.lock "$smoke/"
mkdir -p "$smoke/vendor"
for v in vendor/*/; do mkdir "$smoke/$v"; done
# Three seeds in one scratch zone file: a direct unwrap (token rule), a
# narrowing cast on a length-like value (cast-truncation), and an unwrap
# two calls below a zone function (panic-reachability, with call path).
printf '\npub fn repolint_smoke() { let x: Option<u32> = None; x.unwrap(); }\n' \
  >> "$smoke/crates/sensor-net/src/storage.rs"
printf 'pub fn repolint_cast_smoke(count: u64) -> u32 { count as u32 }\n' \
  >> "$smoke/crates/sensor-net/src/storage.rs"
printf 'fn repolint_reach_inner() { let x: Option<u32> = None; x.unwrap(); }\n' \
  >> "$smoke/crates/sensor-net/src/storage.rs"
printf 'fn repolint_reach_mid() { repolint_reach_inner(); }\n' \
  >> "$smoke/crates/sensor-net/src/storage.rs"
printf 'pub fn repolint_reach_smoke() { repolint_reach_mid(); }\n' \
  >> "$smoke/crates/sensor-net/src/storage.rs"
if cargo run -p repolint --release --offline -- \
    --root "$smoke" --quiet --json "$smoke/LINT_REPORT.json"; then
  echo "repolint passed a tree with seeded violations" >&2; exit 1
fi
for rule in panic-free cast-truncation panic-reachability; do
  grep -q "\"rule\": \"$rule\"" "$smoke/LINT_REPORT.json" \
    || { echo "seeded $rule violation missing from the scratch report" >&2; exit 1; }
done
grep -q '"call_path"' "$smoke/LINT_REPORT.json" \
  || { echo "panic-reachability finding carries no call path" >&2; exit 1; }
rm -rf "$smoke"
trap - EXIT

if [ "$run_bench" = 1 ]; then
  echo "==> perf baseline snapshot (fig5 overwrites results/BENCH_SBR_v3.json)"
  # The committed baseline must be captured before fig5 runs, or the
  # regression gate below would compare the fresh run against itself.
  mkdir -p target
  cp results/BENCH_SBR_v3.json target/PERF_BASELINE.json

  echo "==> fig5 --quick (emits BENCH_SBR.json)"
  cargo run -p sbr-bench --release --offline --bin fig5 -- --quick
  test -s BENCH_SBR.json || { echo "BENCH_SBR.json missing or empty" >&2; exit 1; }
  echo "==> sbr report (smoke run over BENCH_SBR.json)"
  report="$(cargo run -p sbr-cli --release --offline --bin sbr -- report --input BENCH_SBR.json)"
  echo "$report" | grep -q "sbr-bench/v3" || { echo "report did not detect sbr-bench/v3" >&2; exit 1; }
  echo "$report" | grep -q "BestMap calls" || { echo "report missing pipeline counters" >&2; exit 1; }
  echo "$report" | grep -q "vs no cache" || { echo "report missing search speedup block" >&2; exit 1; }
  echo "$report" | grep -q "sensor_net.recovery" || { echo "report missing ARQ recovery counters" >&2; exit 1; }
  grep -q '"recovery": {' BENCH_SBR.json || { echo "BENCH_SBR.json missing recovery block" >&2; exit 1; }

  echo "==> perf smoke (get_base block: fit cache must actually engage)"
  # Guard: every fig5 record must carry the additive get_base block, and
  # the fit cache must report real traffic — hits == 0 would mean the
  # cached GetBase path silently stopped being exercised.
  grep -q '"get_base": {' BENCH_SBR.json \
    || { echo "BENCH_SBR.json missing get_base block" >&2; exit 1; }
  echo "$report" | grep -q "get_base:" \
    || { echo "report missing get_base block" >&2; exit 1; }
  # Records are one JSON object per line; sum fit_cache_hits across the
  # fig5 records and fail on zero.
  hits="$(grep -o '"fit_cache_hits": [0-9]*' BENCH_SBR.json \
    | awk -F': ' '{s += $2} END {print s+0}')"
  if [ "$hits" -eq 0 ]; then
    echo "fit_cache.hits == 0 on the quick fig5 sweep: incremental GetBase is not engaging" >&2
    exit 1
  fi
  echo "    fit_cache_hits total: $hits"

  echo "==> perf smoke (query block: plan cache must actually engage)"
  # Guard: the query_sweep record must carry the additive query block and
  # the plan cache must report real traffic — hits == 0 would mean the
  # compressed-domain engine silently stopped serving repeated queries.
  grep -q '"query": {' BENCH_SBR.json \
    || { echo "BENCH_SBR.json missing query block" >&2; exit 1; }
  echo "$report" | grep -q "query:" \
    || { echo "report missing query block" >&2; exit 1; }
  qhits="$(grep -o '"plan_cache_hits": [0-9]*' BENCH_SBR.json \
    | awk -F': ' '{s += $2} END {print s+0}')"
  if [ "$qhits" -eq 0 ]; then
    echo "plan_cache.hits == 0 on the quick query sweep: the plan cache is not engaging" >&2
    exit 1
  fi
  echo "    plan_cache_hits total: $qhits"
  echo "==> perf smoke (storage block: checkpoint replay must stay bounded)"
  # Guard: the storage_recovery records sweep history 10x; checkpointed
  # recovery must replay only the tail segment, so replayed_records must
  # NOT scale with total records — at the largest history it has to be
  # under a tenth of the store.
  grep -q '"storage": {' BENCH_SBR.json \
    || { echo "BENCH_SBR.json missing storage block" >&2; exit 1; }
  echo "$report" | grep -q "storage:" \
    || { echo "report missing storage block" >&2; exit 1; }
  grep -o '"storage": {[^}]*}' BENCH_SBR.json | awk '
    {
      match($0, /"records": [0-9]+/); n = substr($0, RSTART + 11, RLENGTH - 11)
      match($0, /"replayed_records": [0-9]+/); m = substr($0, RSTART + 20, RLENGTH - 20)
      if (n + 0 > maxn + 0) { maxn = n; maxm = m }
    }
    END {
      if (maxn == "") { print "no storage records parsed" > "/dev/stderr"; exit 1 }
      if (maxm * 10 > maxn) {
        printf "replayed_records %d scales with history %d: checkpoint recovery is not engaging\n", maxm, maxn > "/dev/stderr"
        exit 1
      }
    }' || exit 1

  test -s results/BENCH_SBR_v3.json \
    || { echo "results/BENCH_SBR_v3.json copy missing" >&2; exit 1; }

  echo "==> sbr perf diff (fresh fig5 --quick vs committed baseline, +25% gate)"
  # Guard: the regression gate compares the encode/search/get_base walls,
  # cache hit rates and recovery counters of the fresh quick run against
  # the committed baseline; a wall more than 25% over fails the build.
  # The full diff report is archived next to the other CI artifacts.
  cargo run -p sbr-cli --release --offline --bin sbr -- perf diff \
    target/PERF_BASELINE.json BENCH_SBR.json \
    --tolerance 0.25 --report target/PERF_DIFF.txt
  test -s target/PERF_DIFF.txt \
    || { echo "PERF_DIFF.txt missing or empty" >&2; exit 1; }

  echo "==> perf diff negative smoke (a seeded 30% wall regression must exit 1)"
  # Guard: a gate that passes everything is worse than none. Scale every
  # wall in a scratch candidate by 1.3x and require exit code 1 plus the
  # regression verdict in the archived report.
  awk '{
    out = ""; rest = $0
    while (match(rest, /"(avg_encode_secs|wall_secs)": [0-9.eE+-]+/)) {
      seg = substr(rest, RSTART, RLENGTH)
      sep = index(seg, ": ")
      out = out substr(rest, 1, RSTART - 1) substr(seg, 1, sep + 1) substr(seg, sep + 2) * 1.3
      rest = substr(rest, RSTART + RLENGTH)
    }
    print out rest
  }' target/PERF_BASELINE.json > target/PERF_REGRESSED.json
  if cargo run -p sbr-cli --release --offline --bin sbr -- perf diff \
      target/PERF_BASELINE.json target/PERF_REGRESSED.json \
      --report target/PERF_DIFF_SMOKE.txt; then
    echo "perf diff passed a candidate with a seeded 30% wall regression" >&2; exit 1
  fi
  grep -q "REGRESSION" target/PERF_DIFF_SMOKE.txt \
    || { echo "seeded regression missing from the smoke report" >&2; exit 1; }
fi

echo "CI pass complete."
