#!/usr/bin/env bash
# Tier-1+ verification entry point: everything CI runs, runnable locally.
#
#   scripts/ci.sh            # full pass
#   scripts/ci.sh --no-bench # skip the fig5 smoke benchmark
#
# The build is fully offline: every external dependency is vendored under
# vendor/ and pinned by the committed Cargo.lock.

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> cargo build -p sbr-core --no-default-features"
# Guard: the obs facade's disabled half must keep compiling (callers are
# cfg-free, so a drift here only surfaces on minimal builds).
cargo build -p sbr-core --no-default-features --offline

echo "==> probe-cache differential suite (cache on vs off, byte-identical)"
# Guard: the Search probe cache is a pure evaluation-order optimization —
# the cached and legacy probe paths must emit byte-identical streams.
cargo test -q --offline --test probe_cache_diff

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [ "$run_bench" = 1 ]; then
  echo "==> fig5 --quick (emits BENCH_SBR.json)"
  cargo run -p sbr-bench --release --offline --bin fig5 -- --quick
  test -s BENCH_SBR.json || { echo "BENCH_SBR.json missing or empty" >&2; exit 1; }
  echo "==> sbr report (smoke run over BENCH_SBR.json)"
  report="$(cargo run -p sbr-cli --release --offline --bin sbr -- report --input BENCH_SBR.json)"
  echo "$report" | grep -q "sbr-bench/v3" || { echo "report did not detect sbr-bench/v3" >&2; exit 1; }
  echo "$report" | grep -q "BestMap calls" || { echo "report missing pipeline counters" >&2; exit 1; }
  echo "$report" | grep -q "vs no cache" || { echo "report missing search speedup block" >&2; exit 1; }
fi

echo "CI pass complete."
