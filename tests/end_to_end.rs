//! Cross-crate integration tests: sensor → wire → base station → historical
//! reconstruction, over generated datasets.

use sbr_repro::core::{codec, Decoder, ErrorMetric, SbrConfig, SbrEncoder};
use sbr_repro::sensor_net::{BaseStation, EnergyModel, Network, Strategy, Topology};

fn weather_files(seed: u64, file_len: usize, files: usize) -> Vec<Vec<Vec<f64>>> {
    sbr_repro::datasets::weather(seed, file_len * files).chunk(file_len)
}

#[test]
fn ten_transmission_stream_roundtrips_within_budget() {
    let files = weather_files(1, 512, 10);
    let n = 6 * 512;
    let band = n / 10;
    let mut enc = SbrEncoder::new(6, 512, SbrConfig::new(band, 600)).unwrap();
    let mut dec = Decoder::new();
    let mut prev_sse = f64::INFINITY;
    let mut first_sse = None;
    for (t, rows) in files.iter().enumerate() {
        let tx = enc.encode(rows).unwrap();
        assert!(tx.cost() <= band, "tx {t} cost {} > {band}", tx.cost());

        // Through the wire format.
        let frame = codec::encode(&tx);
        let parsed = codec::decode(&mut frame.clone()).unwrap();
        assert_eq!(parsed, tx);

        let rec = dec.decode(&parsed).unwrap();
        let sse: f64 = rows
            .iter()
            .zip(&rec)
            .map(|(o, r)| ErrorMetric::Sse.score(o, r))
            .sum();
        if t == 0 {
            first_sse = Some(sse);
        }
        prev_sse = sse;
    }
    // The dictionary should help: the final transmission must not be an
    // order of magnitude worse than the first (same generator regime).
    assert!(prev_sse < first_sse.unwrap() * 10.0);
}

#[test]
fn decoded_error_equals_reported_error_across_datasets() {
    for (files, n_signals, m) in [
        (weather_files(2, 256, 3), 6, 256),
        (sbr_repro::datasets::stock(2, 5, 256 * 3).chunk(256), 5, 256),
        (
            sbr_repro::datasets::phone(2, 256 * 3, 64).chunk(256),
            15,
            256,
        ),
    ] {
        let band = n_signals * m / 5;
        let mut enc = SbrEncoder::new(n_signals, m, SbrConfig::new(band, 400)).unwrap();
        let mut dec = Decoder::new();
        for rows in &files {
            let tx = enc.encode(rows).unwrap();
            let rec = dec.decode(&tx).unwrap();
            let sse: f64 = rows
                .iter()
                .zip(&rec)
                .map(|(o, r)| ErrorMetric::Sse.score(o, r))
                .sum();
            let reported = enc.last_stats().unwrap().total_err;
            assert!(
                (sse - reported).abs() <= 1e-6 * (1.0 + sse.abs()),
                "decoded {sse} vs reported {reported}"
            );
        }
    }
}

#[test]
fn base_station_reconstruction_is_stable_across_replays() {
    let files = weather_files(3, 256, 5);
    let mut enc = SbrEncoder::new(6, 256, SbrConfig::new(300, 400)).unwrap();
    let station = BaseStation::new();
    for rows in &files {
        let tx = enc.encode(rows).unwrap();
        station.receive(1, codec::encode(&tx)).unwrap();
    }
    let a = station.reconstruct_chunks(1, 0, 5).unwrap();
    let b = station.reconstruct_chunks(1, 0, 5).unwrap();
    assert_eq!(a, b, "replay must be deterministic");
    let tail = station.reconstruct_chunks(1, 3, 5).unwrap();
    assert_eq!(tail[0], a[3]);
    assert_eq!(tail[1], a[4]);
}

#[test]
fn relative_metric_encoder_wins_on_relative_error() {
    // Same data and budget; the relative-metric encoder must be at least as
    // good on relative error as the SSE encoder (this is the Table 3
    // premise).
    let files = sbr_repro::datasets::phone(5, 512 * 4, 128).chunk(512);
    let n = 15 * 512;
    let band = n / 10;
    let score = |metric| {
        let cfg = SbrConfig::new(band, 512).with_metric(metric);
        let mut enc = SbrEncoder::new(15, 512, cfg).unwrap();
        let mut dec = Decoder::new();
        let mut rel = 0.0;
        for rows in &files {
            let tx = enc.encode(rows).unwrap();
            let rec = dec.decode(&tx).unwrap();
            for (o, r) in rows.iter().zip(&rec) {
                rel += ErrorMetric::relative().score(o, r);
            }
        }
        rel
    };
    let rel_metric = score(ErrorMetric::relative());
    let sse_metric = score(ErrorMetric::Sse);
    assert!(
        rel_metric <= sse_metric * 1.05,
        "relative encoder {rel_metric} should not lose to SSE encoder {sse_metric}"
    );
}

#[test]
fn network_sbr_is_cheaper_than_raw_and_better_than_aggregation() {
    let feeds: Vec<Vec<Vec<f64>>> = (0..4)
        .map(|i| sbr_repro::datasets::weather(20 + i, 512).signals[..3].to_vec())
        .collect();
    let run = |strategy: &Strategy| {
        let mut net = Network::new(Topology::random(5, 8.0, 3.0, 4), EnergyModel::default());
        net.simulate(&feeds, 256, strategy).unwrap()
    };
    let raw = run(&Strategy::Raw);
    let agg = run(&Strategy::Aggregate { window: 16 });
    let sbr = run(&Strategy::Sbr(SbrConfig::new(3 * 256 / 8, 200)));
    assert_eq!(raw.sse, 0.0);
    assert!(sbr.total_energy() < raw.total_energy() / 2.0);
    // At comparable (here: lower) bandwidth, SBR reconstructs better than
    // window-averaging.
    assert!(sbr.values_sent <= agg.values_sent);
    assert!(sbr.sse < agg.sse);
}

#[test]
fn max_abs_bound_survives_the_full_pipeline() {
    let files = weather_files(6, 256, 3);
    let cfg = SbrConfig::new(400, 400).with_metric(ErrorMetric::MaxAbs);
    let mut enc = SbrEncoder::new(6, 256, cfg).unwrap();
    let mut dec = Decoder::new();
    for rows in &files {
        let tx = enc.encode(rows).unwrap();
        let bound = enc.last_stats().unwrap().total_err;
        let frame = codec::encode(&tx);
        let rec = dec
            .decode(&codec::decode(&mut frame.clone()).unwrap())
            .unwrap();
        for (o, r) in rows.iter().zip(&rec) {
            let worst = ErrorMetric::MaxAbs.score(o, r);
            assert!(
                worst <= bound + 1e-9,
                "deviation {worst} exceeds advertised bound {bound}"
            );
        }
    }
}
