//! Property and sweep tests for segmented-store recovery: every possible
//! torn write is tolerated with a clean prefix, every possible single-bit
//! corruption of sealed history is rejected, and arbitrary garbage can
//! never panic the scanner.

use bytes::Bytes;
use proptest::prelude::*;
use sbr_repro::core::{codec, SbrConfig, SbrEncoder, SbrError};
use sbr_repro::sensor_net::storage::{
    self, sensor_dir, CheckpointState, SegmentWriter, DEFAULT_SEGMENT_BYTES, RECORD_OVERHEAD,
    SEG_HEADER,
};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sbr-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A short deterministic wire-frame stream.
fn frames(n: usize) -> Vec<Bytes> {
    let mut enc = SbrEncoder::new(2, 32, SbrConfig::new(40, 32)).expect("config");
    (0..n)
        .map(|c| {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..32)
                        .map(|i| ((i + c * 13 + r * 3) as f64 * 0.21).sin() * 4.0)
                        .collect()
                })
                .collect();
            codec::encode(&enc.encode(&rows).expect("encode"))
        })
        .collect()
}

fn fill(dir: &PathBuf, node: usize, segment_bytes: u64, fs: &[Bytes]) {
    let mut w = SegmentWriter::open(dir, node, segment_bytes).expect("open");
    for f in fs {
        w.append(f).expect("append");
    }
}

/// Crash-during-append, exhaustively: truncate the active segment at
/// *every* byte boundary. Recovery must succeed at each cut with exactly
/// the records fully contained in the surviving prefix — never a panic,
/// never a phantom record, and always idempotent (a second scan of the
/// repaired store reports a clean tail).
#[test]
fn every_tail_truncation_recovers_the_exact_clean_prefix() {
    let dir = tempdir("truncate-sweep");
    let fs = frames(3);
    fill(&dir, 1, DEFAULT_SEGMENT_BYTES, &fs);
    let path = sensor_dir(&dir, 1).join("seg-00000000.sbrseg");
    let full = std::fs::read(&path).expect("read segment");

    // Record end offsets: records[i] ends at SEG_HEADER + Σ framed sizes.
    let mut ends = Vec::new();
    let mut at = SEG_HEADER;
    for f in &fs {
        at += RECORD_OVERHEAD + f.len();
        ends.push(at);
    }
    assert_eq!(at, full.len(), "unsealed file is header + records");

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let rec = storage::scan(&dir, 1).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            rec.tail_frames.len(),
            expect,
            "cut at {cut} must keep exactly the complete records"
        );
        assert_eq!(
            rec.tail_frames,
            fs[..expect].to_vec(),
            "cut at {cut}: byte-exact prefix"
        );
        assert_eq!(rec.records_total, expect as u64);
        assert_eq!(rec.next_seq, expect as u64);
        // scan() repaired the store in place: a second scan is clean.
        let again = storage::scan(&dir, 1).expect("rescan after repair");
        assert_eq!(again.truncated_tail, 0, "cut at {cut}: repair is durable");
        assert_eq!(again.tail_frames.len(), expect);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes appended after a clean store (a crashed writer,
    /// a filesystem bug, an adversary) must recover the original records
    /// intact — either tolerated as a torn tail or rejected as Corrupt,
    /// and never, under any input, a panic or a phantom record.
    #[test]
    fn garbage_appends_never_panic_and_never_invent_records(
        garbage in prop::collection::vec(any::<u8>(), 1..160)
    ) {
        let dir = tempdir("garbage-prop");
        let fs = frames(2);
        fill(&dir, 1, DEFAULT_SEGMENT_BYTES, &fs);
        let path = sensor_dir(&dir, 1).join("seg-00000000.sbrseg");
        let mut raw = std::fs::read(&path).expect("read segment");
        raw.extend_from_slice(&garbage);
        std::fs::write(&path, &raw).expect("write garbage");
        match storage::scan(&dir, 1) {
            // Tolerated as a torn tail: the real records survive and the
            // garbage cannot add to them (it would need a valid CRC *and*
            // a parseable, continuity-respecting frame).
            Ok(rec) => {
                prop_assert_eq!(&rec.tail_frames, &fs);
                prop_assert_eq!(rec.truncated_tail, garbage.len());
            }
            // Or rejected loudly, blaming the damaged file.
            Err(SbrError::Corrupt(msg)) => prop_assert!(
                msg.contains("seg-00000000.sbrseg"),
                "corruption error must name the file: {}", msg
            ),
            Err(e) => prop_assert!(false, "unexpected error class: {}", e),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Flip every bit of every byte of a sealed, non-final segment: each one
/// must make recovery fail. Sealed history has no tolerated torn states
/// (that grace applies only to the final, active segment), every byte is
/// under a CRC (header, record framing, or footer — there is no
/// uncovered padding), and CRC-32 detects all single-bit errors, so a
/// single flip can never pass silently or quarantine more than the one
/// store it hit.
#[test]
fn every_bit_flip_in_sealed_history_is_rejected() {
    let dir = tempdir("bitflip-seg");
    let fs = frames(3);
    // Budget 1: every append seals, giving three sealed segments; flips
    // target segment 0, which is never the torn-tolerant last file.
    fill(&dir, 1, 1, &fs);
    let path = sensor_dir(&dir, 1).join("seg-00000000.sbrseg");
    let clean = std::fs::read(&path).expect("read segment");
    storage::scan(&dir, 1).expect("clean store scans");

    for i in 0..clean.len() {
        for bit in 0..8 {
            let mut raw = clean.clone();
            raw[i] ^= 1 << bit;
            std::fs::write(&path, &raw).expect("write flip");
            let err = storage::scan(&dir, 1);
            assert!(
                err.is_err(),
                "flip of byte {i} bit {bit} in a sealed segment scanned clean"
            );
        }
    }
    // Restore: the store is intact again once the flip is undone.
    std::fs::write(&path, &clean).expect("restore");
    assert_eq!(storage::scan(&dir, 1).expect("restored").tail_frames, fs);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The same sweep over a checkpoint file: every single-bit flip must be
/// caught by the checkpoint's whole-body CRC (or, for flips that somehow
/// kept the CRC's coverage, by the cross-checks against the segment
/// walk). Recovery never resumes from a damaged snapshot.
#[test]
fn every_bit_flip_in_a_checkpoint_is_rejected() {
    let dir = tempdir("bitflip-ck");
    let fs = frames(2);
    let mut w = SegmentWriter::open(&dir, 1, 1).expect("open");
    let mut payload = 0u64;
    for (i, f) in fs.iter().enumerate() {
        w.append(f).expect("append seals");
        payload += f.len() as u64;
        w.write_checkpoint(&CheckpointState {
            records: i as u64 + 1,
            payload_bytes: payload,
            epoch: 0,
            next_seq: i as u64 + 1,
            resync_at: None,
            base: None,
        })
        .expect("checkpoint");
    }
    // scan() resumes from the newest checkpoint, so flip that one.
    let path = sensor_dir(&dir, 1).join("ck-00000002.sbrck");
    let clean = std::fs::read(&path).expect("read checkpoint");
    storage::scan(&dir, 1).expect("clean store scans");

    for i in 0..clean.len() {
        for bit in 0..8 {
            let mut raw = clean.clone();
            raw[i] ^= 1 << bit;
            std::fs::write(&path, &raw).expect("write flip");
            assert!(
                storage::scan(&dir, 1).is_err(),
                "flip of byte {i} bit {bit} in a checkpoint scanned clean"
            );
        }
    }
    std::fs::write(&path, &clean).expect("restore");
    storage::scan(&dir, 1).expect("restored store scans");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
