//! Differential suite for the `Search` probe cache: the cached and legacy
//! probe paths must produce **byte-identical** transmission streams across
//! error metrics, shift strategies, thread counts, and the exhaustive
//! search — the cache is a pure evaluation-order optimization, never a
//! semantic change. Plus a probe-complexity test pinning the tentpole
//! claim: cached exhaustive search pays at most one full
//! `GetIntervals`-equivalent of base-prefix fit work, where the legacy
//! path pays one per probe.

use sbr_repro::core::base_signal::BaseSignal;
use sbr_repro::core::search::SearchContext;
use sbr_repro::core::{codec, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder, ShiftStrategy};
use sbr_repro::obs::{MetricsRecorder, Recorder as _, Snapshot};
use std::sync::Arc;

/// A patterned multi-chunk stream: affine images of a few repeating
/// wiggles, so `GetBase` finds real candidates and `Search` inserts some —
/// the base signal evolves across transmissions and the probe dictionaries
/// are non-trivial.
fn stream_chunks(n_chunks: usize, n_signals: usize, m: usize) -> Vec<Vec<Vec<f64>>> {
    (0..n_chunks)
        .map(|c| {
            (0..n_signals)
                .map(|s| {
                    (0..m)
                        .map(|i| {
                            let t = (i + c * m) as f64;
                            let pattern = (t * 0.9 + s as f64 * 2.1).sin() * 4.0
                                + (t * 0.23).cos() * 2.0
                                + ((i * 7 + s) % 5) as f64;
                            pattern * (1.0 + 0.1 * c as f64) + c as f64 - s as f64
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Encode the stream under `config`, returning one wire frame per
/// transmission.
fn encode_stream(chunks: &[Vec<Vec<f64>>], config: SbrConfig) -> Vec<Vec<u8>> {
    let n = chunks[0].len();
    let m = chunks[0][0].len();
    let mut enc = SbrEncoder::new(n, m, config).expect("valid config");
    chunks
        .iter()
        .map(|rows| codec::encode(&enc.encode(rows).expect("encode")).to_vec())
        .collect()
}

fn assert_streams_identical(chunks: &[Vec<Vec<f64>>], config: SbrConfig, label: &str) {
    let cached = encode_stream(chunks, config.clone().with_probe_cache(true));
    let legacy = encode_stream(chunks, config.with_probe_cache(false));
    assert_eq!(cached.len(), legacy.len());
    for (t, (a, b)) in cached.iter().zip(&legacy).enumerate() {
        assert_eq!(
            a, b,
            "[{label}] transmission {t}: cached and legacy frames differ"
        );
    }
}

#[test]
fn byte_identical_across_metrics_strategies_and_threads() {
    let chunks = stream_chunks(5, 2, 64);
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::relative(),
        ErrorMetric::MaxAbs,
    ] {
        for strategy in [
            ShiftStrategy::Auto,
            ShiftStrategy::Direct,
            ShiftStrategy::Fft,
        ] {
            for threads in [1usize, 4] {
                let config = SbrConfig::new(72, 64)
                    .with_metric(metric)
                    .with_shift_strategy(strategy)
                    .with_threads(threads);
                assert_streams_identical(
                    &chunks,
                    config,
                    &format!("{metric:?}/{strategy:?}/t{threads}"),
                );
            }
        }
    }
}

#[test]
fn byte_identical_on_exhaustive_search() {
    let chunks = stream_chunks(4, 2, 64);
    for threads in [1usize, 4] {
        let mut config = SbrConfig::new(80, 80).with_threads(threads);
        config.exhaustive_search = true;
        assert_streams_identical(&chunks, config, &format!("exhaustive/t{threads}"));
    }
}

#[test]
fn byte_identical_without_fallback_and_with_error_target() {
    let chunks = stream_chunks(3, 2, 64);
    let no_fallback = SbrConfig::new(72, 64).without_fallback();
    assert_streams_identical(&chunks, no_fallback, "no-fallback");
    let mut targeted = SbrConfig::new(96, 64);
    targeted.error_target = Some(50.0);
    assert_streams_identical(&chunks, targeted, "error-target");
}

/// Drive one `Search` (no encoder around it, so the counters are not
/// polluted by `GetBase` or the final `GetIntervals`) and snapshot its
/// metrics.
fn run_search(
    base: &BaseSignal,
    cands: &[Vec<f64>],
    data: &MultiSeries,
    w: usize,
    config: SbrConfig,
) -> (usize, usize, Snapshot) {
    let rec = Arc::new(MetricsRecorder::new());
    let config = config.with_recorder(rec.clone());
    let mut s = SearchContext::new(base, cands, data, w, &config);
    let ins = s.run();
    (ins, s.probes(), rec.snapshot())
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

#[test]
fn cached_exhaustive_search_does_one_getintervals_of_base_fit_work() {
    // A non-empty base plus ranked candidates, searched exhaustively with
    // one thread so the accounting is exact.
    let w = 8;
    let data = {
        let row: Vec<f64> = (0..192)
            .map(|i| {
                let t = i as f64;
                (t * 1.1).sin() * 4.0 + (t * 0.31).cos() * 2.0 + ((i * 5) % 7) as f64
            })
            .collect();
        MultiSeries::from_rows(&[row]).unwrap()
    };
    let mut base = BaseSignal::new(w);
    for slot in 0..3 {
        let vals: Vec<f64> = (0..w)
            .map(|i| ((slot * w + i) as f64 * 0.7).sin() * 3.0)
            .collect();
        base.apply_insert(slot, &vals, 0).unwrap();
    }
    let cands = sbr_repro::core::get_base::get_base(&data, w, 10, ErrorMetric::Sse);
    assert!(cands.len() >= 4, "need a real candidate set");

    let mut config = SbrConfig::new(240, 800).with_w(w).with_threads(1);
    config.exhaustive_search = true;

    let (ins_cached, probes, cached) = run_search(
        &base,
        &cands,
        &data,
        w,
        config.clone().with_probe_cache(true),
    );
    let (ins_legacy, _, legacy) = run_search(
        &base,
        &cands,
        &data,
        w,
        config.clone().with_probe_cache(false),
    );
    assert_eq!(ins_cached, ins_legacy, "same insertion count either way");
    assert!(probes > cands.len(), "exhaustive search probed every count");

    // The cached search never runs a full-dictionary sweep: all its fit
    // work is region-restricted.
    let cached_full = counter(&cached, "sbr_core.best_map.direct_sweeps")
        + counter(&cached, "sbr_core.best_map.fft_sweeps");
    assert_eq!(
        cached_full, 0,
        "cached probes must not re-sweep the dictionary"
    );

    // Base-prefix fit work: at most one sweep per distinct (start, len) —
    // i.e. at most one full GetIntervals-equivalent across ALL probes,
    // where the legacy path pays one sweep per interval per probe.
    let base_sweeps = counter(&cached, "sbr_core.best_map.base_direct_sweeps")
        + counter(&cached, "sbr_core.best_map.base_fft_sweeps");
    let entries = counter(&cached, "sbr_core.probe_cache.misses");
    assert!(
        base_sweeps <= entries,
        "base prefix swept {base_sweeps} times for {entries} cache entries"
    );
    let legacy_full = counter(&legacy, "sbr_core.best_map.direct_sweeps")
        + counter(&legacy, "sbr_core.best_map.fft_sweeps");
    assert!(
        legacy_full >= 2 * base_sweeps,
        "sharing must beat per-probe re-fitting: legacy {legacy_full} full sweeps \
         vs cached {base_sweeps} base-region sweeps"
    );
    // Each candidate region is swept at most once per entry.
    let cand_sweeps = counter(&cached, "sbr_core.best_map.cand_direct_sweeps")
        + counter(&cached, "sbr_core.best_map.cand_fft_sweeps");
    assert!(
        cand_sweeps <= entries * cands.len() as u64,
        "{cand_sweeps} candidate sweeps exceeds one region pass per candidate \
         per entry ({entries} × {})",
        cands.len()
    );
    // And the cache actually got re-used: hits are fits answered without
    // any new sweeping.
    assert!(
        counter(&cached, "sbr_core.probe_cache.hits") > 0,
        "exhaustive probing must hit the cache"
    );
}
