//! Differential suite: the compressed-domain [`QueryEngine`] vs. the
//! full-decode [`aggregate_stream`] baseline it replaces.
//!
//! Min/max must agree **bit for bit** on every range — the moment
//! builders evaluate the decoder's exact floating-point expressions, so
//! there is no tolerance to hide behind. Sums are accumulated in a
//! different association order (per-interval prefix moments vs. one long
//! left-to-right fold), so sum/avg get a 1e-9 relative tolerance.
//! The contract must hold across error metrics, shift strategies, worker
//! thread counts, and a persisted-then-recovered base-station index.

use sbr_repro::core::query::aggregate_stream;
use sbr_repro::core::{
    codec, Aggregate, Decoder, QueryEngine, SbrConfig, SbrEncoder, ShiftStrategy, Transmission,
};
use sbr_repro::sensor_net::BaseStation;

/// `n_signals` drifting signals chunked into `chunks` batches of `m`.
fn chunked(n_signals: usize, m: usize, chunks: usize, seed: f64) -> Vec<Vec<Vec<f64>>> {
    (0..chunks)
        .map(|c| {
            (0..n_signals)
                .map(|s| {
                    (0..m)
                        .map(|i| {
                            let t = (c * m + i) as f64;
                            (t * 0.13 + s as f64 + seed).sin() * 6.0
                                + (t * 0.011).cos() * 2.0
                                + c as f64 * 0.4
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn encode_stream(files: &[Vec<Vec<f64>>], config: SbrConfig) -> Vec<Transmission> {
    let n = files[0].len();
    let m = files[0][0].len();
    let mut enc = SbrEncoder::new(n, m, config).expect("config");
    files
        .iter()
        .map(|rows| enc.encode(rows).expect("encode"))
        .collect()
}

/// Assert the engine and the streaming baseline agree on `[t0, t1)`:
/// count and min/max exact (bit for bit), sum/avg within 1e-9 relative.
fn assert_agree(
    engine: &mut QueryEngine,
    txs: &[Transmission],
    signal: usize,
    t0: usize,
    t1: usize,
) {
    let fast = engine.aggregate(signal, t0, t1).expect("engine aggregate");
    let mut decoder = Decoder::new();
    let slow = aggregate_stream(&mut decoder, txs, signal, t0, t1).expect("decode aggregate");
    assert_eq!(fast.count, slow.count, "count [{t0}, {t1})");
    assert_eq!(
        fast.min.to_bits(),
        slow.min.to_bits(),
        "min differs on [{t0}, {t1}): {} vs {}",
        fast.min,
        slow.min
    );
    assert_eq!(
        fast.max.to_bits(),
        slow.max.to_bits(),
        "max differs on [{t0}, {t1}): {} vs {}",
        fast.max,
        slow.max
    );
    let tol = 1e-9 * slow.sum.abs().max(1.0);
    assert!(
        (fast.sum - slow.sum).abs() <= tol,
        "sum differs on [{t0}, {t1}): {} vs {}",
        fast.sum,
        slow.sum
    );
    let atol = 1e-9 * slow.avg.abs().max(1.0);
    assert!(
        (fast.avg - slow.avg).abs() <= atol,
        "avg differs on [{t0}, {t1}): {} vs {}",
        fast.avg,
        slow.avg
    );
    // The scalar entry points agree with aggregate(): min/max share the
    // full-moments plan (bit-exact); sum/avg come from the dedicated
    // prefix-sum plan, a different association order again.
    for (agg, want) in [(Aggregate::Min, fast.min), (Aggregate::Max, fast.max)] {
        let got = engine.query(signal, t0, t1, agg).expect("engine query");
        assert_eq!(got.to_bits(), want.to_bits(), "{agg:?} vs aggregate()");
    }
    for (agg, want) in [(Aggregate::Sum, fast.sum), (Aggregate::Avg, fast.avg)] {
        let got = engine.query(signal, t0, t1, agg).expect("engine query");
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "{agg:?} vs aggregate(): {got} vs {want}"
        );
    }
}

#[test]
fn chunk_aligned_ranges_are_bit_exact() {
    let m = 64;
    let files = chunked(3, m, 6, 0.0);
    let txs = encode_stream(&files, SbrConfig::new(80, 48));
    let mut engine = QueryEngine::from_transmissions(&txs).expect("index");
    for signal in 0..3 {
        for c0 in 0..6 {
            for c1 in (c0 + 1)..=6 {
                assert_agree(&mut engine, &txs, signal, c0 * m, c1 * m);
            }
        }
    }
}

#[test]
fn split_ranges_agree_within_the_documented_bound() {
    let m = 64;
    let files = chunked(2, m, 5, 1.7);
    let txs = encode_stream(&files, SbrConfig::new(60, 48));
    let mut engine = QueryEngine::from_transmissions(&txs).expect("index");
    let total = 5 * m;
    // Deterministic unaligned ranges: single-sample, intra-chunk,
    // boundary-straddling, and nearly-whole-log windows.
    let ranges = [
        (0, 1),
        (m - 1, m + 1),
        (7, 23),
        (m / 2, 3 * m + 11),
        (2 * m - 3, 2 * m + 3),
        (1, total - 1),
        (total - m - 7, total),
    ];
    for signal in 0..2 {
        for &(t0, t1) in &ranges {
            assert_agree(&mut engine, &txs, signal, t0, t1);
        }
    }
}

#[test]
fn agreement_holds_across_metrics_strategies_and_threads() {
    let m = 64;
    let files = chunked(2, m, 4, 0.9);
    let configs = [
        SbrConfig::new(70, 48).with_metric(sbr_repro::core::ErrorMetric::relative()),
        SbrConfig::new(70, 48).with_shift_strategy(ShiftStrategy::Direct),
        SbrConfig::new(70, 48).with_shift_strategy(ShiftStrategy::Fft),
        SbrConfig::new(70, 48).with_threads(1),
        SbrConfig::new(70, 48).with_threads(4),
        SbrConfig::new(70, 48).frozen_base(),
    ];
    for config in configs {
        let txs = encode_stream(&files, config);
        let mut engine = QueryEngine::from_transmissions(&txs).expect("index");
        for &(t0, t1) in &[
            (0, 4 * m),
            (m, 3 * m),
            (17, 2 * m + 5),
            (3 * m - 1, 3 * m + 1),
        ] {
            assert_agree(&mut engine, &txs, 1, t0, t1);
        }
    }
}

#[test]
fn station_index_agrees_after_recover() {
    let dir = std::env::temp_dir().join(format!("sbr-query-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = 64;
    let files = chunked(2, m, 4, 2.3);
    let txs = encode_stream(&files, SbrConfig::new(64, 64));
    {
        let station = BaseStation::with_persistence(&dir);
        for tx in &txs {
            station.receive(9, codec::encode(tx)).expect("receive");
        }
    }
    // A cold process: the log is re-ingested from disk and the chunk
    // index rebuilt; the fast path must still match both the station's
    // own decode path and the raw streaming baseline.
    let station = BaseStation::load(&dir).expect("load");
    for &(t0, t1) in &[(0, 4 * m), (m, 3 * m), (5, 2 * m + 9), (2 * m, 2 * m + 1)] {
        let fast = station.aggregate_range(9, 0, t0, t1).expect("fast");
        let slow = station.aggregate_range_decode(9, 0, t0, t1).expect("slow");
        assert_eq!(fast.count, slow.count);
        assert_eq!(fast.min.to_bits(), slow.min.to_bits());
        assert_eq!(fast.max.to_bits(), slow.max.to_bits());
        assert!((fast.sum - slow.sum).abs() <= 1e-9 * slow.sum.abs().max(1.0));
        let mut decoder = Decoder::new();
        let raw = aggregate_stream(&mut decoder, &txs, 0, t0, t1).expect("raw");
        assert_eq!(fast.min.to_bits(), raw.min.to_bits());
        assert_eq!(fast.max.to_bits(), raw.max.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
