//! Concurrency: one `BaseStation` shared by many receiver threads (the
//! reason its logs sit behind `parking_lot::Mutex`), with queries running
//! while ingest continues.

use std::sync::Arc;

use sbr_repro::core::{codec, SbrConfig, SbrEncoder};
use sbr_repro::sensor_net::BaseStation;

fn sensor_frames(sensor: u64, chunks: usize) -> Vec<bytes::Bytes> {
    let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(64, 48)).unwrap();
    (0..chunks)
        .map(|c| {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| {
                            ((i + c * 64) as f64 * 0.21 + sensor as f64 + r as f64).sin() * 6.0
                        })
                        .collect()
                })
                .collect();
            codec::encode(&enc.encode(&rows).unwrap())
        })
        .collect()
}

#[test]
fn parallel_ingest_from_many_sensors() {
    let station = Arc::new(BaseStation::new());
    let n_sensors = 8;
    let chunks = 12;
    std::thread::scope(|scope| {
        for s in 0..n_sensors {
            let station = Arc::clone(&station);
            scope.spawn(move || {
                for f in sensor_frames(s as u64, chunks) {
                    station.receive(s + 1, f).unwrap();
                }
            });
        }
    });
    assert_eq!(station.sensors().len(), n_sensors);
    for s in 1..=n_sensors {
        assert_eq!(station.chunk_count(s), chunks);
        let rec = station.reconstruct_chunks(s, 0, chunks).unwrap();
        assert_eq!(rec.len(), chunks);
    }
}

#[test]
fn queries_concurrent_with_ingest() {
    let station = Arc::new(BaseStation::with_checkpoint_interval(3));
    // Pre-load sensor 1 so queries always have data.
    for f in sensor_frames(1, 10) {
        station.receive(1, f).unwrap();
    }
    std::thread::scope(|scope| {
        // Writer: sensor 2 streams in.
        {
            let station = Arc::clone(&station);
            scope.spawn(move || {
                for f in sensor_frames(2, 20) {
                    station.receive(2, f).unwrap();
                }
            });
        }
        // Readers: hammer sensor 1 with historical queries meanwhile.
        for _ in 0..3 {
            let station = Arc::clone(&station);
            scope.spawn(move || {
                for _ in 0..30 {
                    let agg = station.aggregate_range(1, 0, 100, 500).unwrap();
                    assert_eq!(agg.count, 400);
                    assert!(agg.min <= agg.avg && agg.avg <= agg.max);
                    let chunks = station.reconstruct_chunks(1, 4, 7).unwrap();
                    assert_eq!(chunks.len(), 3);
                }
            });
        }
    });
    assert_eq!(station.chunk_count(2), 20);
}

#[test]
fn per_sensor_streams_are_independent() {
    // A bad frame from one sensor must not disturb another's stream.
    let station = BaseStation::new();
    let a = sensor_frames(1, 3);
    let b = sensor_frames(2, 3);
    station.receive(1, a[0].clone()).unwrap();
    station.receive(2, b[0].clone()).unwrap();
    assert!(station.receive(1, a[2].clone()).is_err()); // gap on sensor 1
    station.receive(2, b[1].clone()).unwrap(); // sensor 2 unaffected
    station.receive(1, a[1].clone()).unwrap(); // sensor 1 recovers
    station.receive(1, a[2].clone()).unwrap();
    assert_eq!(station.chunk_count(1), 3);
    assert_eq!(station.chunk_count(2), 2);
}

/// Encode a few evolving batches and return the exact transmitted bytes.
fn stream_bytes(config: SbrConfig) -> Vec<Vec<u8>> {
    let mut enc = SbrEncoder::new(2, 256, config).unwrap();
    (0..4)
        .map(|round| {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..256)
                        .map(|i| {
                            ((i % 32) as f64 * 0.7 + r as f64).sin() * 5.0
                                + ((i + round * 19) as f64 * 0.23).cos() * (round + 1) as f64
                        })
                        .collect()
                })
                .collect();
            codec::encode(&enc.encode(&rows).unwrap()).to_vec()
        })
        .collect()
}

#[test]
fn thread_count_never_changes_the_transmissions() {
    // The fan-out shards work by index and reduces in index order, so the
    // byte stream a sensor emits must be identical for every worker count.
    let reference = stream_bytes(SbrConfig::new(200, 200).with_threads(1));
    for threads in [2usize, 8] {
        let other = stream_bytes(SbrConfig::new(200, 200).with_threads(threads));
        assert_eq!(
            reference, other,
            "num_threads = {threads} changed the output"
        );
    }
}

#[test]
fn live_recorder_never_changes_the_transmissions() {
    // Instrumentation is observation only: attaching a live MetricsRecorder
    // must leave the byte stream untouched while still collecting counts.
    use sbr_repro::obs::{MetricsRecorder, Recorder as _};
    let reference = stream_bytes(SbrConfig::new(200, 200));
    let rec = Arc::new(MetricsRecorder::new());
    let instrumented = stream_bytes(SbrConfig::new(200, 200).with_recorder(rec.clone()));
    assert_eq!(
        reference, instrumented,
        "attaching a recorder changed the output"
    );
    let snap = rec.snapshot();
    assert!(
        snap.counter("sbr_core.best_map.calls").unwrap_or(0) > 0,
        "recorder saw no BestMap activity"
    );
    assert!(
        snap.histogram("sbr_core.sbr.encode_ns")
            .is_some_and(|h| h.count == 4),
        "expected one encode_ns sample per round"
    );
}

#[test]
fn shift_strategy_never_changes_the_transmissions() {
    // The FFT kernel re-verifies winning shifts exactly, so Direct, Fft and
    // Auto must all emit byte-identical streams.
    use sbr_repro::core::ShiftStrategy;
    let reference =
        stream_bytes(SbrConfig::new(200, 200).with_shift_strategy(ShiftStrategy::Direct));
    for strategy in [ShiftStrategy::Auto, ShiftStrategy::Fft] {
        let other = stream_bytes(SbrConfig::new(200, 200).with_shift_strategy(strategy));
        assert_eq!(reference, other, "{strategy:?} changed the output");
    }
}
