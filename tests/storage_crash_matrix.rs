//! The crash-recovery matrix for the segmented storage engine: simulate
//! a crash at every phase of the write lifecycle — mid-record append,
//! mid-seal, mid-checkpoint publish, mid-compaction — by mutating the
//! on-disk artifacts exactly as a torn process would leave them, then
//! prove recovery + ARQ retransmission ends **byte-exact** against a
//! sender-side mirror decoder. A separate differential sweeps compaction
//! on/off across segment-size budgets and requires the recovered logs to
//! be byte-identical in every cell.

use bytes::Bytes;
use sbr_repro::core::{codec, Decoder, SbrConfig};
use sbr_repro::sensor_net::storage::{self, sensor_dir, RECORD_OVERHEAD, SEG_FOOTER};
use sbr_repro::sensor_net::{BaseStation, SensorNode};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

const NODE: usize = 1;
/// Segment budget small enough that a 14-chunk stream seals several
/// segments (so every lifecycle phase actually occurs).
const SMALL_SEGMENT: u64 = 700;

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sbr-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy");
        }
    }
}

fn restore_dir(backup: &Path, dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    copy_dir(backup, dir);
}

/// A v2 ARQ stream mixing data frames with genuine overflow resyncs:
/// the node's retransmission buffer holds 2 frames and the (simulated)
/// station acks only every fourth flush, so the buffer periodically
/// overflows and the node re-anchors with a resync snapshot — exactly
/// the stream shape checkpoint compaction exists for.
fn v2_stream(n_chunks: usize) -> Vec<Bytes> {
    let mut node = SensorNode::new(NODE, 2, 32, SbrConfig::new(40, 32)).expect("node");
    node.enable_arq(2);
    let mut out = Vec::new();
    for c in 0..n_chunks {
        let mut flush = None;
        for i in 0..32 {
            let t = (c * 32 + i) as f64;
            flush = node
                .record(&[
                    (t * 0.21).sin() * 8.0,
                    (t * 0.13).cos() * 5.0 + (i % 4) as f64,
                ])
                .expect("record")
                .or(flush);
        }
        let f = flush.expect("every chunk flushes");
        out.push(f.frame.clone());
        if c % 4 == 0 {
            node.ack(f.epoch, f.transmission.seq + 1);
        }
    }
    out
}

/// Sender-side ground truth: a mirror decoder sees every emitted frame
/// in order, so its per-(epoch, seq) output is what the station *must*
/// reproduce bit-for-bit after any crash/recovery history.
fn mirror_truth(frames: &[Bytes]) -> HashMap<(u32, u64), Vec<Vec<f64>>> {
    let mut mirror = Decoder::new();
    let mut truth = HashMap::new();
    for f in frames {
        let parsed = codec::decode_any(&mut f.clone()).expect("frame parses");
        let chunk = mirror.decode_frame(&parsed).expect("mirror decodes");
        truth.insert((parsed.epoch, parsed.tx.seq), chunk);
    }
    truth
}

fn feed(station: &BaseStation, frames: &[Bytes]) {
    for f in frames {
        station.receive(NODE, f.clone()).expect("receive");
    }
}

/// Records currently durable on disk (read-only; tolerates a torn tail).
fn durable_records(dir: &Path) -> u64 {
    storage::verify(dir, NODE).expect("store verifies").records
}

/// The full post-recovery contract: the reloaded station's log is
/// byte-identical to the canonical stream, every chunk reconstructs to
/// the mirror decoder's exact f64 bits, and a full store audit passes.
fn assert_byte_exact(dir: &Path, frames: &[Bytes], truth: &HashMap<(u32, u64), Vec<Vec<f64>>>) {
    let station = BaseStation::load(dir).expect("recovered station loads");
    assert_eq!(
        station.raw_frames(NODE),
        frames,
        "recovered log is byte-identical to the sent stream"
    );
    let decoded = station.frames(NODE).expect("frames parse");
    let chunks = station
        .reconstruct_chunks(NODE, 0, station.chunk_count(NODE))
        .expect("reconstruct");
    assert_eq!(decoded.len(), frames.len());
    for (frame, chunk) in decoded.iter().zip(&chunks) {
        let want = truth
            .get(&(frame.epoch, frame.tx.seq))
            .expect("station cannot invent frames");
        assert_eq!(chunk, want, "epoch {} seq {}", frame.epoch, frame.tx.seq);
    }
    storage::verify(dir, NODE).expect("store audits clean after recovery");
}

fn seg_path(dir: &Path, ordinal: u32) -> PathBuf {
    sensor_dir(dir, NODE).join(format!("seg-{ordinal:08}.sbrseg"))
}

/// Checkpoint file names under the store, sorted ascending by covered
/// count (the newest last).
fn ck_files(dir: &Path) -> Vec<PathBuf> {
    let mut cks: Vec<PathBuf> = std::fs::read_dir(sensor_dir(dir, NODE))
        .expect("store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "sbrck"))
        .collect();
    cks.sort();
    cks
}

/// Crash mid-record: the appender dies partway through writing a framed
/// record. Simulated at *every* byte prefix of the final record; the
/// station reloads with the torn frame gone, the (simulated) node
/// retransmits it, and the finished log is byte-exact.
#[test]
fn crash_mid_record_recovers_at_every_torn_prefix() {
    let frames = v2_stream(14);
    let truth = mirror_truth(&frames);
    let dir = tempdir("mid-record");
    let fed = 7usize;
    {
        // Large budget: one active segment, no seals — the torn record
        // is always in the (only) active file.
        let station = BaseStation::with_persistence(&dir);
        feed(&station, &frames[..fed]);
    }
    let path = seg_path(&dir, 0);
    let full = std::fs::read(&path).expect("read active segment");
    let last_len = RECORD_OVERHEAD + frames[fed - 1].len();
    let rec_start = full.len() - last_len;

    for cut in rec_start..full.len() {
        std::fs::write(&path, &full[..cut]).expect("tear");
        assert_eq!(durable_records(&dir), fed as u64 - 1, "cut at {cut}");
        // Recovery drops the torn record; the node's ARQ window still
        // holds it (the ACK that would have released it was never sent),
        // so the stream resumes one frame back.
        let station = BaseStation::load(&dir).expect("load after tear");
        feed(&station, &frames[fed - 1..]);
        drop(station);
        assert_byte_exact(&dir, &frames, &truth);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Crash mid-seal: the footer write is torn (any prefix, including none
/// of it) and the checkpoint that would have followed the seal was never
/// written. Recovery must demote the segment back to active, resume
/// appending into it, and end byte-exact.
#[test]
fn crash_mid_seal_demotes_the_segment_and_resumes() {
    let frames = v2_stream(14);
    let truth = mirror_truth(&frames);
    let dir = tempdir("mid-seal");
    // Feed until the first seal completes (every record sealed, none
    // active) — the crash point is the instant after the footer.
    let mut sealed_at = None;
    {
        let station = BaseStation::with_persistence(&dir).with_segment_size(SMALL_SEGMENT);
        for (i, f) in frames.iter().enumerate() {
            station.receive(NODE, f.clone()).expect("receive");
            let report = storage::verify(&dir, NODE).expect("verify mid-feed");
            if !report.active {
                sealed_at = Some(i + 1);
                break;
            }
        }
    }
    let fed = sealed_at.expect("the small budget seals within the stream");
    assert!(
        fed < frames.len(),
        "frames must remain to append after recovery"
    );
    let backup = tempdir("mid-seal-backup");
    copy_dir(&dir, &backup);

    let last_ord = storage::verify(&dir, NODE).expect("verify").segments - 1;
    let seg = seg_path(&dir, last_ord);
    let full_len = std::fs::metadata(&seg).expect("seg meta").len();
    for torn in 0..SEG_FOOTER {
        restore_dir(&backup, &dir);
        // Tear the footer after `torn` of its bytes, and remove the
        // checkpoint the seal would have published next.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment");
        f.set_len(full_len - SEG_FOOTER as u64 + torn as u64)
            .expect("tear footer");
        drop(f);
        let newest_ck = ck_files(&dir).pop().expect("seal published a checkpoint");
        std::fs::remove_file(&newest_ck).expect("drop unpublished checkpoint");

        // Every record survives — only the seal itself was torn.
        assert_eq!(
            durable_records(&dir),
            fed as u64,
            "torn footer at {torn} bytes"
        );
        let station = BaseStation::load(&dir).expect("load after torn seal");
        feed(&station, &frames[fed..]);
        drop(station);
        assert_byte_exact(&dir, &frames, &truth);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    std::fs::remove_dir_all(&backup).expect("cleanup backup");
}

/// Crash mid-checkpoint: checkpoints are published by write-to-tmp +
/// rename, so a crash leaves a stray `.tmp` and no new checkpoint file.
/// Recovery sweeps the stray, resumes from the previous checkpoint (or
/// none), and loses nothing.
#[test]
fn crash_mid_checkpoint_sweeps_the_stray_tmp() {
    let frames = v2_stream(14);
    let truth = mirror_truth(&frames);
    let dir = tempdir("mid-ck");
    let fed = 10usize;
    {
        let station = BaseStation::with_persistence(&dir).with_segment_size(SMALL_SEGMENT);
        feed(&station, &frames[..fed]);
    }
    let newest_ck = ck_files(&dir)
        .pop()
        .expect("small budget produced checkpoints");
    std::fs::remove_file(&newest_ck).expect("crash before rename");
    let stray = sensor_dir(&dir, NODE).join("ck-00000042.sbrck.tmp");
    std::fs::write(&stray, b"torn half-written checkpoint bytes").expect("stray tmp");

    // Segments are untouched: every record is still durable.
    assert_eq!(durable_records(&dir), fed as u64);
    let station = BaseStation::load(&dir).expect("load after torn checkpoint");
    assert!(!stray.exists(), "recovery sweeps crash leftovers");
    feed(&station, &frames[fed..]);
    drop(station);
    assert_byte_exact(&dir, &frames, &truth);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Crash mid-compaction: compaction deletes superseded checkpoint files
/// one by one, so a crash leaves an arbitrary subset of the older
/// checkpoints missing (the newest is never eligible). Every such
/// subset must recover byte-exact — compaction never touches segment
/// data, so no interleaving of deletions can lose records.
#[test]
fn crash_mid_compaction_tolerates_any_checkpoint_subset() {
    let frames = v2_stream(14);
    let truth = mirror_truth(&frames);
    let dir = tempdir("mid-compact");
    {
        // Compaction off: keep every checkpoint so the test controls
        // which subset a torn compaction pass would have removed.
        let station = BaseStation::with_persistence(&dir)
            .with_segment_size(SMALL_SEGMENT)
            .with_compaction(false);
        feed(&station, &frames);
    }
    let backup = tempdir("mid-compact-backup");
    copy_dir(&dir, &backup);
    let cks = ck_files(&dir);
    let older = cks.len() - 1;
    assert!(
        older >= 2,
        "need several older checkpoints, got {} total",
        cks.len()
    );

    for mask in 0u32..(1 << older) {
        restore_dir(&backup, &dir);
        let cks = ck_files(&dir);
        let mut deleted = 0;
        for (i, ck) in cks[..older].iter().enumerate() {
            if mask & (1 << i) != 0 {
                std::fs::remove_file(ck).expect("torn compaction deletes");
                deleted += 1;
            }
        }
        assert_eq!(durable_records(&dir), frames.len() as u64, "mask {mask:#b}");
        assert_byte_exact(&dir, &frames, &truth);
        let report = storage::verify(&dir, NODE).expect("verify");
        assert_eq!(report.checkpoints as usize, cks.len() - deleted);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    std::fs::remove_dir_all(&backup).expect("cleanup backup");
}

/// The compaction differential: compaction on/off × segment budgets
/// {1 KiB, 64 KiB, 1 MiB} all recover logs that are byte-identical to
/// the sent stream (and hence to each other), and chunk reconstruction
/// matches the mirror decoder bit-for-bit in every cell. Compaction is
/// observable only in the checkpoint *file count* — never in recovered
/// state.
#[test]
fn compaction_and_segment_size_never_change_recovered_state() {
    let frames = v2_stream(14);
    let truth = mirror_truth(&frames);
    let mut ck_counts: HashMap<(u64, bool), usize> = HashMap::new();

    for &segment_bytes in &[1024u64, 64 * 1024, 1024 * 1024] {
        for &compaction in &[true, false] {
            let dir = tempdir(&format!("diff-{segment_bytes}-{compaction}"));
            {
                let station = BaseStation::with_persistence(&dir)
                    .with_segment_size(segment_bytes)
                    .with_compaction(compaction);
                feed(&station, &frames);
            }
            assert_byte_exact(&dir, &frames, &truth);
            ck_counts.insert((segment_bytes, compaction), ck_files(&dir).len());
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }

    // With a small budget the stream seals often enough that the resync
    // frames supersede earlier checkpoints: compaction must actually
    // have dropped some (the differential above proves it changed
    // nothing else).
    let on = ck_counts[&(1024, true)];
    let off = ck_counts[&(1024, false)];
    assert!(
        on < off,
        "compaction dropped no checkpoints at the small budget: {on} vs {off}"
    );
    for (&(sb, comp), &n) in &ck_counts {
        assert!(
            comp || n >= ck_counts[&(sb, true)],
            "compaction may only remove checkpoints (budget {sb})"
        );
    }
}
