//! Differential suite for the incremental `GetBase` fit cache: the cached
//! and legacy matrix paths must produce **byte-identical** transmission
//! streams across error metrics, shift strategies and thread counts — the
//! memo is a pure evaluation-order optimization, never a semantic change.
//! Plus counter-based tests pinning the reuse the tentpole claims: repeated
//! window content must be carried across batches (fresh fits only for
//! genuinely new pairs), and the `f32` pre-screen sweep (behind the
//! `wire_profile` feature) must also leave the stream byte-identical — its
//! approximations only rank shifts, the winners are re-verified exactly.

use sbr_repro::core::{codec, ErrorMetric, SbrConfig, SbrEncoder, ShiftStrategy};
use sbr_repro::obs::{MetricsRecorder, Recorder as _, Snapshot};
use std::sync::Arc;

/// A patterned multi-chunk stream: affine images of a few repeating
/// wiggles, so `GetBase` finds real candidates, plus per-chunk drift so the
/// dictionary keeps evolving across transmissions.
fn stream_chunks(n_chunks: usize, n_signals: usize, m: usize) -> Vec<Vec<Vec<f64>>> {
    (0..n_chunks)
        .map(|c| {
            (0..n_signals)
                .map(|s| {
                    (0..m)
                        .map(|i| {
                            let t = (i + c * m) as f64;
                            let pattern = (t * 0.9 + s as f64 * 2.1).sin() * 4.0
                                + (t * 0.23).cos() * 2.0
                                + ((i * 7 + s) % 5) as f64;
                            pattern * (1.0 + 0.1 * c as f64) + c as f64 - s as f64
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Encode the stream under `config`, returning one wire frame per
/// transmission.
fn encode_stream(chunks: &[Vec<Vec<f64>>], config: SbrConfig) -> Vec<Vec<u8>> {
    let n = chunks[0].len();
    let m = chunks[0][0].len();
    let mut enc = SbrEncoder::new(n, m, config).expect("valid config");
    chunks
        .iter()
        .map(|rows| codec::encode(&enc.encode(rows).expect("encode")).to_vec())
        .collect()
}

fn assert_streams_identical(chunks: &[Vec<Vec<f64>>], config: SbrConfig, label: &str) {
    let cached = encode_stream(chunks, config.clone().with_fit_cache(true));
    let legacy = encode_stream(chunks, config.with_fit_cache(false));
    assert_eq!(cached.len(), legacy.len());
    for (t, (a, b)) in cached.iter().zip(&legacy).enumerate() {
        assert_eq!(
            a, b,
            "[{label}] transmission {t}: cached and legacy frames differ"
        );
    }
}

#[test]
fn byte_identical_across_metrics_strategies_and_threads() {
    let chunks = stream_chunks(5, 2, 64);
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::relative(),
        ErrorMetric::MaxAbs,
    ] {
        for strategy in [
            ShiftStrategy::Auto,
            ShiftStrategy::Direct,
            ShiftStrategy::Fft,
        ] {
            for threads in [1usize, 4] {
                let config = SbrConfig::new(72, 64)
                    .with_metric(metric)
                    .with_shift_strategy(strategy)
                    .with_threads(threads);
                assert_streams_identical(
                    &chunks,
                    config,
                    &format!("{metric:?}/{strategy:?}/t{threads}"),
                );
            }
        }
    }
}

#[test]
fn byte_identical_with_low_memory_builder() {
    // The low-memory builder's cached path shares the full-matrix memo; it
    // must still match its own legacy (per-step re-fitting) output.
    let chunks = stream_chunks(4, 2, 64);
    for threads in [1usize, 4] {
        let n = chunks[0].len();
        let m = chunks[0][0].len();
        let encode_with = |fit_cache: bool| -> Vec<Vec<u8>> {
            let config = SbrConfig::new(72, 64)
                .with_threads(threads)
                .with_fit_cache(fit_cache);
            let mut enc =
                SbrEncoder::with_builder(n, m, config, Box::new(sbr_repro::core::LowMemoryGetBase))
                    .expect("valid config");
            chunks
                .iter()
                .map(|rows| codec::encode(&enc.encode(rows).expect("encode")).to_vec())
                .collect()
        };
        let cached = encode_with(true);
        let legacy = encode_with(false);
        for (t, (a, b)) in cached.iter().zip(&legacy).enumerate() {
            assert_eq!(
                a, b,
                "[low-memory/t{threads}] transmission {t}: cached and legacy frames differ"
            );
        }
    }
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

/// Encode and return the metrics snapshot alongside the frames.
fn encode_with_metrics(chunks: &[Vec<Vec<f64>>], config: SbrConfig) -> (Vec<Vec<u8>>, Snapshot) {
    let rec = Arc::new(MetricsRecorder::new());
    let frames = encode_stream(chunks, config.with_recorder(rec.clone()));
    (frames, rec.snapshot())
}

#[test]
fn repeated_batches_are_served_from_the_carry_over() {
    // The same batch encoded twice in a row: every window of batch 2 was
    // interned in batch 1, so the second matrix build must fit nothing
    // fresh — misses stop growing after the first batch.
    let one = stream_chunks(1, 2, 64).remove(0);
    let chunks = vec![one.clone(), one];
    let (_, snap) = encode_with_metrics(&chunks, SbrConfig::new(72, 64).with_threads(1));
    let hits = counter(&snap, "sbr_core.get_base.fit_cache.hits");
    let misses = counter(&snap, "sbr_core.get_base.fit_cache.misses");
    assert!(hits > 0, "memo must be read");
    // K = 2 signals × 1 window-per-signal... with m=64 and W=⌊√128⌋=11,
    // K = 2·⌊64/11⌋ = 10: one batch's off-diagonal cells are K²−K = 90.
    // Two batches of fresh content would be 180 misses; carry-over must
    // halve that exactly.
    assert_eq!(
        misses, 90,
        "identical second batch must re-fit nothing (one batch's worth of misses only)"
    );
    let bytes = snap
        .gauge("sbr_core.get_base.fit_cache.bytes")
        .unwrap_or(0.0);
    assert!(bytes > 0.0, "footprint gauge must be reported");
}

#[test]
fn legacy_path_reports_no_fit_cache_traffic() {
    let chunks = stream_chunks(2, 2, 64);
    let (_, snap) = encode_with_metrics(&chunks, SbrConfig::new(72, 64).without_fit_cache());
    assert_eq!(counter(&snap, "sbr_core.get_base.fit_cache.hits"), 0);
    assert_eq!(counter(&snap, "sbr_core.get_base.fit_cache.misses"), 0);
}

/// The `f32` pre-screen is *exact-by-construction*: it only filters the
/// shift sweep and re-verifies survivors in f64. There is no versioned
/// deviation to flag — the stream must be byte-identical, and the suite
/// fails loudly if that ever regresses.
#[cfg(feature = "wire_profile")]
#[test]
fn f32_prescreen_stream_is_byte_identical_and_engaged() {
    // Long batches + forced Direct strategy so the sweeps are wide enough
    // for the pre-screen to take over (≥ 32 shifts).
    let chunks = stream_chunks(3, 2, 256);
    let config = SbrConfig::new(160, 256)
        .with_shift_strategy(ShiftStrategy::Direct)
        .with_threads(1);
    let exact = encode_stream(&chunks, config.clone().with_f32_prescreen(false));
    let rec = Arc::new(MetricsRecorder::new());
    let screened = encode_stream(
        &chunks,
        config.with_f32_prescreen(true).with_recorder(rec.clone()),
    );
    for (t, (a, b)) in exact.iter().zip(&screened).enumerate() {
        assert_eq!(
            a, b,
            "transmission {t}: f32 pre-screen changed the stream — it may only rank, never select"
        );
    }
    let snap = rec.snapshot();
    let sweeps = snap
        .counter("sbr_core.best_map.f32_prescreen_sweeps")
        .unwrap_or(0);
    assert!(sweeps > 0, "pre-screen must actually engage on wide sweeps");
    let reverified = snap
        .counter("sbr_core.best_map.f32_reverified_shifts")
        .unwrap_or(0);
    assert!(
        reverified > 0,
        "every pre-screened sweep ends in exact re-verification"
    );
}
