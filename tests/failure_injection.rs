//! Failure injection: corrupted frames, reordered/duplicated/dropped
//! chunks, truncated log files, hostile inputs. The system must fail
//! loudly and precisely — never decode garbage silently.

use bytes::Bytes;
use sbr_repro::core::{codec, Decoder, FrameKind, SbrConfig, SbrEncoder, SbrError};
use sbr_repro::sensor_net::storage::{recover_stream, StreamWriter};
use sbr_repro::sensor_net::{BaseStation, FaultPlan, SensorNode};

fn stream(n_tx: usize) -> (Vec<sbr_repro::core::Transmission>, Vec<Bytes>) {
    let mut enc = SbrEncoder::new(2, 128, SbrConfig::new(120, 96)).unwrap();
    let mut txs = Vec::new();
    let mut frames = Vec::new();
    for t in 0..n_tx {
        let rows: Vec<Vec<f64>> = (0..2)
            .map(|r| {
                (0..128)
                    .map(|i| ((i + t * 31 + r * 7) as f64 * 0.21).sin() * 8.0 + (i % 5) as f64)
                    .collect()
            })
            .collect();
        let tx = enc.encode(&rows).unwrap();
        frames.push(codec::encode(&tx));
        txs.push(tx);
    }
    (txs, frames)
}

#[test]
fn every_single_byte_flip_in_the_header_is_caught_or_harmless() {
    let (_, frames) = stream(1);
    let original = frames[0].to_vec();
    // Flip each byte of the 28-byte header: every flip must either fail to
    // parse or parse to a *different* transmission (never a silent
    // identical parse).
    let baseline = codec::decode(&mut &original[..]).unwrap();
    for i in 0..28.min(original.len()) {
        let mut mutated = original.clone();
        mutated[i] ^= 0x01;
        match codec::decode(&mut &mutated[..]) {
            Err(_) => {}
            Ok(parsed) => assert_ne!(
                parsed, baseline,
                "flip at byte {i} produced an identical parse"
            ),
        }
    }
}

/// A short ARQ-node stream whose retransmission buffer (capacity 1)
/// overflows on every flush after the first: one v2 data frame, then v2
/// resync frames with real snapshots — both frame kinds, realistic
/// payloads.
fn v2_stream(n_chunks: usize) -> Vec<Bytes> {
    let mut node = SensorNode::new(3, 2, 64, SbrConfig::new(96, 48)).unwrap();
    node.enable_arq(1);
    (0..n_chunks)
        .map(|c| {
            let mut flush = None;
            for i in 0..64 {
                let t = (c * 64 + i) as f64;
                flush = node
                    .record(&[
                        (t * 0.21).sin() * 8.0,
                        (t * 0.13).cos() * 5.0 + (i % 4) as f64,
                    ])
                    .unwrap()
                    .or(flush);
            }
            flush.expect("buffer filled").frame
        })
        .collect()
}

#[test]
fn every_single_bit_flip_in_a_v2_frame_is_rejected_never_silent() {
    let frames = v2_stream(3);
    let kinds: Vec<FrameKind> = frames
        .iter()
        .map(|f| codec::decode_any(&mut f.clone()).unwrap().kind)
        .collect();
    assert!(kinds.contains(&FrameKind::Data) && kinds.contains(&FrameKind::Resync));
    // Whole-frame sweep: every bit of every byte — header, counts, payload,
    // snapshot, CRC trailer itself — flipped one at a time. The CRC must
    // reject each mutation; a parse that somehow survives must at least be
    // visibly different, never a silent identical decode.
    for (fi, frame) in frames.iter().enumerate() {
        let baseline = codec::decode_any(&mut frame.clone()).unwrap();
        let raw = frame.to_vec();
        for i in 0..raw.len() {
            for bit in 0..8 {
                let mut mutated = raw.clone();
                mutated[i] ^= 1 << bit;
                match codec::decode_any(&mut &mutated[..]) {
                    Err(_) => {}
                    Ok(parsed) => assert_ne!(
                        parsed, baseline,
                        "frame {fi}: flip of byte {i} bit {bit} decoded silently"
                    ),
                }
            }
        }
    }
}

#[test]
fn decoder_rejects_reordered_duplicated_and_skipped() {
    let (txs, _) = stream(3);

    // Skipped: the error names the stream position precisely.
    let mut d = Decoder::new();
    d.decode(&txs[0]).unwrap();
    assert!(matches!(
        d.decode(&txs[2]),
        Err(SbrError::Gap {
            expected: 1,
            got: 2,
            ..
        })
    ));
    // The failure is clean: the expected next chunk still decodes.
    d.decode(&txs[1]).unwrap();
    d.decode(&txs[2]).unwrap();

    // Duplicated.
    let mut d = Decoder::new();
    d.decode(&txs[0]).unwrap();
    assert!(d.decode(&txs[0]).is_err());

    // Reordered from the start.
    let mut d = Decoder::new();
    assert!(d.decode(&txs[1]).is_err());
}

#[test]
fn decoder_state_not_poisoned_by_failed_decode() {
    let (txs, _) = stream(2);
    let mut d = Decoder::new();
    d.decode(&txs[0]).unwrap();
    // A corrupt copy of tx 1: right seq, bad base-update width.
    let mut bad = txs[1].clone();
    if let Some(u) = bad.base_updates.first_mut() {
        u.values.pop();
    } else {
        bad.base_updates.push(sbr_repro::core::BaseUpdate {
            slot: 0,
            values: vec![1.0],
        });
    }
    assert!(d.decode(&bad).is_err());
    // The pristine tx 1 still decodes: the failure left no partial state.
    d.decode(&txs[1]).unwrap();
}

#[test]
fn malformed_slot_gap_leaves_decoder_untouched() {
    // An update stream with a slot gap must be rejected atomically: no
    // partial replica mutation even when earlier updates were valid.
    let (txs, _) = stream(2);
    let mut d = Decoder::new();
    d.decode(&txs[0]).unwrap();
    let base_before = d.base().map(|b| b.values().to_vec());
    let mut bad = txs[1].clone();
    let w = bad.w as usize;
    // One valid-looking update followed by one targeting a far-away slot.
    bad.base_updates = vec![
        sbr_repro::core::BaseUpdate {
            slot: 0,
            values: vec![9.0; w],
        },
        sbr_repro::core::BaseUpdate {
            slot: 999,
            values: vec![1.0; w],
        },
    ];
    assert!(d.decode(&bad).is_err());
    assert_eq!(
        d.base().map(|b| b.values().to_vec()),
        base_before,
        "failed decode must not mutate the replica"
    );
    // The pristine transmission still decodes.
    d.decode(&txs[1]).unwrap();
}

#[test]
fn uncovered_prefix_is_rejected_not_zero_filled() {
    let (txs, _) = stream(1);
    let mut bad = txs[0].clone();
    // Shift every record right: [0, k) becomes uncovered.
    for r in &mut bad.intervals {
        r.start += 3;
    }
    // Keep the batch shape plausible by dropping records that overflow.
    let n = bad.batch_len() as u64;
    bad.intervals.retain(|r| r.start < n);
    let err = Decoder::new().decode(&bad).unwrap_err();
    assert!(matches!(err, SbrError::Corrupt(_)), "{err}");
}

#[test]
fn station_quarantines_bad_frames_without_losing_the_log() {
    let (_, frames) = stream(3);
    let bs = BaseStation::new();
    bs.receive(7, frames[0].clone()).unwrap();
    let mut corrupt = frames[1].to_vec();
    corrupt[2] ^= 0xff;
    assert!(bs.receive(7, Bytes::from(corrupt)).is_err());
    assert_eq!(bs.chunk_count(7), 1, "bad frame must not be logged");
    bs.receive(7, frames[1].clone()).unwrap();
    bs.receive(7, frames[2].clone()).unwrap();
    assert_eq!(bs.reconstruct_chunks(7, 0, 3).unwrap().len(), 3);
}

#[test]
fn log_recovery_survives_any_tail_truncation() {
    let dir = std::env::temp_dir().join(format!("sbr-fi-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, frames) = stream(3);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("node-1.sbr");
    let mut w = StreamWriter::create(&path).unwrap();
    for f in &frames {
        w.append(f).unwrap();
    }
    drop(w);
    let full = std::fs::read(&path).unwrap();
    let frame_bytes: Vec<usize> = frames.iter().map(|f| f.len() + 4).collect();
    // Truncate at every point inside the *last* frame: first two frames
    // must always survive.
    let last_start = frame_bytes[0] + frame_bytes[1];
    for cut in last_start..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let rec = recover_stream(&path).unwrap();
        assert_eq!(rec.transmissions.len(), 2, "cut at {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hostile_declared_lengths_do_not_allocate() {
    // A header claiming 2³¹ updates must be rejected before any allocation
    // (the codec checks declared sizes against the remaining buffer).
    let mut frame = Vec::new();
    frame.extend_from_slice(&codec::MAGIC.to_le_bytes());
    frame.extend_from_slice(&0u64.to_le_bytes()); // seq
    frame.extend_from_slice(&1u32.to_le_bytes()); // n
    frame.extend_from_slice(&1u32.to_le_bytes()); // m
    frame.extend_from_slice(&1u32.to_le_bytes()); // w
    frame.extend_from_slice(&0x8000_0000u32.to_le_bytes()); // updates
    frame.extend_from_slice(&0u32.to_le_bytes()); // intervals
    assert!(codec::decode(&mut &frame[..]).is_err());
}

/// One ARQ round: retransmit everything pending through the chaos
/// channel, then apply the station's cumulative ACK. Gaps and corruption
/// are the protocol at work; anything else is a bug.
fn chaos_round(node: &mut SensorNode, station: &BaseStation, plan: &mut FaultPlan) {
    let pending: Vec<Bytes> = node.pending().map(|p| p.bytes.clone()).collect();
    for bytes in pending {
        for arrival in plan.channel(&bytes) {
            match station.receive_frame(1, arrival) {
                Ok(_) | Err(SbrError::Gap { .. }) | Err(SbrError::Corrupt(_)) => {}
                Err(e) => panic!("unexpected station error: {e}"),
            }
        }
    }
    node.ack(station.epoch(1), station.next_seq(1));
}

#[test]
fn seeded_chaos_with_drops_and_a_crash_ends_byte_exact_after_the_last_resync() {
    use std::collections::HashMap;

    let mut node = SensorNode::new(1, 2, 64, SbrConfig::new(64, 48)).unwrap();
    node.enable_arq(4);
    let mut plan = FaultPlan::new(0xC0FFEE).with_drop(0.3).with_dup(0.1);
    let station = BaseStation::new();
    // Sender-side mirror decoder: it sees every emitted frame in order, so
    // its output is the encoder-side ground truth per (epoch, seq).
    let mut mirror = Decoder::new();
    let mut truth: HashMap<(u32, u64), Vec<Vec<f64>>> = HashMap::new();

    let n_chunks = 14;
    for c in 0..n_chunks {
        for i in 0..64 {
            let t = (c * 64 + i) as f64;
            if let Some(flush) = node
                .record(&[
                    (t * 0.21).sin() * 8.0,
                    (t * 0.13).cos() * 5.0 + (i % 4) as f64,
                ])
                .unwrap()
            {
                let parsed = codec::decode_any(&mut flush.frame.clone()).unwrap();
                truth.insert(
                    (flush.epoch, flush.transmission.seq),
                    mirror.decode_frame(&parsed).unwrap(),
                );
            }
        }
        chaos_round(&mut node, &station, &mut plan);
        if c == 5 {
            // Mid-run crash: RAM (encoder state, retransmission queue) gone.
            node.reboot().unwrap();
        }
    }
    for _ in 0..64 {
        if node.pending_depth() == 0 {
            break;
        }
        chaos_round(&mut node, &station, &mut plan);
    }
    for leftover in plan.drain() {
        let _ = station.receive_frame(1, leftover);
    }

    // The crash forced at least one resync.
    assert!(station.epoch(1) > 0, "crash must re-anchor the stream");
    let frames = station.frames(1).unwrap();
    assert!(frames.iter().any(|f| f.kind == FrameKind::Resync));

    // Every chunk the station logged reconstructs *exactly* (same f64
    // bits) as the encoder-side mirror's ground truth — gaps cost chunks,
    // never correctness.
    let chunks = station
        .reconstruct_chunks(1, 0, station.chunk_count(1))
        .unwrap();
    for (frame, chunk) in frames.iter().zip(&chunks) {
        let want = truth
            .get(&(frame.epoch, frame.tx.seq))
            .expect("station cannot invent frames");
        assert_eq!(chunk, want, "epoch {} seq {}", frame.epoch, frame.tx.seq);
    }

    // And after the last resync the stream is complete: every chunk the
    // node flushed in its final epoch made it into the log.
    let final_epoch = node.epoch();
    let logged: Vec<(u32, u64)> = frames.iter().map(|f| (f.epoch, f.tx.seq)).collect();
    let mut final_chunks: Vec<u64> = truth
        .keys()
        .filter(|(e, _)| *e == final_epoch)
        .map(|&(_, s)| s)
        .collect();
    final_chunks.sort_unstable();
    assert!(!final_chunks.is_empty());
    for s in final_chunks {
        assert!(
            logged.contains(&(final_epoch, s)),
            "post-resync chunk {s} missing from the log"
        );
    }
}

#[test]
fn encoder_survives_pathological_but_finite_data() {
    // Constant rows, alternating extremes, denormals: encode + decode must
    // stay panic-free and within budget.
    let cases: Vec<Vec<Vec<f64>>> = vec![
        vec![vec![0.0; 64]; 2],
        vec![vec![1e300; 64], vec![-1e300; 64]],
        vec![
            (0..64)
                .map(|i| if i % 2 == 0 { 1e12 } else { -1e12 })
                .collect(),
            vec![f64::MIN_POSITIVE; 64],
        ],
    ];
    for rows in cases {
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(64, 48)).unwrap();
        let tx = enc.encode(&rows).unwrap();
        assert!(tx.cost() <= 64);
        let rec = Decoder::new().decode(&tx).unwrap();
        assert!(rec.iter().flatten().all(|v| v.is_finite()));
    }
}
