//! Differential suite for the loss-tolerant v2 protocol: on a reliable
//! link with no fault plan, the ARQ path (retransmission buffers,
//! cumulative ACKs, resync machinery armed but never triggered) must leave
//! a base-station log **byte-identical** to legacy direct delivery, across
//! error metrics, thread counts and topologies — the protocol is pure
//! delivery mechanics, never a semantic change to what gets logged.

use sbr_repro::core::{ErrorMetric, SbrConfig};
use sbr_repro::sensor_net::network::{Network, Strategy};
use sbr_repro::sensor_net::{EnergyModel, Topology};

fn feeds(n_nodes: usize, n_signals: usize, len: usize) -> Vec<Vec<Vec<f64>>> {
    (0..n_nodes)
        .map(|n| {
            (0..n_signals)
                .map(|s| {
                    (0..len)
                        .map(|t| {
                            let x = t as f64;
                            (x * 0.9 + (n * 3 + s) as f64 * 2.1).sin() * 4.0
                                + (x * 0.23).cos() * 2.0
                                + ((t * 7 + s) % 5) as f64
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn run(
    data: &[Vec<Vec<f64>>],
    nodes: usize,
    m: usize,
    config: SbrConfig,
    strategy_of: impl Fn(SbrConfig) -> Strategy,
) -> Network {
    let mut net = Network::new(Topology::line(nodes, 1.0), EnergyModel::default());
    net.simulate(data, m, &strategy_of(config))
        .expect("reliable run cannot fail");
    net
}

fn assert_logs_identical(
    data: &[Vec<Vec<f64>>],
    nodes: usize,
    m: usize,
    cfg: SbrConfig,
    label: &str,
) {
    let direct = run(data, nodes, m, cfg.clone(), Strategy::Sbr);
    let arq = run(data, nodes, m, cfg, Strategy::SbrArq);
    for node in 1..nodes {
        assert_eq!(
            arq.station().raw_frames(node),
            direct.station().raw_frames(node),
            "[{label}] node {node}: ARQ log diverged from direct delivery"
        );
        assert_eq!(
            arq.station().log_bytes(node),
            direct.station().log_bytes(node),
            "[{label}] node {node}: log accounting diverged"
        );
    }
}

#[test]
fn byte_identical_across_metrics_and_threads() {
    let data = feeds(2, 2, 256);
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::relative(),
        ErrorMetric::MaxAbs,
    ] {
        for threads in [1usize, 4] {
            let cfg = SbrConfig::new(72, 48)
                .with_metric(metric)
                .with_threads(threads);
            assert_logs_identical(&data, 3, 64, cfg, &format!("{metric:?}/t{threads}"));
        }
    }
}

#[test]
fn byte_identical_across_topology_depth_and_batch_size() {
    for (nodes, m, len) in [(2usize, 32usize, 192usize), (4, 64, 256), (5, 48, 192)] {
        let data = feeds(nodes - 1, 2, len);
        let cfg = SbrConfig::new(64, m.min(48));
        assert_logs_identical(&data, nodes, m, cfg, &format!("{nodes}n/m{m}"));
    }
}

#[test]
fn arq_run_reports_clean_recovery_on_a_perfect_channel() {
    let data = feeds(2, 2, 256);
    let mut net = Network::new(Topology::line(3, 1.0), EnergyModel::default());
    let report = net
        .simulate(&data, 64, &Strategy::SbrArq(SbrConfig::new(72, 48)))
        .unwrap();
    let stats = report.recovery.expect("ARQ always reports recovery stats");
    assert_eq!(stats.gaps_detected, 0);
    assert_eq!(stats.duplicates_discarded, 0);
    assert_eq!(stats.corrupt_rejected, 0);
    assert_eq!(stats.resyncs, 0);
    assert_eq!(stats.retx_overflows, 0);
    assert_eq!(stats.crashes, 0);
    assert_eq!(stats.delivered_fraction(), 1.0);
    assert_eq!(stats.frames_sent, stats.frames_delivered);
    assert!(stats.acks_sent >= stats.frames_delivered);
}
