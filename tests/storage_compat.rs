//! Golden on-disk format tests for the segmented storage engine.
//!
//! These pin the `.sbrseg` / `.sbrck` byte layout — magics, versions,
//! field offsets, CRC placement, and file names — against the constants
//! exported by `sensor_net::storage`. A change that shifts any of these
//! bytes breaks every store already on disk, so it must show up here as
//! a hand-edited golden value, not ride in silently. The repolint
//! wire-drift rule cross-checks the constant *values* asserted below
//! against the source, so drift has to be acknowledged in both places.

use bytes::Bytes;
use sbr_repro::core::{codec, SbrConfig, SbrEncoder};
use sbr_repro::sensor_net::storage::{
    self, sensor_dir, CheckpointState, SegmentWriter, CK_HEADER, CK_INDEX_ENTRY, CK_MAGIC,
    CK_VERSION, DEFAULT_SEGMENT_BYTES, RECORD_OVERHEAD, SEG_FOOTER, SEG_FOOTER_MAGIC, SEG_HEADER,
    SEG_MAGIC, SEG_VERSION,
};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sbr-compat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One deterministic wire frame (seq 0) for golden layouts.
fn one_frame() -> Bytes {
    let mut enc = SbrEncoder::new(2, 32, SbrConfig::new(40, 32)).expect("config");
    let rows: Vec<Vec<f64>> = (0..2)
        .map(|r| (0..32).map(|i| ((i + r) as f64 * 0.25).sin()).collect())
        .collect();
    codec::encode(&enc.encode(&rows).expect("encode"))
}

fn u16_at(raw: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(raw[at..at + 2].try_into().expect("u16"))
}

fn u32_at(raw: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(raw[at..at + 4].try_into().expect("u32"))
}

fn u64_at(raw: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(raw[at..at + 8].try_into().expect("u64"))
}

/// The CRC-32/IEEE known-answer test: the storage framing shares the
/// wire codec's polynomial, and this is the standard check vector for
/// it. If this fails, every segment CRC on disk is unreadable.
#[test]
fn crc32_known_answer_vector() {
    assert_eq!(codec::crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(codec::crc32(b""), 0);
}

/// Every format constant, pinned by value. These are the numbers readers
/// in other languages (or future versions of this one) hard-code; a
/// mismatch here is a wire break, not a refactor.
#[test]
fn format_constants_are_pinned() {
    assert_eq!(SEG_MAGIC, 0x5342_5347, "segment magic");
    assert_eq!(SEG_VERSION, 1, "segment version");
    assert_eq!(SEG_HEADER, 22, "segment header bytes");
    assert_eq!(RECORD_OVERHEAD, 8, "record framing overhead");
    assert_eq!(SEG_FOOTER_MAGIC, 0x5342_5346, "segment footer magic");
    assert_eq!(SEG_FOOTER, 20, "segment footer bytes");
    assert_eq!(CK_MAGIC, 0x5342_434B, "checkpoint magic");
    assert_eq!(CK_VERSION, 1, "checkpoint version");
    assert_eq!(CK_HEADER, 51, "checkpoint fixed header bytes");
    assert_eq!(CK_INDEX_ENTRY, 16, "checkpoint index entry bytes");
    assert_eq!(DEFAULT_SEGMENT_BYTES, 65536, "default segment budget");
    // The magics decode to ASCII tags on disk (LE byte order).
    assert_eq!(&SEG_MAGIC.to_le_bytes(), b"GSBS");
    assert_eq!(&SEG_FOOTER_MAGIC.to_le_bytes(), b"FSBS");
    assert_eq!(&CK_MAGIC.to_le_bytes(), b"KCBS");
}

/// Byte-level golden parse of a sealed single-record segment: header
/// fields at their pinned offsets, the length∥payload∥CRC record frame,
/// and the footer, with each CRC recomputed over exactly its documented
/// coverage.
#[test]
fn sealed_segment_layout_is_golden() {
    let dir = tempdir("segment");
    let frame = one_frame();
    let flen = frame.len();
    // Budget 1: the first append seals the segment immediately.
    let mut w = SegmentWriter::open(&dir, 1, 1).expect("open");
    let sealed = w.append(&frame).expect("append");
    assert!(sealed.is_some(), "budget 1 seals on the first append");

    // File name is part of the format (recovery sorts on it).
    let path = sensor_dir(&dir, 1).join("seg-00000000.sbrseg");
    let raw = std::fs::read(&path).expect("segment file exists at its pinned name");
    assert_eq!(
        raw.len(),
        SEG_HEADER + RECORD_OVERHEAD + flen + SEG_FOOTER,
        "sealed file length is header + one framed record + footer"
    );

    // Header: magic u32 ∥ version u16 ∥ ordinal u32 ∥ first_record u64 ∥ CRC u32.
    assert_eq!(u32_at(&raw, 0), SEG_MAGIC);
    assert_eq!(u16_at(&raw, 4), SEG_VERSION);
    assert_eq!(u32_at(&raw, 6), 0, "ordinal");
    assert_eq!(u64_at(&raw, 10), 0, "first record index");
    assert_eq!(
        u32_at(&raw, 18),
        codec::crc32(&raw[..18]),
        "header CRC covers the 18 bytes before it"
    );

    // Record: u32 len ∥ payload ∥ u32 crc32(len ∥ payload).
    let r = SEG_HEADER;
    assert_eq!(u32_at(&raw, r) as usize, flen, "record length prefix");
    assert_eq!(
        &raw[r + 4..r + 4 + flen],
        &frame[..],
        "payload is the raw wire frame"
    );
    assert_eq!(
        u32_at(&raw, r + 4 + flen),
        codec::crc32(&raw[r..r + 4 + flen]),
        "record CRC covers length prefix + payload"
    );

    // Footer: magic u32 ∥ record count u32 ∥ payload bytes u64 ∥ CRC u32.
    let f = r + 4 + flen + 4;
    assert_eq!(u32_at(&raw, f), SEG_FOOTER_MAGIC);
    assert_eq!(u32_at(&raw, f + 4), 1, "record count");
    assert_eq!(u64_at(&raw, f + 8), flen as u64, "payload byte total");
    assert_eq!(
        u32_at(&raw, f + 16),
        codec::crc32(&raw[f..f + 16]),
        "footer CRC covers the 16 bytes before it"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Byte-level golden parse of a minimal checkpoint (one covered segment,
/// no resync, no base snapshot): every fixed-offset field, the index
/// entry, the flag bytes, and the trailing whole-file CRC.
#[test]
fn checkpoint_layout_is_golden() {
    let dir = tempdir("checkpoint");
    let frame = one_frame();
    let flen = frame.len() as u64;
    let mut w = SegmentWriter::open(&dir, 2, 1).expect("open");
    w.append(&frame).expect("append seals");
    w.write_checkpoint(&CheckpointState {
        records: 1,
        payload_bytes: flen,
        epoch: 0,
        next_seq: 1,
        resync_at: None,
        base: None,
    })
    .expect("checkpoint");

    let path = sensor_dir(&dir, 2).join("ck-00000001.sbrck");
    let raw = std::fs::read(&path).expect("checkpoint file exists at its pinned name");
    // 51-byte header + one 16-byte index entry + 1 base flag + 4 CRC.
    assert_eq!(raw.len(), CK_HEADER + CK_INDEX_ENTRY + 1 + 4);

    assert_eq!(u32_at(&raw, 0), CK_MAGIC);
    assert_eq!(u16_at(&raw, 4), CK_VERSION);
    assert_eq!(u32_at(&raw, 6), 1, "covered segment count");
    assert_eq!(u64_at(&raw, 10), 1, "records covered");
    assert_eq!(u64_at(&raw, 18), flen, "payload bytes covered");
    assert_eq!(u32_at(&raw, 26), 0, "epoch");
    assert_eq!(u64_at(&raw, 30), 1, "next expected seq");
    assert_eq!(raw[38], 0, "resync-present flag");
    assert_eq!(u64_at(&raw, 39), 0, "resync record index (unused)");
    assert_eq!(u32_at(&raw, 47), 1, "index length");
    // Index entry: ordinal u32 ∥ records u32 ∥ payload bytes u64.
    assert_eq!(u32_at(&raw, 51), 0, "index ordinal");
    assert_eq!(u32_at(&raw, 55), 1, "index records");
    assert_eq!(u64_at(&raw, 59), flen, "index payload bytes");
    assert_eq!(raw[67], 0, "base-signal-present flag");
    let crc_at = raw.len() - 4;
    assert_eq!(
        u32_at(&raw, crc_at),
        codec::crc32(&raw[..crc_at]),
        "checkpoint CRC covers the whole body"
    );

    // And it reads back through the public scan path.
    let rec = storage::scan(&dir, 2).expect("scan");
    let ck = rec.checkpoint.expect("checkpoint loads");
    assert_eq!(ck.covered, 1);
    assert_eq!(ck.state.next_seq, 1);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The legacy `.sbr` interchange stream is a bare `u32 LE len ∥ frame`
/// concatenation — no magic, no CRC. Pinned so `sbr compress` output
/// stays readable by old tooling.
#[test]
fn legacy_stream_layout_is_golden() {
    let dir = tempdir("legacy");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("log.sbr");
    let frame = one_frame();
    let mut w = storage::StreamWriter::create(&path).expect("create");
    w.append(&frame).expect("append");
    drop(w);
    let raw = std::fs::read(&path).expect("read");
    assert_eq!(raw.len(), 4 + frame.len());
    assert_eq!(u32_at(&raw, 0) as usize, frame.len());
    assert_eq!(&raw[4..], &frame[..]);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
