//! Shape-level assertions of the paper's headline claims, at reduced scale
//! so they run in CI time. The full-scale numbers live in the `sbr-bench`
//! binaries and EXPERIMENTS.md.

use sbr_repro::baselines::dct::DctCompressor;
use sbr_repro::baselines::histogram::HistogramCompressor;
use sbr_repro::baselines::wavelet::WaveletCompressor;
use sbr_repro::baselines::{Allocation, Compressor};
use sbr_repro::core::{Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};

fn sbr_avg_sse(files: &[Vec<Vec<f64>>], band: usize, m_base: usize) -> f64 {
    let n = files[0].len();
    let m = files[0][0].len();
    let mut enc = SbrEncoder::new(n, m, SbrConfig::new(band, m_base)).unwrap();
    let mut dec = Decoder::new();
    let mut total = 0.0;
    for rows in files {
        let tx = enc.encode(rows).unwrap();
        let rec = dec.decode(&tx).unwrap();
        for (o, r) in rows.iter().zip(&rec) {
            total += ErrorMetric::Sse.score(o, r);
        }
    }
    total / files.len() as f64
}

fn baseline_avg_sse(files: &[Vec<Vec<f64>>], method: &dyn Compressor, band: usize) -> f64 {
    let mut total = 0.0;
    for rows in files {
        let data = MultiSeries::from_rows(rows).unwrap();
        let rec = method.compress_reconstruct(&data, band);
        total += ErrorMetric::Sse.score(data.flat(), &rec);
    }
    total / files.len() as f64
}

/// Claim (Tables 2–4): at a 10% ratio SBR beats Wavelets, DCT and
/// Histograms on correlated multi-signal data.
#[test]
fn sbr_beats_all_baselines_on_weather() {
    let files = sbr_repro::datasets::weather(42, 1024 * 5).chunk(1024);
    let n = 6 * 1024;
    let band = n / 10;
    let sbr = sbr_avg_sse(&files, band, 600);
    let wavelets = baseline_avg_sse(
        &files,
        &WaveletCompressor {
            allocation: Allocation::Concatenated,
        },
        band,
    );
    let dct = baseline_avg_sse(
        &files,
        &DctCompressor {
            allocation: Allocation::Concatenated,
        },
        band,
    );
    let hist = baseline_avg_sse(&files, &HistogramCompressor::default(), band);
    assert!(sbr < wavelets, "SBR {sbr} vs Wavelets {wavelets}");
    assert!(sbr < dct, "SBR {sbr} vs DCT {dct}");
    assert!(sbr < hist, "SBR {sbr} vs Histograms {hist}");
}

/// Claim (§5.1.1): SBR's error decreases as the bandwidth grows, sharply.
#[test]
fn sbr_error_is_monotone_in_bandwidth() {
    let files = sbr_repro::datasets::stock(42, 5, 512 * 3).chunk(512);
    let n = 5 * 512;
    let mut prev = f64::INFINITY;
    for ratio in [0.05, 0.10, 0.20, 0.30] {
        let e = sbr_avg_sse(&files, (n as f64 * ratio) as usize, 256);
        assert!(e <= prev * 1.02, "error rose from {prev} to {e} at {ratio}");
        prev = e;
    }
}

/// Claim (Table 6): insertions concentrate in the earliest transmissions.
#[test]
fn base_insertions_front_loaded() {
    let files = sbr_repro::datasets::weather(42, 768 * 8).chunk(768);
    let n = 6 * 768;
    let mut enc = SbrEncoder::new(6, 768, SbrConfig::new(n / 8, 700)).unwrap();
    let mut inserted = Vec::new();
    for rows in &files {
        enc.encode(rows).unwrap();
        inserted.push(enc.last_stats().unwrap().inserted);
    }
    let first_half: usize = inserted[..4].iter().sum();
    let second_half: usize = inserted[4..].iter().sum();
    assert!(
        first_half >= second_half,
        "insertions {inserted:?} not front-loaded"
    );
    assert!(first_half > 0, "a fresh dictionary must insert something");
}

/// Claim (§4.1 / Figures 2–3): two values suffice to encode one correlated
/// series in terms of the other, far better than a line over time.
#[test]
fn correlated_series_encode_in_two_values() {
    use sbr_repro::core::regression::{fit_sse, fit_sse_index};
    let d = sbr_repro::datasets::indexes(42, 128);
    let cross = fit_sse(&d.signals[0], &d.signals[1]);
    let over_time = fit_sse_index(&d.signals[1]);
    assert!(
        cross.err * 5.0 < over_time.err,
        "cross-signal {:.0} vs over-time {:.0}",
        cross.err,
        over_time.err
    );
}

/// Claim (§5.2 / Table 5): the learned base beats no base (plain linear
/// regression) on feature-rich data, even with the fall-back disabled.
#[test]
fn learned_base_beats_plain_regression() {
    use sbr_repro::baselines::linreg::LinRegCompressor;
    let files = sbr_repro::datasets::weather(42, 1024 * 4).chunk(1024);
    let n = 6 * 1024;
    let band = n / 10;

    let cfg = SbrConfig::new(band, 600).without_fallback();
    let mut enc = SbrEncoder::new(6, 1024, cfg).unwrap();
    let mut dec = Decoder::new();
    let mut sbr = 0.0;
    for rows in &files {
        let tx = enc.encode(rows).unwrap();
        let rec = dec.decode(&tx).unwrap();
        for (o, r) in rows.iter().zip(&rec) {
            sbr += ErrorMetric::Sse.score(o, r);
        }
    }
    sbr /= files.len() as f64;
    let linreg = baseline_avg_sse(&files, &LinRegCompressor::default(), band);
    assert!(
        sbr < linreg,
        "base-signal SBR {sbr} vs plain regression {linreg}"
    );
}

/// Claim (§4.4): freezing the base signal after convergence barely hurts.
#[test]
fn frozen_base_shortcut_is_cheap_in_error() {
    let files = sbr_repro::datasets::weather(42, 512 * 6).chunk(512);
    let n = 6 * 512;
    let band = n / 8;

    let run = |freeze_after: Option<usize>| {
        let mut enc = SbrEncoder::new(6, 512, SbrConfig::new(band, 500)).unwrap();
        let mut dec = Decoder::new();
        let mut total = 0.0;
        for (t, rows) in files.iter().enumerate() {
            if Some(t) == freeze_after {
                enc.set_update_base(false);
            }
            let tx = enc.encode(rows).unwrap();
            let rec = dec.decode(&tx).unwrap();
            for (o, r) in rows.iter().zip(&rec) {
                total += ErrorMetric::Sse.score(o, r);
            }
        }
        total
    };
    let always = run(None);
    let frozen = run(Some(2));
    assert!(
        frozen <= always * 2.0,
        "freezing after tx 2 should be benign: {frozen} vs {always}"
    );
}
