//! Wire-format stability: the byte layout of the codec is a compatibility
//! contract between deployed sensors and base stations. These golden tests
//! pin the exact bytes of known transmissions so accidental format changes
//! fail loudly instead of corrupting fleets in the field.

use sbr_repro::core::interval::IntervalRecord;
use sbr_repro::core::transmission::{BaseUpdate, Frame, Transmission};
use sbr_repro::core::{codec, wire_profile};

fn golden_tx() -> Transmission {
    Transmission {
        seq: 7,
        n_signals: 2,
        samples_per_signal: 4,
        w: 2,
        base_updates: vec![BaseUpdate {
            slot: 1,
            values: vec![1.5, -2.0],
        }],
        intervals: vec![
            IntervalRecord {
                start: 0,
                shift: -1,
                a: 0.5,
                b: 3.0,
            },
            IntervalRecord {
                start: 4,
                shift: 0,
                a: 1.0,
                b: 0.0,
            },
        ],
    }
}

#[test]
fn codec_bytes_are_pinned() {
    let bytes = codec::encode(&golden_tx());
    // Header: magic, seq, n, m, w, nu, ni.
    let mut expect: Vec<u8> = Vec::new();
    expect.extend(0x5342_5231u32.to_le_bytes()); // "SBR1"
    expect.extend(7u64.to_le_bytes());
    expect.extend(2u32.to_le_bytes());
    expect.extend(4u32.to_le_bytes());
    expect.extend(2u32.to_le_bytes());
    expect.extend(1u32.to_le_bytes());
    expect.extend(2u32.to_le_bytes());
    // Base update.
    expect.extend(1u64.to_le_bytes());
    expect.extend(1.5f64.to_le_bytes());
    expect.extend((-2.0f64).to_le_bytes());
    // Interval records.
    expect.extend(0u64.to_le_bytes());
    expect.extend((-1i64).to_le_bytes());
    expect.extend(0.5f64.to_le_bytes());
    expect.extend(3.0f64.to_le_bytes());
    expect.extend(4u64.to_le_bytes());
    expect.extend(0i64.to_le_bytes());
    expect.extend(1.0f64.to_le_bytes());
    expect.extend(0.0f64.to_le_bytes());
    assert_eq!(bytes.as_ref(), expect.as_slice(), "codec layout changed!");
}

#[test]
fn codec_size_formula_is_pinned() {
    let tx = golden_tx();
    // 32-byte header + (8 + 8·W) per update + 32 per interval.
    assert_eq!(codec::encoded_len(&tx), 32 + (8 + 16) + 2 * 32);
    assert_eq!(codec::encode(&tx).len(), codec::encoded_len(&tx));
}

#[test]
fn profile_framing_is_pinned() {
    let tx = golden_tx();
    for (profile, id) in [
        (wire_profile::Profile::F64, 0u8),
        (wire_profile::Profile::F32, 1),
        (wire_profile::Profile::Q16, 2),
    ] {
        let frame = wire_profile::encode(&tx, profile);
        assert_eq!(&frame[..4], 0x5342_5250u32.to_le_bytes()); // "SBRP"
        assert_eq!(frame[4], id, "profile id changed for {profile:?}");
    }
}

#[test]
fn crc32_known_answer_is_pinned() {
    // The classic IEEE 802.3 check value: CRC-32 of "123456789".
    assert_eq!(codec::crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(codec::crc32(b""), 0);
}

#[test]
fn v2_bytes_are_pinned() {
    // A resync frame (epoch 3, one-slot snapshot) around the same golden
    // transmission: the v2 layout is a compatibility contract too.
    let frame = Frame::resync(3, vec![0.25, -4.0], golden_tx());
    let bytes = codec::encode_v2(&frame);
    let mut expect: Vec<u8> = Vec::new();
    expect.extend(0x5342_5232u32.to_le_bytes()); // "SBR2"
    expect.push(1u8); // kind: resync
    expect.extend(3u32.to_le_bytes()); // epoch
    expect.extend(7u64.to_le_bytes()); // seq
    expect.extend(2u32.to_le_bytes()); // n
    expect.extend(4u32.to_le_bytes()); // m
    expect.extend(2u32.to_le_bytes()); // w
    expect.extend(1u32.to_le_bytes()); // snapshot slots
    expect.extend(1u32.to_le_bytes()); // updates
    expect.extend(2u32.to_le_bytes()); // intervals
                                       // Snapshot (1 slot × w values).
    expect.extend(0.25f64.to_le_bytes());
    expect.extend((-4.0f64).to_le_bytes());
    // Base update.
    expect.extend(1u64.to_le_bytes());
    expect.extend(1.5f64.to_le_bytes());
    expect.extend((-2.0f64).to_le_bytes());
    // Interval records.
    expect.extend(0u64.to_le_bytes());
    expect.extend((-1i64).to_le_bytes());
    expect.extend(0.5f64.to_le_bytes());
    expect.extend(3.0f64.to_le_bytes());
    expect.extend(4u64.to_le_bytes());
    expect.extend(0i64.to_le_bytes());
    expect.extend(1.0f64.to_le_bytes());
    expect.extend(0.0f64.to_le_bytes());
    // CRC-32 trailer over everything above.
    let crc = codec::crc32(&expect);
    expect.extend(crc.to_le_bytes());
    assert_eq!(bytes.as_ref(), expect.as_slice(), "v2 layout changed!");
    // Size formula: 41-byte header + 8·W per snapshot slot
    // + (8 + 8·W) per update + 32 per interval + 4-byte CRC.
    assert_eq!(bytes.len(), 41 + 16 + (8 + 16) + 2 * 32 + 4);
    assert_eq!(bytes.len(), codec::encoded_len_v2(&frame));
    // And it round-trips.
    assert_eq!(codec::decode_v2(&mut bytes.clone()).unwrap(), frame);
}

#[test]
fn v2_data_frames_are_pinned() {
    // A data frame is the same envelope with kind 0, no snapshot.
    let frame = Frame::data(9, golden_tx());
    let bytes = codec::encode_v2(&frame);
    assert_eq!(&bytes[..4], 0x5342_5232u32.to_le_bytes());
    assert_eq!(bytes[4], 0, "data kind byte");
    assert_eq!(&bytes[5..9], 9u32.to_le_bytes());
    let ns = u32::from_le_bytes(bytes[29..33].try_into().unwrap());
    assert_eq!(ns, 0, "data frames carry no snapshot");
    let crc = codec::crc32(&bytes[..bytes.len() - 4]);
    assert_eq!(&bytes[bytes.len() - 4..], crc.to_le_bytes());
    assert_eq!(codec::decode_any(&mut bytes.clone()).unwrap(), frame);
}

#[test]
fn decode_any_wraps_v1_frames_as_epoch_zero_data() {
    // A station that speaks v2 must still ingest v1 fleet traffic: the
    // compat path wraps it in the trivial envelope.
    let v1 = codec::encode(&golden_tx());
    let frame = codec::decode_any(&mut v1.clone()).expect("v1 via decode_any");
    assert_eq!(frame, Frame::data(0, golden_tx()));
}

#[test]
fn old_frames_still_decode() {
    // A frame produced by (what is defined to be) version 1 of the format,
    // spelled out byte-for-byte. If this stops decoding, deployed logs
    // become unreadable.
    let mut raw: Vec<u8> = Vec::new();
    raw.extend(0x5342_5231u32.to_le_bytes());
    raw.extend(0u64.to_le_bytes()); // seq
    raw.extend(1u32.to_le_bytes()); // n
    raw.extend(2u32.to_le_bytes()); // m
    raw.extend(1u32.to_le_bytes()); // w
    raw.extend(0u32.to_le_bytes()); // updates
    raw.extend(1u32.to_le_bytes()); // intervals
    raw.extend(0u64.to_le_bytes()); // start
    raw.extend((-1i64).to_le_bytes()); // shift
    raw.extend(2.0f64.to_le_bytes()); // a
    raw.extend(5.0f64.to_le_bytes()); // b
    let tx = codec::decode(&mut &raw[..]).expect("v1 frame must decode");
    assert_eq!(tx.intervals.len(), 1);
    assert_eq!(tx.intervals[0].b, 5.0);
    // And it reconstructs: ŷ = 2i + 5 over 2 samples.
    let rec = sbr_repro::core::Decoder::new().decode(&tx).unwrap();
    assert_eq!(rec, vec![vec![5.0, 7.0]]);
}
