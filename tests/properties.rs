//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use sbr_repro::baselines::{dct, fourier, histogram, swing, v_optimal, wavelet, wavelet2d};
use sbr_repro::core::best_map::MapContext;
use sbr_repro::core::interval::IntervalRecord;
use sbr_repro::core::query::ChunkView;
use sbr_repro::core::transmission::{BaseUpdate, Transmission};
use sbr_repro::core::{
    codec, regression, xcorr, Decoder, ErrorMetric, Interval, MultiSeries, SbrConfig, SbrEncoder,
    ShiftStrategy,
};
use sbr_repro::core::{quadratic, wire_profile};
use sbr_repro::datasets::schedule::{align, expand, thin, Fill, ScheduledSignal};
use sbr_repro::sensor_net::{BaseStation, FaultPlan, SensorNode};

/// One end-to-end ARQ round for the chaos property: push every pending
/// frame through the fault channel, hand arrivals to the station, apply
/// the cumulative ACK. Only protocol-level rejections are tolerated.
fn fault_round(
    node: &mut SensorNode,
    station: &BaseStation,
    plan: &mut FaultPlan,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let pending: Vec<bytes::Bytes> = node.pending().map(|p| p.bytes.clone()).collect();
    for bytes in pending {
        for arrival in plan.channel(&bytes) {
            match station.receive_frame(1, arrival) {
                Ok(_) => {}
                Err(sbr_repro::core::SbrError::Gap { .. })
                | Err(sbr_repro::core::SbrError::Corrupt(_)) => {}
                Err(e) => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "unexpected station error: {e}"
                    )))
                }
            }
        }
    }
    node.ack(station.epoch(1), station.next_seq(1));
    Ok(())
}

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- regression ----------------

    /// OLS optimality: no perturbation of (a, b) improves the SSE.
    #[test]
    fn ols_is_a_local_minimum(
        y in finite_signal(64),
        x in finite_signal(64),
        da in -1.0f64..1.0,
        db in -1.0f64..1.0,
    ) {
        let len = x.len().min(y.len());
        let (x, y) = (&x[..len], &y[..len]);
        let f = regression::fit_sse(x, y);
        prop_assume!(f.err.is_finite());
        let perturbed = regression::eval(ErrorMetric::Sse, f.a + da, f.b + db, x, y);
        prop_assert!(f.err <= perturbed + 1e-6 * (1.0 + perturbed.abs()));
    }

    /// The reported fit error always matches direct evaluation.
    #[test]
    fn fit_error_matches_eval(
        y in finite_signal(48),
        x in finite_signal(48),
    ) {
        let len = x.len().min(y.len());
        let (x, y) = (&x[..len], &y[..len]);
        // Tolerance scales with the magnitudes flowing through the closed
        // form (Σy², a²Σx² can reach ~1e12 here).
        for metric in [ErrorMetric::Sse, ErrorMetric::relative(), ErrorMetric::MaxAbs] {
            let f = regression::fit(metric, x, y);
            let direct = regression::eval(metric, f.a, f.b, x, y);
            let scale: f64 = y.iter().map(|v| v * v).sum::<f64>()
                + f.a * f.a * x.iter().map(|v| v * v).sum::<f64>();
            prop_assert!(
                (f.err - direct).abs() <= 1e-9 * (1.0 + direct.abs() + scale),
                "{metric:?}: {} vs {direct}", f.err
            );
        }
    }

    /// Chebyshev optimality: the minimax fit never loses to OLS under the
    /// max-abs metric.
    #[test]
    fn chebyshev_beats_ols_on_max_metric(
        y in finite_signal(48),
        x in finite_signal(48),
    ) {
        let len = x.len().min(y.len());
        let (x, y) = (&x[..len], &y[..len]);
        let cheb = regression::fit_maxabs(x, y);
        let ols = regression::fit_sse(x, y);
        prop_assume!(ols.a.is_finite() && ols.b.is_finite());
        let ols_max = regression::eval(ErrorMetric::MaxAbs, ols.a, ols.b, x, y);
        prop_assert!(cheb.err <= ols_max + 1e-6 * (1.0 + ols_max));
    }

    // ---------------- transforms ----------------

    /// Haar roundtrips exactly at any length.
    #[test]
    fn haar_roundtrip(y in finite_signal(300)) {
        let back = wavelet::inverse(&wavelet::forward(&y));
        prop_assert_eq!(back.len(), y.len());
        for (a, b) in y.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
    }

    /// DCT roundtrips exactly at any length (Bluestein path included).
    #[test]
    fn dct_roundtrip(y in finite_signal(200)) {
        let back = dct::inverse(&dct::forward(&y));
        for (a, b) in y.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()));
        }
    }

    /// Keeping all independent Fourier bins reconstructs the signal.
    #[test]
    fn fourier_full_budget_roundtrip(y in finite_signal(120)) {
        let rec = fourier::approximate(&y, y.len() / 2 + 1);
        for (a, b) in y.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()));
        }
    }

    /// Histogram buckets always partition [0, n).
    #[test]
    fn histogram_partitions(
        y in finite_signal(200),
        k in 1usize..40,
    ) {
        for policy in [
            histogram::Bucketing::EquiDepth,
            histogram::Bucketing::EquiWidth,
            histogram::Bucketing::MaxDiff,
        ] {
            let bs = histogram::build(&y, k, policy);
            prop_assert!(!bs.is_empty());
            prop_assert!(bs.len() <= k);
            prop_assert_eq!(bs[0].start, 0);
            prop_assert_eq!(bs.last().unwrap().end, y.len());
            for w in bs.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    // ---------------- wire codec ----------------

    /// The codec roundtrips arbitrary well-formed transmissions.
    #[test]
    fn codec_roundtrip(
        seq in 0u64..1_000_000,
        w in 1u32..16,
        n_updates in 0usize..4,
        intervals in prop::collection::vec(
            (0u64..10_000, -1i64..500, -1e9f64..1e9, -1e9f64..1e9),
            1..20
        ),
    ) {
        let tx = Transmission {
            seq,
            n_signals: 3,
            samples_per_signal: 100,
            w,
            base_updates: (0..n_updates)
                .map(|s| BaseUpdate {
                    slot: s as u64,
                    values: (0..w).map(|i| i as f64 * 0.5 - s as f64).collect(),
                })
                .collect(),
            intervals: intervals
                .iter()
                .map(|&(start, shift, a, b)| IntervalRecord { start, shift, a, b })
                .collect(),
        };
        let bytes = codec::encode(&tx);
        prop_assert_eq!(bytes.len(), codec::encoded_len(&tx));
        let back = codec::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, tx);
    }

    // ---------------- encoder invariants ----------------

    /// Whatever the data, the transmission respects the budget and decodes
    /// to the reported error.
    #[test]
    fn encoder_budget_and_error_invariants(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 64),
            1..4
        ),
        band_factor in 2usize..8,
    ) {
        let n = rows.len();
        let band = (n * 64 / 10).max(4 * n) * band_factor / 2;
        let cfg = SbrConfig::new(band, 64);
        let mut enc = SbrEncoder::new(n, 64, cfg).unwrap();
        let tx = enc.encode(&rows).unwrap();
        prop_assert!(tx.cost() <= band);
        let rec = Decoder::new().decode(&tx).unwrap();
        let mut sse = 0.0;
        for (o, r) in rows.iter().zip(&rec) {
            prop_assert_eq!(o.len(), r.len());
            sse += ErrorMetric::Sse.score(o, r);
        }
        let reported = enc.last_stats().unwrap().total_err;
        prop_assert!((sse - reported).abs() <= 1e-5 * (1.0 + sse.abs()));
    }

    /// The base signal buffer never exceeds M_base, across a stream of
    /// differing batches.
    #[test]
    fn base_buffer_never_overflows(seed in 0u64..500) {
        let m_base = 48;
        let cfg = SbrConfig::new(96, m_base);
        let mut enc = SbrEncoder::new(2, 64, cfg).unwrap();
        for t in 0..4u64 {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| {
                            let x = (i as u64 + seed * 31 + t * 7 + r * 3) as f64;
                            (x * 0.37).sin() * 5.0 + (x * 0.011).cos() * 2.0
                        })
                        .collect()
                })
                .collect();
            enc.encode(&rows).unwrap();
            prop_assert!(enc.base().len() <= m_base);
        }
    }

    /// MultiSeries flattening/rows are mutually consistent.
    #[test]
    fn multiseries_round(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 8),
        1..5
    )) {
        let ms = MultiSeries::from_rows(&rows).unwrap();
        prop_assert_eq!(ms.len(), rows.len() * 8);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(ms.row(i), r.as_slice());
        }
        let rebuilt = MultiSeries::from_flat(ms.flat().to_vec(), rows.len(), 8).unwrap();
        prop_assert_eq!(rebuilt, ms);
    }

    // ---------------- extensions ----------------

    /// 2-D Haar roundtrips at any matrix shape.
    #[test]
    fn wavelet2d_roundtrip(
        rows in 1usize..6,
        cols in 1usize..40,
        seed in 0u64..1000,
    ) {
        let m = wavelet2d::Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f64) * 0.1 - 50.0)
                .collect(),
        };
        let back = wavelet2d::inverse(&wavelet2d::forward(&m));
        for (a, b) in m.data.iter().zip(&back.data) {
            prop_assert!((a - b).abs() <= 1e-8 * (1.0 + a.abs()));
        }
    }

    /// The quadratic fit never loses to the linear fit on SSE.
    #[test]
    fn quadratic_dominates_linear(
        y in finite_signal(48),
        x in finite_signal(48),
    ) {
        let len = x.len().min(y.len());
        let (x, y) = (&x[..len], &y[..len]);
        let quad = quadratic::fit_quadratic(x, y);
        let lin = regression::fit_sse(x, y);
        let scale = y.iter().map(|v| v * v).sum::<f64>().max(1.0);
        prop_assert!(quad.err <= lin.err + 1e-7 * scale);
    }

    /// Greedy v-optimal never loses to the equi-width partition at equal k.
    #[test]
    fn voptimal_greedy_beats_equiwidth(
        y in finite_signal(150),
        k in 1usize..20,
    ) {
        let g = v_optimal::build_greedy(&y, k);
        let rec_g = histogram::reconstruct(&g, y.len());
        let e = histogram::approximate(&y, k, histogram::Bucketing::EquiWidth);
        let sse = |rec: &[f64]| -> f64 {
            y.iter().zip(rec).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        // Greedy merging from singletons explores strictly more partitions
        // than the fixed equal split, but is itself heuristic, so allow a
        // small slack.
        let scale = y.iter().map(|v| v * v).sum::<f64>().max(1.0);
        prop_assert!(sse(&rec_g) <= sse(&e) * 1.5 + 1e-9 * scale);
    }

    /// Exact v-optimal lower-bounds the greedy variant.
    #[test]
    fn voptimal_exact_lower_bounds_greedy(
        y in finite_signal(40),
        k in 1usize..8,
    ) {
        let exact = v_optimal::build_exact(&y, k);
        let greedy = v_optimal::build_greedy(&y, k);
        let sse = |b: &[histogram::Bucket]| -> f64 {
            let rec = histogram::reconstruct(b, y.len());
            y.iter().zip(&rec).map(|(a, r)| (a - r) * (a - r)).sum()
        };
        let scale = y.iter().map(|v| v * v).sum::<f64>().max(1.0);
        prop_assert!(sse(&exact) <= sse(&greedy) + 1e-7 * scale);
    }

    /// Hold expansion followed by thinning recovers the schedule exactly.
    #[test]
    fn schedule_expand_thin_roundtrip(
        values in prop::collection::vec(-1e6f64..1e6, 1..30),
        period in 1usize..8,
    ) {
        let s = ScheduledSignal::new(values.clone(), period);
        let e = expand(&s, values.len() * period, Fill::Hold);
        prop_assert_eq!(thin(&e, period), values);
    }

    /// Aligned rows always form a rectangular matrix on the common clock.
    #[test]
    fn schedule_align_is_rectangular(
        lens in prop::collection::vec(1usize..20, 1..4),
        periods in prop::collection::vec(1usize..5, 1..4),
    ) {
        let k = lens.len().min(periods.len());
        let signals: Vec<ScheduledSignal> = (0..k)
            .map(|i| {
                ScheduledSignal::new(
                    (0..lens[i]).map(|j| (i * 31 + j) as f64).collect(),
                    periods[i],
                )
            })
            .collect();
        let (rows, m) = align(&signals, Fill::Linear);
        prop_assert_eq!(rows.len(), k);
        for r in &rows {
            prop_assert_eq!(r.len(), m);
        }
        let min_ticks = signals.iter().map(ScheduledSignal::ticks).min().unwrap();
        prop_assert_eq!(m, min_ticks);
    }

    /// Every wire profile decodes to structurally identical metadata; the
    /// F64 profile is bit-exact.
    #[test]
    fn wire_profiles_roundtrip(
        rows in prop::collection::vec(
            prop::collection::vec(-1e4f64..1e4, 64),
            1..3
        ),
    ) {
        let n = rows.len();
        let band = (64 * n / 4).max(4 * n + 20);
        let mut enc = SbrEncoder::new(n, 64, SbrConfig::new(band, 48)).unwrap();
        let tx = enc.encode(&rows).unwrap();
        for p in [
            wire_profile::Profile::F64,
            wire_profile::Profile::F32,
            wire_profile::Profile::Q16,
        ] {
            let frame = wire_profile::encode(&tx, p);
            let back = wire_profile::decode(&mut frame.clone()).unwrap();
            prop_assert_eq!(back.seq, tx.seq);
            prop_assert_eq!(back.w, tx.w);
            prop_assert_eq!(back.intervals.len(), tx.intervals.len());
            prop_assert_eq!(back.base_updates.len(), tx.base_updates.len());
            if p == wire_profile::Profile::F64 {
                prop_assert_eq!(&back, &tx);
            }
            // Structural fields survive any profile.
            for (a, b) in back.intervals.iter().zip(&tx.intervals) {
                prop_assert_eq!(a.start, b.start);
                prop_assert_eq!(a.shift, b.shift);
            }
        }
    }

    /// ChunkView aggregates always agree with reconstruct-then-scan.
    #[test]
    fn chunk_view_matches_reconstruction(
        rows in prop::collection::vec(
            prop::collection::vec(-1e4f64..1e4, 64),
            1..3
        ),
        t0 in 0usize..63,
        span in 1usize..64,
    ) {
        let n = rows.len();
        let band = (64 * n / 4).max(4 * n + 20);
        let mut enc = SbrEncoder::new(n, 64, SbrConfig::new(band, 48)).unwrap();
        let tx = enc.encode(&rows).unwrap();
        let mut base = Vec::new();
        for u in &tx.base_updates {
            base.extend_from_slice(&u.values);
        }
        let total = 64 * n;
        let rec = sbr_repro::core::get_intervals::reconstruct_flat(&base, &tx.intervals, total)
            .unwrap();
        let view = ChunkView::new(&tx.intervals, &base, total).unwrap();
        let t1 = (t0 + span).min(total);
        let t0 = t0.min(t1 - 1);
        let direct: f64 = rec[t0..t1].iter().sum();
        let fast = view.range_sum(t0, t1).unwrap();
        let scale = rec[t0..t1].iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((direct - fast).abs() <= 1e-9 * scale, "{fast} vs {direct}");
        let (lo, hi) = view.range_min_max(t0, t1).unwrap();
        let dlo = rec[t0..t1].iter().copied().fold(f64::INFINITY, f64::min);
        let dhi = rec[t0..t1].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo - dlo).abs() <= 1e-9 * scale);
        prop_assert!((hi - dhi).abs() <= 1e-9 * scale);
    }

    /// Arbitrary bytes never panic the codec — they error or (by fluke)
    /// parse.
    #[test]
    fn codec_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = codec::decode(&mut &bytes[..]);
        let _ = wire_profile::decode(&mut &bytes[..]);
    }

    /// Garbage *after* a valid magic/profile id still never panics.
    #[test]
    fn codec_never_panics_on_framed_garbage(
        body in prop::collection::vec(any::<u8>(), 0..200),
        profile_id in 0u8..4,
    ) {
        let mut frame = Vec::new();
        frame.extend(0x5342_5231u32.to_le_bytes());
        frame.extend(&body);
        let _ = codec::decode(&mut &frame[..]);
        let mut frame = Vec::new();
        frame.extend(0x5342_5250u32.to_le_bytes());
        frame.push(profile_id);
        frame.extend(&body);
        let _ = wire_profile::decode(&mut &frame[..]);
    }

    // ---------------- xcorr / BestMap FFT kernel ----------------

    /// FFT sliding dot products agree with the direct loop at every shift,
    /// within a relative tolerance, on arbitrary finite signals.
    #[test]
    fn xcorr_fft_matches_direct_products(
        x in finite_signal(128),
        y in finite_signal(128),
    ) {
        prop_assume!(y.len() <= x.len());
        let plan = xcorr::XcorrPlan::new(&x);
        let fast = plan.sliding_dot(&y);
        let slow = xcorr::sliding_dot_direct(&x, &y);
        prop_assert_eq!(fast.len(), slow.len());
        let scale = slow.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        for (s, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((a - b).abs() <= 1e-6 * scale, "shift {}: {} vs {}", s, a, b);
        }
    }

    /// `BestMap` under the FFT strategy selects the identical shift and
    /// bit-identical coefficients as the direct sweep — including windows
    /// longer than the base (fall-back on both paths) and a constant base
    /// signal (every shift ties; earliest must win on both paths).
    #[test]
    fn best_map_fft_strategy_identical_to_direct(
        x in finite_signal(128),
        y in finite_signal(128),
        make_x_constant in any::<bool>(),
    ) {
        // W = 32 with the default ×2 factor keeps windows up to 64 samples
        // shiftable; longer windows exercise the fall-back on both paths,
        // as do windows longer than the base signal itself.
        let x = if make_x_constant { vec![7.5; x.len()] } else { x };
        let w = 32;
        let cfg_direct = SbrConfig::new(1_000_000, 1_000_000)
            .with_w(w)
            .with_shift_strategy(ShiftStrategy::Direct);
        let cfg_fft = cfg_direct.clone().with_shift_strategy(ShiftStrategy::Fft);
        let cd = MapContext::new(&x, &y, &cfg_direct, w);
        let cf = MapContext::new(&x, &y, &cfg_fft, w);
        let mut iv_d = Interval::unfitted(0, y.len());
        let mut iv_f = Interval::unfitted(0, y.len());
        cd.best_map(&mut iv_d);
        cf.best_map(&mut iv_f);
        prop_assert_eq!(iv_d.shift, iv_f.shift);
        prop_assert_eq!(iv_d.a.to_bits(), iv_f.a.to_bits());
        prop_assert_eq!(iv_d.b.to_bits(), iv_f.b.to_bits());
        prop_assert_eq!(iv_d.err.to_bits(), iv_f.err.to_bits());
    }

    /// The swing filter's ε-guarantee holds on arbitrary finite data.
    #[test]
    fn swing_error_bound_universal(
        y in finite_signal(200),
        eps_factor in 0.01f64..1.0,
    ) {
        let span = y.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().copied().fold(f64::INFINITY, f64::min);
        let eps = span * eps_factor + 1e-9;
        let knots = swing::compress(&y, eps);
        let rec = swing::reconstruct(&knots, y.len());
        for (a, b) in y.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= eps * (1.0 + 1e-9) + 1e-9 * a.abs());
        }
        // Knots are strictly increasing in index and start at 0.
        prop_assert_eq!(knots[0].index, 0);
        for w in knots.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
    }

    // ---------------- loss-tolerant wire protocol ----------------

    /// Graceful-degradation contract: under an arbitrary seeded fault
    /// schedule (drops, duplicates, reordering, bit corruption, an
    /// optional crash), every chunk the station logs reconstructs
    /// bit-for-bit equal to the encoder-side ground truth. Chunks may be
    /// lost — surfaced as explicit gaps and resyncs — but the log never
    /// contains silently wrong values.
    #[test]
    fn chaos_schedules_never_yield_silent_wrong_values(
        seed in any::<u64>(),
        drop in 0.0f64..0.6,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        corrupt in 0.0f64..0.3,
        crash_sel in 0u64..9,
        retx_cap in 1usize..6,
    ) {
        // crash_sel ∈ [0, 6) schedules a crash after that chunk; the rest
        // of the range means no crash (the shim has no Option strategy).
        let crash_after = (crash_sel < 6).then_some(crash_sel);
        let mut node = SensorNode::new(1, 2, 32, SbrConfig::new(40, 24)).unwrap();
        node.enable_arq(retx_cap);
        let mut plan = FaultPlan::new(seed)
            .with_drop(drop)
            .with_dup(dup)
            .with_reorder(reorder)
            .with_corrupt(corrupt);
        let station = BaseStation::new();
        let mut mirror = Decoder::new();
        let mut truth = std::collections::HashMap::new();
        for c in 0u64..8 {
            for i in 0..32 {
                let t = (c * 32 + i) as f64;
                if let Some(flush) = node
                    .record(&[(t * 0.31).sin() * 6.0, (t * 0.17).cos() * 3.0 + (i % 3) as f64])
                    .unwrap()
                {
                    let parsed = codec::decode_any(&mut flush.frame.clone()).unwrap();
                    truth.insert(
                        (flush.epoch, flush.transmission.seq),
                        mirror.decode_frame(&parsed).unwrap(),
                    );
                }
            }
            fault_round(&mut node, &station, &mut plan)?;
            if crash_after == Some(c) {
                node.reboot().unwrap();
            }
        }
        for _ in 0..64 {
            if node.pending_depth() == 0 {
                break;
            }
            fault_round(&mut node, &station, &mut plan)?;
        }
        for leftover in plan.drain() {
            let _ = station.receive_frame(1, leftover);
        }
        let n = station.chunk_count(1);
        if n > 0 {
            let frames = station.frames(1).unwrap();
            let chunks = station.reconstruct_chunks(1, 0, n).unwrap();
            for (frame, chunk) in frames.iter().zip(&chunks) {
                let want = truth
                    .get(&(frame.epoch, frame.tx.seq))
                    .expect("the station cannot invent frames");
                prop_assert!(
                    chunk == want,
                    "epoch {} seq {} diverged",
                    frame.epoch,
                    frame.tx.seq
                );
            }
        }
    }
}
