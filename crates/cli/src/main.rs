//! `sbr` — compress/decompress multi-signal CSV time series with
//! Self-Based Regression. See `sbr help`.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error. When the
//! `SBR_TRACE` environment variable names a file, failures are also
//! appended there as structured `cli.error` events.

use sbr_cli::error::CliError;

/// Append a `cli.error` event to the `SBR_TRACE` log, if one is
/// configured. Appending (not truncating) preserves events the failing
/// command already wrote. Best-effort: tracing failures never mask the
/// original error.
fn trace_error(err: &CliError) {
    let Ok(path) = std::env::var(sbr_obs::TRACE_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(rec) = sbr_obs::MetricsRecorder::with_trace_path_append(path) {
        use sbr_obs::Recorder;
        rec.emit(
            "cli.error",
            None,
            &[("kind", err.kind()), ("message", err.message())],
        );
    }
}

/// Print the command's output, tolerating a closed stdout (`sbr trace |
/// head` sends SIGPIPE-as-EPIPE once `head` exits) — `println!` would
/// panic there, turning a healthy pipeline into exit 101.
fn print_output(out: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut handle = stdout.lock();
    if let Err(e) = writeln!(handle, "{out}").and_then(|()| handle.flush()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("error: cannot write output: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match sbr_cli::args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            let err = CliError::Usage(e);
            eprintln!("error: {err}");
            trace_error(&err);
            std::process::exit(err.exit_code());
        }
    };
    match sbr_cli::run(&cli) {
        Ok(out) => print_output(&out),
        Err(err) => {
            eprintln!("error: {err}");
            trace_error(&err);
            std::process::exit(err.exit_code());
        }
    }
}
