//! `sbr` — compress/decompress multi-signal CSV time series with
//! Self-Based Regression. See `sbr help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match sbr_cli::args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match sbr_cli::run(&cli) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
