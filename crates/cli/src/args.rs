//! Hand-rolled argument parsing (no CLI crates offline; the grammar is
//! small enough to own).

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// The `sbr` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sbr compress`: CSV → framed SBR stream.
    Compress {
        /// Input CSV (columns = signals).
        input: String,
        /// Output stream file.
        output: String,
        /// Bandwidth budget per transmission, in values.
        band: usize,
        /// Base-signal buffer size, in values.
        m_base: usize,
        /// Samples per signal per transmission (default: the whole file
        /// as one batch).
        batch: Option<usize>,
        /// Error metric: "sse", "relative" or "maxabs".
        metric: String,
        /// Share base-prefix fit work across `Search` probes via the
        /// transmission-scoped probe cache (default true; the output
        /// stream is byte-identical either way).
        probe_cache: bool,
        /// Write an `sbr-obs/v1` metrics snapshot (JSON) here after the run.
        metrics: Option<String>,
        /// Write a line-delimited structured trace log here during the run
        /// (same format as the `SBR_TRACE` environment variable).
        trace: Option<String>,
    },
    /// `sbr decompress`: framed SBR stream → CSV.
    Decompress {
        /// Input stream file.
        input: String,
        /// Output CSV.
        output: String,
    },
    /// `sbr info`: per-transmission statistics of a stream file.
    Info {
        /// Input stream file.
        input: String,
    },
    /// `sbr compare`: run SBR and every baseline on a CSV at one budget.
    Compare {
        /// Input CSV.
        input: String,
        /// Bandwidth budget per batch, in values.
        band: usize,
    },
    /// `sbr aggregate`: SUM/AVG/MIN/MAX of a signal range, answered
    /// directly on a compressed stream file.
    Aggregate {
        /// Input stream file.
        input: String,
        /// Signal (column) index.
        signal: usize,
        /// First sample (inclusive).
        from: usize,
        /// Last sample (exclusive).
        to: usize,
    },
    /// `sbr generate`: write one of the synthetic evaluation datasets as
    /// CSV (so the whole pipeline is drivable from the shell).
    Generate {
        /// Dataset name: "phone", "weather", "stock", "mixed", "indexes" or
        /// "netflow".
        dataset: String,
        /// Output CSV.
        output: String,
        /// Samples per signal.
        len: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `sbr report`: render a metrics artifact (a `BENCH_SBR.json` in the
    /// `sbr-bench/v3` schema — earlier v1/v2 artifacts still parse — or a
    /// raw `sbr-obs/v1` snapshot) as per-phase time / error / bandwidth
    /// tables.
    Report {
        /// Input JSON file.
        input: String,
    },
    /// `sbr trace`: filter and pretty-print a structured event log
    /// produced via `SBR_TRACE` or `compress --trace`.
    Trace {
        /// Input event-log file (one JSON object per line).
        input: String,
        /// Only show events whose name contains this substring.
        filter: Option<String>,
    },
    /// `sbr help`.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
sbr — Self-Based Regression compression for multi-signal time series

USAGE:
  sbr compress   --input <csv> --output <file> --band <values>
                 [--mbase <values>] [--batch <samples>]
                 [--metric sse|relative|maxabs]
                 [--probe-cache on|off]
                 [--metrics <json>] [--trace <log>]
  sbr decompress --input <file> --output <csv>
  sbr info       --input <file>
  sbr compare    --input <csv> --band <values>
  sbr aggregate  --input <file> --signal <idx> --from <t0> --to <t1>
  sbr generate   --dataset phone|weather|stock|mixed|indexes|netflow
                 --output <csv> [--len <samples>] [--seed <n>]
  sbr report     --input <json>
  sbr trace      --input <log> [--filter <substring>]
  sbr help

The CSV has one column per signal and one row per sample; an optional
header row names the signals.

Observability: set SBR_TRACE=<path> to stream structured events from any
subcommand into <path> (one JSON object per line); `sbr report` renders
metrics artifacts (`sbr-bench/v3` benchmark files — earlier versions
still parse — or `sbr-obs/v1` snapshots) and `sbr trace` pretty-prints
event logs.

Performance: `--probe-cache off` disables the Search probe cache (the
default shares base-prefix fit work across insertion-count probes); the
compressed stream is byte-identical either way.

Exit codes: 0 success, 1 runtime failure, 2 usage error.";

fn take_value(args: &mut std::collections::HashMap<String, String>, key: &str) -> Option<String> {
    args.remove(key)
}

/// Parse a full argument vector (excluding the program name).
pub fn parse(argv: &[String]) -> Result<Cli, String> {
    let Some(sub) = argv.first() else {
        return Ok(Cli {
            command: Command::Help,
        });
    };
    let mut flags = std::collections::HashMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found '{}'", argv[i]))?;
        let val = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} requires a value"))?;
        flags.insert(key.to_string(), val.clone());
        i += 2;
    }
    let required = |flags: &mut std::collections::HashMap<String, String>, k: &str| {
        take_value(flags, k).ok_or_else(|| format!("missing required --{k}"))
    };
    let parse_usize = |v: String, k: &str| {
        v.parse::<usize>()
            .map_err(|_| format!("--{k} must be a positive integer, got '{v}'"))
    };

    let command = match sub.as_str() {
        "compress" => {
            let input = required(&mut flags, "input")?;
            let output = required(&mut flags, "output")?;
            let band = parse_usize(required(&mut flags, "band")?, "band")?;
            let m_base = match take_value(&mut flags, "mbase") {
                Some(v) => parse_usize(v, "mbase")?,
                None => band,
            };
            let batch = match take_value(&mut flags, "batch") {
                Some(v) => Some(parse_usize(v, "batch")?),
                None => None,
            };
            let metric = take_value(&mut flags, "metric").unwrap_or_else(|| "sse".into());
            if !["sse", "relative", "maxabs"].contains(&metric.as_str()) {
                return Err(format!("unknown metric '{metric}'"));
            }
            let probe_cache = match take_value(&mut flags, "probe-cache").as_deref() {
                None | Some("on") => true,
                Some("off") => false,
                Some(v) => return Err(format!("--probe-cache must be on|off, got '{v}'")),
            };
            Command::Compress {
                input,
                output,
                band,
                m_base,
                batch,
                metric,
                probe_cache,
                metrics: take_value(&mut flags, "metrics"),
                trace: take_value(&mut flags, "trace"),
            }
        }
        "decompress" => Command::Decompress {
            input: required(&mut flags, "input")?,
            output: required(&mut flags, "output")?,
        },
        "info" => Command::Info {
            input: required(&mut flags, "input")?,
        },
        "compare" => Command::Compare {
            input: required(&mut flags, "input")?,
            band: parse_usize(required(&mut flags, "band")?, "band")?,
        },
        "aggregate" => Command::Aggregate {
            input: required(&mut flags, "input")?,
            signal: parse_usize(required(&mut flags, "signal")?, "signal")?,
            from: parse_usize(required(&mut flags, "from")?, "from")?,
            to: parse_usize(required(&mut flags, "to")?, "to")?,
        },
        "generate" => {
            let dataset = required(&mut flags, "dataset")?;
            if !["phone", "weather", "stock", "mixed", "indexes", "netflow"]
                .contains(&dataset.as_str())
            {
                return Err(format!("unknown dataset '{dataset}'"));
            }
            let output = required(&mut flags, "output")?;
            let len = match take_value(&mut flags, "len") {
                Some(v) => parse_usize(v, "len")?,
                None => 2048,
            };
            let seed = match take_value(&mut flags, "seed") {
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed must be an integer, got '{v}'"))?,
                None => 42,
            };
            Command::Generate {
                dataset,
                output,
                len,
                seed,
            }
        }
        "report" => Command::Report {
            input: required(&mut flags, "input")?,
        },
        "trace" => Command::Trace {
            input: required(&mut flags, "input")?,
            filter: take_value(&mut flags, "filter"),
        },
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    if let Some(k) = flags.keys().next() {
        return Err(format!("unrecognized flag --{k}"));
    }
    Ok(Cli { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_compress_with_defaults() {
        let cli = parse(&argv("compress --input a.csv --output b.sbr --band 100")).unwrap();
        assert_eq!(
            cli.command,
            Command::Compress {
                input: "a.csv".into(),
                output: "b.sbr".into(),
                band: 100,
                m_base: 100,
                batch: None,
                metric: "sse".into(),
                probe_cache: true,
                metrics: None,
                trace: None,
            }
        );
    }

    #[test]
    fn parses_probe_cache_flag() {
        let off = parse(&argv(
            "compress --input a --output b --band 64 --probe-cache off",
        ))
        .unwrap();
        match off.command {
            Command::Compress { probe_cache, .. } => assert!(!probe_cache),
            other => panic!("wrong command {other:?}"),
        }
        let on = parse(&argv(
            "compress --input a --output b --band 64 --probe-cache on",
        ))
        .unwrap();
        match on.command {
            Command::Compress { probe_cache, .. } => assert!(probe_cache),
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&argv(
                "compress --input a --output b --band 64 --probe-cache maybe"
            ))
            .is_err(),
            "only on|off are accepted"
        );
    }

    #[test]
    fn parses_compress_observability_flags() {
        let cli = parse(&argv(
            "compress --input a --output b --band 64 --metrics m.json --trace t.log",
        ))
        .unwrap();
        match cli.command {
            Command::Compress { metrics, trace, .. } => {
                assert_eq!(metrics.as_deref(), Some("m.json"));
                assert_eq!(trace.as_deref(), Some("t.log"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_report_and_trace() {
        assert_eq!(
            parse(&argv("report --input BENCH_SBR.json"))
                .unwrap()
                .command,
            Command::Report {
                input: "BENCH_SBR.json".into()
            }
        );
        assert_eq!(
            parse(&argv("trace --input t.log --filter best_map"))
                .unwrap()
                .command,
            Command::Trace {
                input: "t.log".into(),
                filter: Some("best_map".into()),
            }
        );
        assert!(parse(&argv("report")).is_err(), "report needs --input");
    }

    #[test]
    fn parses_all_compress_flags() {
        let cli = parse(&argv(
            "compress --input a --output b --band 64 --mbase 32 --batch 256 --metric maxabs",
        ))
        .unwrap();
        match cli.command {
            Command::Compress {
                m_base,
                batch,
                metric,
                ..
            } => {
                assert_eq!(m_base, 32);
                assert_eq!(batch, Some(256));
                assert_eq!(metric, "maxabs");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        assert!(parse(&argv("compress --input a --band 10")).is_err());
        assert!(parse(&argv("decompress --input a")).is_err());
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(parse(&argv("compress --input a --output b --band ten")).is_err());
        assert!(parse(&argv("compress --input a --output b --band 10 --metric l7")).is_err());
        assert!(parse(&argv("compress --input a --output b --band 10 --bogus 1")).is_err());
    }

    #[test]
    fn parses_aggregate() {
        let cli = parse(&argv(
            "aggregate --input s.sbr --signal 2 --from 10 --to 99",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Aggregate {
                input: "s.sbr".into(),
                signal: 2,
                from: 10,
                to: 99,
            }
        );
        assert!(parse(&argv("aggregate --input s.sbr --signal 2 --from 10")).is_err());
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cli = parse(&argv("generate --dataset weather --output w.csv")).unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                dataset: "weather".into(),
                output: "w.csv".into(),
                len: 2048,
                seed: 42,
            }
        );
        assert!(parse(&argv("generate --dataset nope --output x")).is_err());
    }

    #[test]
    fn no_args_means_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(parse(&argv("explode --input x")).is_err());
    }
}
