//! Hand-rolled argument parsing (no CLI crates offline; the grammar is
//! small enough to own).

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// The `sbr` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sbr compress`: CSV → framed SBR stream.
    Compress {
        /// Input CSV (columns = signals).
        input: String,
        /// Output stream file.
        output: String,
        /// Bandwidth budget per transmission, in values.
        band: usize,
        /// Base-signal buffer size, in values.
        m_base: usize,
        /// Samples per signal per transmission (default: the whole file
        /// as one batch).
        batch: Option<usize>,
        /// Error metric: "sse", "relative" or "maxabs".
        metric: String,
        /// Share base-prefix fit work across `Search` probes via the
        /// transmission-scoped probe cache (default true; the output
        /// stream is byte-identical either way).
        probe_cache: bool,
        /// Memoize `GetBase` pair fits and carry them across transmissions
        /// via the content-addressed fit cache (default true; the output
        /// stream is byte-identical either way).
        fit_cache: bool,
        /// Write an `sbr-obs/v2` metrics snapshot (JSON) here after the run.
        metrics: Option<String>,
        /// Write a line-delimited structured trace log here during the run
        /// (same format as the `SBR_TRACE` environment variable).
        trace: Option<String>,
    },
    /// `sbr decompress`: framed SBR stream → CSV.
    Decompress {
        /// Input stream file.
        input: String,
        /// Output CSV.
        output: String,
    },
    /// `sbr info`: per-transmission statistics of a stream file.
    Info {
        /// Input stream file.
        input: String,
    },
    /// `sbr compare`: run SBR and every baseline on a CSV at one budget.
    Compare {
        /// Input CSV.
        input: String,
        /// Bandwidth budget per batch, in values.
        band: usize,
    },
    /// `sbr aggregate`: SUM/AVG/MIN/MAX of a signal range, answered
    /// directly on a compressed stream file.
    Aggregate {
        /// Input stream file.
        input: String,
        /// Signal (column) index.
        signal: usize,
        /// First sample (inclusive).
        from: usize,
        /// Last sample (exclusive).
        to: usize,
        /// Which query path answers the range (A/B comparable).
        engine: EngineKind,
    },
    /// `sbr generate`: write one of the synthetic evaluation datasets as
    /// CSV (so the whole pipeline is drivable from the shell).
    Generate {
        /// Dataset name: "phone", "weather", "stock", "mixed", "indexes" or
        /// "netflow".
        dataset: String,
        /// Output CSV.
        output: String,
        /// Samples per signal.
        len: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `sbr report`: render a metrics artifact (a `BENCH_SBR.json` in the
    /// `sbr-bench/v3` schema — earlier v1/v2 artifacts still parse — or a
    /// raw `sbr-obs/v2` snapshot — v1 still parses) as per-phase time / error / bandwidth
    /// tables.
    Report {
        /// Input JSON file.
        input: String,
    },
    /// `sbr simulate`: run the loss-tolerant ARQ protocol over a
    /// simulated sensor network with seeded fault injection, printing
    /// delivery/recovery statistics.
    Simulate {
        /// Sensors in the line topology (the base station is extra).
        nodes: usize,
        /// Signals per sensor.
        signals: usize,
        /// Samples per signal per sensor.
        len: usize,
        /// Samples per batch (buffer depth M).
        batch: usize,
        /// Bandwidth budget per transmission, in values.
        band: usize,
        /// Per-hop radio loss probability (each attempt, `[0, 1)`).
        loss: f64,
        /// Seed for the end-to-end fault schedule.
        fault_seed: u64,
        /// End-to-end drop probability.
        drop: f64,
        /// End-to-end duplication probability.
        dup: f64,
        /// End-to-end reorder probability.
        reorder: f64,
        /// End-to-end single-bit corruption probability.
        corrupt: f64,
        /// Crash sensor `node` right after it flushes chunk `chunk`
        /// (`node:chunk`).
        crash_at: Option<(usize, u64)>,
        /// Write an `sbr-obs/v2` metrics snapshot (JSON) here after the run.
        metrics: Option<String>,
        /// Persist the base station's logs as segmented stores under this
        /// directory (see `sbr storage`).
        store: Option<String>,
        /// Segment size in bytes for `--store` (default 65536).
        segment_bytes: Option<u64>,
    },
    /// `sbr trace`: filter and pretty-print a structured event log
    /// produced via `SBR_TRACE` or `compress --trace`.
    Trace {
        /// Input event-log file (one JSON object per line).
        input: String,
        /// Only show events whose name contains this substring.
        filter: Option<String>,
        /// Only show frame-lifecycle events for this frame
        /// (`node:epoch:seq`, validated at parse time).
        frame: Option<sbr_obs::FrameId>,
        /// Only show frame-lifecycle events from this sensor node.
        node: Option<u32>,
        /// Only show frame-lifecycle events of this kind (`tx`, `retx`,
        /// `acked`, ... — validated at parse time).
        kind: Option<sbr_obs::EventKind>,
    },
    /// `sbr perf diff`: compare two `BENCH_SBR.json` artifacts and fail
    /// on wall-time regressions beyond a tolerance.
    PerfDiff {
        /// Baseline benchmark artifact.
        baseline: String,
        /// Candidate benchmark artifact.
        candidate: String,
        /// Allowed relative wall-time growth (0.25 = +25%).
        tolerance: f64,
        /// Also write the full diff report here.
        report: Option<String>,
    },
    /// `sbr storage inspect`: audit every sensor store under a directory
    /// (segment CRCs, continuity chain, checkpoint snapshots).
    StorageInspect {
        /// Store directory (as written by `simulate --store`).
        dir: String,
    },
    /// `sbr storage compact`: drop checkpoints superseded behind each
    /// store's newest resync snapshot.
    StorageCompact {
        /// Store directory (as written by `simulate --store`).
        dir: String,
    },
    /// `sbr help`.
    Help,
}

/// Which query path `sbr aggregate` answers a range with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The compressed-domain query engine: closed-form interval moments,
    /// no chunk is ever decoded (the default).
    Compressed,
    /// The full-decode baseline: replay the stream and aggregate the
    /// reconstruction (for A/B comparison).
    Decode,
}

/// Usage text.
pub const USAGE: &str = "\
sbr — Self-Based Regression compression for multi-signal time series

USAGE:
  sbr compress   --input <csv> --output <file> --band <values>
                 [--mbase <values>] [--batch <samples>]
                 [--metric sse|relative|maxabs]
                 [--probe-cache on|off] [--fit-cache on|off]
                 [--metrics <json>] [--trace <log>]
  sbr decompress --input <file> --output <csv>
  sbr info       --input <file>
  sbr compare    --input <csv> --band <values>
  sbr aggregate  --input <file> --signal <idx> --from <t0> --to <t1>
                 [--engine compressed|decode]
  sbr generate   --dataset phone|weather|stock|mixed|indexes|netflow
                 --output <csv> [--len <samples>] [--seed <n>]
  sbr report     --input <json>
  sbr simulate   [--nodes <n>] [--signals <n>] [--len <samples>]
                 [--batch <samples>] [--band <values>]
                 [--loss <p>] [--fault-seed <n>]
                 [--drop <p>] [--dup <p>] [--reorder <p>] [--corrupt <p>]
                 [--crash-at <node>:<chunk>] [--metrics <json>]
                 [--store <dir>] [--segment-bytes <n>]
  sbr storage inspect <dir>
  sbr storage compact <dir>
  sbr trace      --input <log> [--filter <substring>]
                 [--frame <node>:<epoch>:<seq>] [--node <n>]
                 [--kind encoded|queued|tx|retx|dropped|dup|corrupt|
                         acked|decoded|persisted|resynced]
  sbr perf diff  <baseline.json> <candidate.json>
                 [--tolerance <frac>] [--report <txt>]
  sbr help

The CSV has one column per signal and one row per sample; an optional
header row names the signals.

Observability: set SBR_TRACE=<path> to stream structured events from any
subcommand into <path> (one JSON object per line); `sbr report` renders
metrics artifacts (`sbr-bench/v3` benchmark files — earlier versions
still parse — or `sbr-obs/v2` snapshots, v1 accepted) and `sbr trace` pretty-prints
event logs. With a frame-lifecycle timeline attached (`sbr simulate`
under SBR_TRACE), `sbr trace` narrows to one frame (`--frame
node:epoch:seq`), one sensor (`--node`) or one lifecycle step
(`--kind`); `sbr perf diff` compares the encode/search/get_base walls,
cache hit rates and recovery counters of two benchmark artifacts and
exits 1 when a wall regresses beyond `--tolerance` (default 0.25).

Fault injection: `sbr simulate` drives the loss-tolerant v2 protocol
(per-frame CRC, sequence/epoch tracking, bounded retransmission with
cumulative ACKs, resync on overflow or crash) over a line topology with
per-hop loss (`--loss`) and a seeded end-to-end fault schedule
(`--drop`/`--dup`/`--reorder`/`--corrupt`, `--crash-at node:chunk`),
then prints the recovery statistics.

Durability: `simulate --store <dir>` persists every accepted frame into
per-sensor segmented stores (CRC-framed records in fixed-size sealed
segments, with a checkpoint written at each seal so recovery replays
one segment instead of the whole history; `--segment-bytes` tunes the
segment budget). `sbr storage inspect <dir>` audits every store end to
end — record CRCs, the epoch/sequence continuity chain, and each
checkpoint's snapshot against the walk — and exits 1 on any damage;
`sbr storage compact <dir>` drops checkpoints superseded behind each
store's newest resync snapshot.

Performance: `--probe-cache off` disables the Search probe cache (the
default shares base-prefix fit work across insertion-count probes), and
`--fit-cache off` disables the incremental GetBase fit cache (the
default memoizes pair fits and carries them across transmissions); the
compressed stream is byte-identical either way.

Exit codes: 0 success, 1 runtime failure, 2 usage error.";

fn take_value(args: &mut std::collections::BTreeMap<String, String>, key: &str) -> Option<String> {
    args.remove(key)
}

/// Parse a full argument vector (excluding the program name).
pub fn parse(argv: &[String]) -> Result<Cli, String> {
    let Some(sub) = argv.first() else {
        return Ok(Cli {
            command: Command::Help,
        });
    };
    let mut flags = std::collections::BTreeMap::new();
    // `perf` and `storage` take positionals (`perf diff <baseline>
    // <candidate>`, `storage inspect <dir>`) before their flags; every
    // other subcommand is pure --flag value pairs.
    let mut positionals: Vec<String> = Vec::new();
    let mut i = 1;
    if sub == "perf" || sub == "storage" {
        while i < argv.len() && !argv[i].starts_with("--") {
            positionals.push(argv[i].clone());
            i += 1;
        }
    }
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found '{}'", argv[i]))?;
        let val = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} requires a value"))?;
        flags.insert(key.to_string(), val.clone());
        i += 2;
    }
    let required = |flags: &mut std::collections::BTreeMap<String, String>, k: &str| {
        take_value(flags, k).ok_or_else(|| format!("missing required --{k}"))
    };
    let parse_usize = |v: String, k: &str| {
        v.parse::<usize>()
            .map_err(|_| format!("--{k} must be a positive integer, got '{v}'"))
    };

    let command = match sub.as_str() {
        "compress" => {
            let input = required(&mut flags, "input")?;
            let output = required(&mut flags, "output")?;
            let band = parse_usize(required(&mut flags, "band")?, "band")?;
            let m_base = match take_value(&mut flags, "mbase") {
                Some(v) => parse_usize(v, "mbase")?,
                None => band,
            };
            let batch = match take_value(&mut flags, "batch") {
                Some(v) => Some(parse_usize(v, "batch")?),
                None => None,
            };
            let metric = take_value(&mut flags, "metric").unwrap_or_else(|| "sse".into());
            if !["sse", "relative", "maxabs"].contains(&metric.as_str()) {
                return Err(format!("unknown metric '{metric}'"));
            }
            let probe_cache = match take_value(&mut flags, "probe-cache").as_deref() {
                None | Some("on") => true,
                Some("off") => false,
                Some(v) => return Err(format!("--probe-cache must be on|off, got '{v}'")),
            };
            let fit_cache = match take_value(&mut flags, "fit-cache").as_deref() {
                None | Some("on") => true,
                Some("off") => false,
                Some(v) => return Err(format!("--fit-cache must be on|off, got '{v}'")),
            };
            Command::Compress {
                input,
                output,
                band,
                m_base,
                batch,
                metric,
                probe_cache,
                fit_cache,
                metrics: take_value(&mut flags, "metrics"),
                trace: take_value(&mut flags, "trace"),
            }
        }
        "decompress" => Command::Decompress {
            input: required(&mut flags, "input")?,
            output: required(&mut flags, "output")?,
        },
        "info" => Command::Info {
            input: required(&mut flags, "input")?,
        },
        "compare" => Command::Compare {
            input: required(&mut flags, "input")?,
            band: parse_usize(required(&mut flags, "band")?, "band")?,
        },
        "aggregate" => {
            let engine = match take_value(&mut flags, "engine").as_deref() {
                None | Some("compressed") => EngineKind::Compressed,
                Some("decode") => EngineKind::Decode,
                Some(v) => return Err(format!("--engine must be compressed|decode, got '{v}'")),
            };
            Command::Aggregate {
                input: required(&mut flags, "input")?,
                signal: parse_usize(required(&mut flags, "signal")?, "signal")?,
                from: parse_usize(required(&mut flags, "from")?, "from")?,
                to: parse_usize(required(&mut flags, "to")?, "to")?,
                engine,
            }
        }
        "generate" => {
            let dataset = required(&mut flags, "dataset")?;
            if !["phone", "weather", "stock", "mixed", "indexes", "netflow"]
                .contains(&dataset.as_str())
            {
                return Err(format!("unknown dataset '{dataset}'"));
            }
            let output = required(&mut flags, "output")?;
            let len = match take_value(&mut flags, "len") {
                Some(v) => parse_usize(v, "len")?,
                None => 2048,
            };
            let seed = match take_value(&mut flags, "seed") {
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed must be an integer, got '{v}'"))?,
                None => 42,
            };
            Command::Generate {
                dataset,
                output,
                len,
                seed,
            }
        }
        "report" => Command::Report {
            input: required(&mut flags, "input")?,
        },
        "simulate" => {
            let parse_u64 = |v: String, k: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{k} must be an integer, got '{v}'"))
            };
            let parse_prob = |v: Option<String>, k: &str| -> Result<f64, String> {
                let Some(v) = v else { return Ok(0.0) };
                let p = v
                    .parse::<f64>()
                    .map_err(|_| format!("--{k} must be a probability, got '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("--{k} must be in [0, 1], got {p}"));
                }
                Ok(p)
            };
            let opt_usize = |flags: &mut std::collections::BTreeMap<String, String>,
                             k: &str,
                             default: usize|
             -> Result<usize, String> {
                match take_value(flags, k) {
                    Some(v) => parse_usize(v, k),
                    None => Ok(default),
                }
            };
            let nodes = opt_usize(&mut flags, "nodes", 3)?;
            if nodes < 2 {
                return Err("--nodes must be at least 2 (station + one sensor)".into());
            }
            let signals = opt_usize(&mut flags, "signals", 2)?;
            let len = opt_usize(&mut flags, "len", 512)?;
            let batch = opt_usize(&mut flags, "batch", 64)?;
            let band = opt_usize(&mut flags, "band", 72)?;
            let loss = parse_prob(take_value(&mut flags, "loss"), "loss")?;
            if loss >= 1.0 {
                return Err(format!("--loss must be in [0, 1), got {loss}"));
            }
            let fault_seed = match take_value(&mut flags, "fault-seed") {
                Some(v) => parse_u64(v, "fault-seed")?,
                None => 42,
            };
            let crash_at = match take_value(&mut flags, "crash-at") {
                Some(v) => {
                    let (n, c) = v
                        .split_once(':')
                        .ok_or_else(|| format!("--crash-at wants node:chunk, got '{v}'"))?;
                    let node = n
                        .parse::<usize>()
                        .map_err(|_| format!("--crash-at node must be an integer, got '{n}'"))?;
                    let chunk = c
                        .parse::<u64>()
                        .map_err(|_| format!("--crash-at chunk must be an integer, got '{c}'"))?;
                    Some((node, chunk))
                }
                None => None,
            };
            let segment_bytes = match take_value(&mut flags, "segment-bytes") {
                Some(v) => {
                    let n = parse_u64(v, "segment-bytes")?;
                    if n == 0 {
                        return Err("--segment-bytes must be positive".into());
                    }
                    Some(n)
                }
                None => None,
            };
            let store = take_value(&mut flags, "store");
            if segment_bytes.is_some() && store.is_none() {
                return Err("--segment-bytes only makes sense with --store".into());
            }
            Command::Simulate {
                nodes,
                signals,
                len,
                batch,
                band,
                loss,
                fault_seed,
                drop: parse_prob(take_value(&mut flags, "drop"), "drop")?,
                dup: parse_prob(take_value(&mut flags, "dup"), "dup")?,
                reorder: parse_prob(take_value(&mut flags, "reorder"), "reorder")?,
                corrupt: parse_prob(take_value(&mut flags, "corrupt"), "corrupt")?,
                crash_at,
                metrics: take_value(&mut flags, "metrics"),
                store,
                segment_bytes,
            }
        }
        "trace" => {
            let frame = match take_value(&mut flags, "frame") {
                Some(v) => Some(
                    v.parse::<sbr_obs::FrameId>()
                        .map_err(|e| format!("--frame: {e}"))?,
                ),
                None => None,
            };
            let node = match take_value(&mut flags, "node") {
                Some(v) => Some(
                    v.parse::<u32>()
                        .map_err(|_| format!("--node must be a sensor id, got '{v}'"))?,
                ),
                None => None,
            };
            let kind = match take_value(&mut flags, "kind") {
                Some(v) => Some(sbr_obs::EventKind::parse(&v).ok_or_else(|| {
                    format!("--kind: unknown lifecycle event '{v}' (try tx, retx, acked, ...)")
                })?),
                None => None,
            };
            Command::Trace {
                input: required(&mut flags, "input")?,
                filter: take_value(&mut flags, "filter"),
                frame,
                node,
                kind,
            }
        }
        "perf" => {
            let mut pos = positionals.into_iter();
            match pos.next().as_deref() {
                Some("diff") => {}
                Some(other) => {
                    return Err(format!("unknown perf action '{other}' (expected 'diff')"))
                }
                None => return Err("usage: sbr perf diff <baseline.json> <candidate.json>".into()),
            }
            let (Some(baseline), Some(candidate), None) = (pos.next(), pos.next(), pos.next())
            else {
                return Err(
                    "perf diff wants exactly two files: <baseline.json> <candidate.json>".into(),
                );
            };
            let tolerance = match take_value(&mut flags, "tolerance") {
                Some(v) => {
                    let t = v
                        .parse::<f64>()
                        .map_err(|_| format!("--tolerance must be a fraction, got '{v}'"))?;
                    if !t.is_finite() || t < 0.0 {
                        return Err(format!("--tolerance must be non-negative, got {t}"));
                    }
                    t
                }
                None => 0.25,
            };
            Command::PerfDiff {
                baseline,
                candidate,
                tolerance,
                report: take_value(&mut flags, "report"),
            }
        }
        "storage" => {
            let mut pos = positionals.into_iter();
            let action = match pos.next() {
                Some(a) => a,
                None => return Err("usage: sbr storage inspect|compact <dir>".into()),
            };
            let (Some(dir), None) = (pos.next(), pos.next()) else {
                return Err(format!(
                    "storage {action} wants exactly one store directory"
                ));
            };
            match action.as_str() {
                "inspect" => Command::StorageInspect { dir },
                "compact" => Command::StorageCompact { dir },
                other => {
                    return Err(format!(
                        "unknown storage action '{other}' (expected 'inspect' or 'compact')"
                    ))
                }
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    if let Some(k) = flags.keys().next() {
        return Err(format!("unrecognized flag --{k}"));
    }
    Ok(Cli { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_compress_with_defaults() {
        let cli = parse(&argv("compress --input a.csv --output b.sbr --band 100")).unwrap();
        assert_eq!(
            cli.command,
            Command::Compress {
                input: "a.csv".into(),
                output: "b.sbr".into(),
                band: 100,
                m_base: 100,
                batch: None,
                metric: "sse".into(),
                probe_cache: true,
                fit_cache: true,
                metrics: None,
                trace: None,
            }
        );
    }

    #[test]
    fn parses_probe_cache_flag() {
        let off = parse(&argv(
            "compress --input a --output b --band 64 --probe-cache off",
        ))
        .unwrap();
        match off.command {
            Command::Compress { probe_cache, .. } => assert!(!probe_cache),
            other => panic!("wrong command {other:?}"),
        }
        let on = parse(&argv(
            "compress --input a --output b --band 64 --probe-cache on",
        ))
        .unwrap();
        match on.command {
            Command::Compress { probe_cache, .. } => assert!(probe_cache),
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&argv(
                "compress --input a --output b --band 64 --probe-cache maybe"
            ))
            .is_err(),
            "only on|off are accepted"
        );
    }

    #[test]
    fn parses_fit_cache_flag() {
        let off = parse(&argv(
            "compress --input a --output b --band 64 --fit-cache off",
        ))
        .unwrap();
        match off.command {
            Command::Compress { fit_cache, .. } => assert!(!fit_cache),
            other => panic!("wrong command {other:?}"),
        }
        let on = parse(&argv(
            "compress --input a --output b --band 64 --fit-cache on",
        ))
        .unwrap();
        match on.command {
            Command::Compress { fit_cache, .. } => assert!(fit_cache),
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&argv(
                "compress --input a --output b --band 64 --fit-cache maybe"
            ))
            .is_err(),
            "only on|off are accepted"
        );
    }

    #[test]
    fn parses_compress_observability_flags() {
        let cli = parse(&argv(
            "compress --input a --output b --band 64 --metrics m.json --trace t.log",
        ))
        .unwrap();
        match cli.command {
            Command::Compress { metrics, trace, .. } => {
                assert_eq!(metrics.as_deref(), Some("m.json"));
                assert_eq!(trace.as_deref(), Some("t.log"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_report_and_trace() {
        assert_eq!(
            parse(&argv("report --input BENCH_SBR.json"))
                .unwrap()
                .command,
            Command::Report {
                input: "BENCH_SBR.json".into()
            }
        );
        assert_eq!(
            parse(&argv("trace --input t.log --filter best_map"))
                .unwrap()
                .command,
            Command::Trace {
                input: "t.log".into(),
                filter: Some("best_map".into()),
                frame: None,
                node: None,
                kind: None,
            }
        );
        assert!(parse(&argv("report")).is_err(), "report needs --input");
    }

    #[test]
    fn parses_trace_lifecycle_filters() {
        let cli = parse(&argv(
            "trace --input t.log --frame 2:1:17 --node 2 --kind retx",
        ))
        .unwrap();
        match cli.command {
            Command::Trace {
                frame, node, kind, ..
            } => {
                assert_eq!(frame, Some(sbr_obs::FrameId::new(2, 1, 17)));
                assert_eq!(node, Some(2));
                assert_eq!(kind, Some(sbr_obs::EventKind::Retx));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn trace_rejects_malformed_lifecycle_filters() {
        // Exit code 2 in main: parse errors map to CliError::Usage.
        assert!(parse(&argv("trace --input t.log --frame 2:1")).is_err());
        assert!(parse(&argv("trace --input t.log --frame a:b:c")).is_err());
        assert!(parse(&argv("trace --input t.log --node minus-one")).is_err());
        assert!(parse(&argv("trace --input t.log --kind teleported")).is_err());
    }

    #[test]
    fn parses_perf_diff() {
        assert_eq!(
            parse(&argv("perf diff base.json cand.json"))
                .unwrap()
                .command,
            Command::PerfDiff {
                baseline: "base.json".into(),
                candidate: "cand.json".into(),
                tolerance: 0.25,
                report: None,
            }
        );
        let cli = parse(&argv(
            "perf diff base.json cand.json --tolerance 0.1 --report d.txt",
        ))
        .unwrap();
        match cli.command {
            Command::PerfDiff {
                tolerance, report, ..
            } => {
                assert_eq!(tolerance, 0.1);
                assert_eq!(report.as_deref(), Some("d.txt"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn perf_diff_rejects_bad_grammar() {
        assert!(parse(&argv("perf")).is_err(), "wants an action");
        assert!(parse(&argv("perf smash a b")).is_err(), "only diff");
        assert!(parse(&argv("perf diff base.json")).is_err(), "two files");
        assert!(parse(&argv("perf diff a b c")).is_err(), "exactly two");
        assert!(
            parse(&argv("perf diff a b --tolerance -0.5")).is_err(),
            "tolerance >= 0"
        );
        assert!(parse(&argv("perf diff a b --tolerance much")).is_err());
    }

    #[test]
    fn parses_all_compress_flags() {
        let cli = parse(&argv(
            "compress --input a --output b --band 64 --mbase 32 --batch 256 --metric maxabs",
        ))
        .unwrap();
        match cli.command {
            Command::Compress {
                m_base,
                batch,
                metric,
                ..
            } => {
                assert_eq!(m_base, 32);
                assert_eq!(batch, Some(256));
                assert_eq!(metric, "maxabs");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        assert!(parse(&argv("compress --input a --band 10")).is_err());
        assert!(parse(&argv("decompress --input a")).is_err());
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(parse(&argv("compress --input a --output b --band ten")).is_err());
        assert!(parse(&argv("compress --input a --output b --band 10 --metric l7")).is_err());
        assert!(parse(&argv("compress --input a --output b --band 10 --bogus 1")).is_err());
    }

    #[test]
    fn parses_aggregate() {
        let cli = parse(&argv(
            "aggregate --input s.sbr --signal 2 --from 10 --to 99",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Aggregate {
                input: "s.sbr".into(),
                signal: 2,
                from: 10,
                to: 99,
                engine: EngineKind::Compressed,
            }
        );
        assert!(parse(&argv("aggregate --input s.sbr --signal 2 --from 10")).is_err());
    }

    #[test]
    fn parses_aggregate_engine_flag() {
        let cli = parse(&argv(
            "aggregate --input s.sbr --signal 0 --from 0 --to 9 --engine decode",
        ))
        .unwrap();
        match cli.command {
            Command::Aggregate { engine, .. } => assert_eq!(engine, EngineKind::Decode),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&argv(
            "aggregate --input s.sbr --signal 0 --from 0 --to 9 --engine warp"
        ))
        .is_err());
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cli = parse(&argv("generate --dataset weather --output w.csv")).unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                dataset: "weather".into(),
                output: "w.csv".into(),
                len: 2048,
                seed: 42,
            }
        );
        assert!(parse(&argv("generate --dataset nope --output x")).is_err());
    }

    #[test]
    fn parses_simulate_with_defaults() {
        let cli = parse(&argv("simulate")).unwrap();
        assert_eq!(
            cli.command,
            Command::Simulate {
                nodes: 3,
                signals: 2,
                len: 512,
                batch: 64,
                band: 72,
                loss: 0.0,
                fault_seed: 42,
                drop: 0.0,
                dup: 0.0,
                reorder: 0.0,
                corrupt: 0.0,
                crash_at: None,
                metrics: None,
                store: None,
                segment_bytes: None,
            }
        );
    }

    #[test]
    fn parses_simulate_store_flags() {
        let cli = parse(&argv("simulate --store /tmp/s --segment-bytes 2048")).unwrap();
        match cli.command {
            Command::Simulate {
                store,
                segment_bytes,
                ..
            } => {
                assert_eq!(store.as_deref(), Some("/tmp/s"));
                assert_eq!(segment_bytes, Some(2048));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&argv("simulate --segment-bytes 2048")).is_err(),
            "--segment-bytes needs --store"
        );
        assert!(parse(&argv("simulate --store /tmp/s --segment-bytes 0")).is_err());
    }

    #[test]
    fn parses_storage_actions() {
        assert_eq!(
            parse(&argv("storage inspect /tmp/store")).unwrap().command,
            Command::StorageInspect {
                dir: "/tmp/store".into()
            }
        );
        assert_eq!(
            parse(&argv("storage compact /tmp/store")).unwrap().command,
            Command::StorageCompact {
                dir: "/tmp/store".into()
            }
        );
    }

    #[test]
    fn storage_rejects_bad_grammar() {
        assert!(parse(&argv("storage")).is_err(), "wants an action");
        assert!(parse(&argv("storage inspect")).is_err(), "wants a dir");
        assert!(parse(&argv("storage shred /tmp/x")).is_err(), "bad action");
        assert!(parse(&argv("storage inspect a b")).is_err(), "one dir");
    }

    #[test]
    fn parses_simulate_fault_flags() {
        let cli = parse(&argv(
            "simulate --nodes 4 --loss 0.2 --fault-seed 7 --drop 0.3 --dup 0.1 \
             --reorder 0.05 --corrupt 0.01 --crash-at 2:5 --metrics m.json",
        ))
        .unwrap();
        match cli.command {
            Command::Simulate {
                nodes,
                loss,
                fault_seed,
                drop,
                crash_at,
                metrics,
                ..
            } => {
                assert_eq!(nodes, 4);
                assert_eq!(loss, 0.2);
                assert_eq!(fault_seed, 7);
                assert_eq!(drop, 0.3);
                assert_eq!(crash_at, Some((2, 5)));
                assert_eq!(metrics.as_deref(), Some("m.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn simulate_rejects_bad_values() {
        assert!(parse(&argv("simulate --loss 1.0")).is_err(), "loss < 1");
        assert!(parse(&argv("simulate --drop 1.5")).is_err());
        assert!(parse(&argv("simulate --drop nope")).is_err());
        assert!(parse(&argv("simulate --nodes 1")).is_err());
        assert!(parse(&argv("simulate --crash-at 2")).is_err(), "wants n:c");
        assert!(parse(&argv("simulate --crash-at a:b")).is_err());
    }

    #[test]
    fn no_args_means_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(parse(&argv("explode --input x")).is_err());
    }
}
