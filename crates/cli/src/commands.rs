//! The subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use sbr_baselines::Compressor;
use sbr_core::query::aggregate_stream;
use sbr_core::{codec, Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};
use sbr_obs::json::Value;
use sbr_obs::{
    EventKind, FrameId, HistogramSnapshot, MetricsRecorder, Recorder, Snapshot, Timeline,
    DEFAULT_TIMELINE_CAPACITY,
};
use sensor_net::network::{Network, Strategy};
use sensor_net::storage::{self, recover_stream};
use sensor_net::{EnergyModel, FaultPlan, LossyLink, Topology};

use crate::args::{Cli, Command, EngineKind, USAGE};
use crate::csv::{self, Table};
use crate::error::CliError;

/// Run a parsed command line; returns the text to print.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Compress {
            input,
            output,
            band,
            m_base,
            batch,
            metric,
            probe_cache,
            fit_cache,
            metrics,
            trace,
        } => compress(
            input,
            output,
            *band,
            *m_base,
            *batch,
            metric,
            *probe_cache,
            *fit_cache,
            metrics.as_deref(),
            trace.as_deref(),
        ),
        Command::Decompress { input, output } => decompress(input, output),
        Command::Info { input } => info(input),
        Command::Compare { input, band } => compare(input, *band),
        Command::Aggregate {
            input,
            signal,
            from,
            to,
            engine,
        } => aggregate(input, *signal, *from, *to, *engine),
        Command::Generate {
            dataset,
            output,
            len,
            seed,
        } => generate(dataset, output, *len, *seed),
        Command::Report { input } => report(input),
        Command::Simulate {
            nodes,
            signals,
            len,
            batch,
            band,
            loss,
            fault_seed,
            drop,
            dup,
            reorder,
            corrupt,
            crash_at,
            metrics,
            store,
            segment_bytes,
        } => simulate(
            *nodes,
            *signals,
            *len,
            *batch,
            *band,
            *loss,
            *fault_seed,
            [*drop, *dup, *reorder, *corrupt],
            *crash_at,
            metrics.as_deref(),
            store.as_deref(),
            *segment_bytes,
        ),
        Command::Trace {
            input,
            filter,
            frame,
            node,
            kind,
        } => trace_log(input, filter.as_deref(), *frame, *node, *kind),
        Command::PerfDiff {
            baseline,
            candidate,
            tolerance,
            report,
        } => perf_diff(baseline, candidate, *tolerance, report.as_deref()),
        Command::StorageInspect { dir } => storage_inspect(Path::new(dir)),
        Command::StorageCompact { dir } => storage_compact(Path::new(dir)),
    }
}

fn generate(dataset: &str, output: &str, len: usize, seed: u64) -> Result<String, CliError> {
    if len == 0 {
        return Err(CliError::Usage("--len must be positive".into()));
    }
    let d = match dataset {
        "phone" => sbr_datasets::phone(seed, len, 256),
        "weather" => sbr_datasets::weather(seed, len),
        "stock" => sbr_datasets::stock(seed, 10, len),
        "mixed" => sbr_datasets::mixed(seed, len),
        "indexes" => sbr_datasets::indexes(seed, len),
        "netflow" => sbr_datasets::netflow(seed, 8, len),
        other => return Err(CliError::Usage(format!("unknown dataset '{other}'"))),
    };
    let table = Table {
        names: d.signal_names.clone(),
        columns: d.signals,
    };
    let f = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    csv::write(&table, BufWriter::new(f)).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated {dataset} (seed {seed}): {} signals × {len} samples → {output}",
        table.columns.len()
    ))
}

fn read_csv(path: &str) -> Result<Table, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    csv::read(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn metric_of(name: &str) -> ErrorMetric {
    match name {
        "relative" => ErrorMetric::relative(),
        "maxabs" => ErrorMetric::MaxAbs,
        _ => ErrorMetric::Sse,
    }
}

#[allow(clippy::too_many_arguments)]
fn compress(
    input: &str,
    output: &str,
    band: usize,
    m_base: usize,
    batch: Option<usize>,
    metric: &str,
    probe_cache: bool,
    fit_cache: bool,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<String, CliError> {
    let table = read_csv(input)?;
    let n_signals = table.columns.len();
    let total_rows = table.rows();
    if total_rows == 0 {
        return Err(CliError::Usage("input has no data rows".into()));
    }
    let batch = match batch {
        Some(b) if b > total_rows => {
            return Err(CliError::Usage(format!(
                "--batch {b} exceeds the {total_rows} rows available"
            )));
        }
        Some(0) => return Err(CliError::Usage("--batch must be positive".into())),
        Some(b) => b,
        None => total_rows,
    };
    // lint:allow(panic-reachability): batch is checked positive above
    let n_batches = total_rows / batch;

    // A recorder is built only when someone will read it: --metrics,
    // --trace, or the SBR_TRACE environment variable. Otherwise the
    // encoder keeps its no-op handles (one branch per event).
    let env_trace = std::env::var(sbr_obs::TRACE_ENV).is_ok_and(|v| !v.is_empty());
    let recorder: Option<Arc<MetricsRecorder>> =
        if metrics_out.is_some() || trace_out.is_some() || env_trace {
            let rec = match trace_out {
                Some(p) => MetricsRecorder::with_trace_path(p)
                    .map_err(|e| format!("cannot create trace log {p}: {e}"))?,
                None => MetricsRecorder::from_env().map_err(|e| e.to_string())?,
            };
            Some(Arc::new(rec))
        } else {
            None
        };

    let mut config = SbrConfig::new(band, m_base)
        .with_metric(metric_of(metric))
        .with_probe_cache(probe_cache)
        .with_fit_cache(fit_cache);
    if let Some(rec) = &recorder {
        config = config.with_recorder(Arc::clone(rec) as Arc<dyn Recorder>);
    }
    let mut encoder = SbrEncoder::new(n_signals, batch, config).map_err(|e| e.to_string())?;

    let out_path = Path::new(output);
    let dir = out_path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(d) = dir {
        std::fs::create_dir_all(d).map_err(|e| e.to_string())?;
    }
    // LogWriter names files itself; for the CLI we write the frames
    // directly in the same length-prefixed format.
    let f = File::create(out_path).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut w = BufWriter::new(f);

    let mut total_cost = 0usize;
    let mut total_err = 0.0f64;
    for b in 0..n_batches {
        let rows: Vec<Vec<f64>> = table
            .columns
            .iter()
            // lint:allow(index): b < n_batches = total_rows / batch, so the slice is in bounds
            .map(|c| c[b * batch..(b + 1) * batch].to_vec())
            .collect();
        let tx = encoder.encode(&rows).map_err(|e| e.to_string())?;
        total_cost += tx.cost();
        total_err += encoder
            .last_stats()
            .ok_or_else(|| CliError::Runtime("encoder produced no batch stats".into()))?
            .total_err;
        let frame = codec::encode(&tx);
        w.write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|()| w.write_all(&frame))
            .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;

    let mut notes = String::new();
    if let (Some(rec), Some(path)) = (&recorder, metrics_out) {
        std::fs::write(path, rec.snapshot().to_json())
            .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        notes.push_str(&format!("\nwrote metrics snapshot {path}"));
    }
    if let Some(path) = trace_out {
        notes.push_str(&format!("\nwrote trace log {path}"));
    }

    let raw = n_signals * batch * n_batches;
    Ok(format!(
        "compressed {input}: {n_signals} signals × {batch} samples × {n_batches} batches\n\
         {raw} values → {total_cost} values ({:.1}%), metric {metric}, total error {:.4e}\n\
         wrote {output}{notes}",
        100.0 * total_cost as f64 / raw as f64,
        total_err
    ))
}

fn decompress(input: &str, output: &str) -> Result<String, CliError> {
    let log = recover_stream(Path::new(input)).map_err(|e| e.to_string())?;
    let Some(first) = log.transmissions.first() else {
        return Err(format!("{input}: no complete transmissions").into());
    };
    let mut decoder = Decoder::new();
    let n_signals = first.n_signals as usize;
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_signals];
    for tx in &log.transmissions {
        let rec = decoder.decode(tx).map_err(|e| e.to_string())?;
        for (c, r) in columns.iter_mut().zip(&rec) {
            c.extend_from_slice(r);
        }
    }
    let table = Table {
        names: Vec::new(),
        columns,
    };
    let f = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    csv::write(&table, BufWriter::new(f)).map_err(|e| e.to_string())?;
    let note = if log.truncated_tail > 0 {
        format!(" (discarded {} truncated tail bytes)", log.truncated_tail)
    } else {
        String::new()
    };
    Ok(format!(
        "decompressed {} transmissions → {} samples × {} signals → {output}{note}",
        log.transmissions.len(),
        table.rows(),
        n_signals
    ))
}

fn info(input: &str) -> Result<String, CliError> {
    let log = recover_stream(Path::new(input)).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str("seq   signals  samples    w   base-ins  intervals   cost   ratio\n");
    for tx in &log.transmissions {
        out.push_str(&format!(
            "{:>3}   {:>7}  {:>7}  {:>3}   {:>8}  {:>9}  {:>5}  {:>5.1}%\n",
            tx.seq,
            tx.n_signals,
            tx.samples_per_signal,
            tx.w,
            tx.base_updates.len(),
            tx.intervals.len(),
            tx.cost(),
            100.0 * tx.compression_ratio()
        ));
    }
    if log.truncated_tail > 0 {
        out.push_str(&format!("truncated tail: {} bytes\n", log.truncated_tail));
    }
    Ok(out)
}

fn compare(input: &str, band: usize) -> Result<String, CliError> {
    let table = read_csv(input)?;
    let data = MultiSeries::from_rows(&table.columns).map_err(|e| e.to_string())?;
    let mut out =
        format!("method                          sse      relative-sse   (budget {band} values)\n");

    // SBR through the full pipeline.
    let config = SbrConfig::new(band, band);
    let mut enc = SbrEncoder::new(data.n_signals(), data.samples_per_signal(), config)
        .map_err(|e| e.to_string())?;
    let tx = enc.encode(&table.columns).map_err(|e| e.to_string())?;
    let rec = Decoder::new().decode(&tx).map_err(|e| e.to_string())?;
    let flat: Vec<f64> = rec.into_iter().flatten().collect();
    out.push_str(&row("SBR", data.flat(), &flat));

    let methods: Vec<Box<dyn Compressor>> = vec![
        Box::new(sbr_baselines::wavelet::WaveletCompressor::default()),
        Box::new(sbr_baselines::wavelet2d::Wavelet2dCompressor),
        Box::new(sbr_baselines::dct::DctCompressor::default()),
        Box::new(sbr_baselines::fourier::FourierCompressor::default()),
        Box::new(sbr_baselines::histogram::HistogramCompressor::default()),
        Box::new(sbr_baselines::v_optimal::VOptimalCompressor),
        Box::new(sbr_baselines::linreg::LinRegCompressor::default()),
        Box::new(sbr_baselines::quadreg::QuadRegCompressor),
        Box::new(sbr_baselines::swing::SwingCompressor),
    ];
    for m in &methods {
        let approx = m.compress_reconstruct(&data, band);
        out.push_str(&row(m.name(), data.flat(), &approx));
    }
    Ok(out)
}

/// Range aggregates straight off the compressed stream: the
/// compressed-domain query engine by default (closed-form interval
/// moments, see `sbr_core::QueryEngine`), or the full-decode streaming
/// baseline with `--engine decode` for A/B comparison.
fn aggregate(
    input: &str,
    signal: usize,
    from: usize,
    to: usize,
    engine: EngineKind,
) -> Result<String, CliError> {
    if to <= from {
        return Err(CliError::Usage(format!(
            "empty range [{from}, {to}): --from must be below --to"
        )));
    }
    let log = recover_stream(Path::new(input)).map_err(|e| e.to_string())?;
    let Some(first) = log.transmissions.first() else {
        return Err(format!("{input}: no complete transmissions").into());
    };
    let total = log.transmissions.len() * first.samples_per_signal as usize;
    if to > total {
        return Err(CliError::Runtime(format!(
            "{input}: range [{from}, {to}) runs past the {total} logged samples"
        )));
    }
    let (agg, label) = match engine {
        EngineKind::Compressed => {
            let mut qe = sbr_core::QueryEngine::from_transmissions(&log.transmissions)
                .map_err(|e| e.to_string())?;
            let agg = qe.aggregate(signal, from, to).map_err(|e| e.to_string())?;
            (agg, "compressed")
        }
        EngineKind::Decode => {
            let mut decoder = Decoder::new();
            let agg = aggregate_stream(&mut decoder, &log.transmissions, signal, from, to)
                .map_err(|e| e.to_string())?;
            (agg, "decode")
        }
    };
    Ok(format!(
        "signal {signal}, samples [{from}, {to}) — {} values ({label} engine)
\
         sum {:.6}
avg {:.6}
min {:.6}
max {:.6}",
        agg.count, agg.sum, agg.avg, agg.min, agg.max
    ))
}

/// The pipeline phases `sbr report` breaks time down by, in pipeline
/// order: `(label, histogram metric name)`.
const PHASES: &[(&str, &str)] = &[
    ("encode (total)", "sbr_core.sbr.encode_ns"),
    ("  get_base", "sbr_core.get_base.build_ns"),
    ("  search", "sbr_core.search.run_ns"),
    ("    probe", "sbr_core.search.probe_ns"),
    ("  get_intervals", "sbr_core.get_intervals.run_ns"),
    ("codec encode", "sbr_core.codec.encode_ns"),
    ("codec decode", "sbr_core.codec.decode_ns"),
    ("par worker busy", "sbr_core.par.worker_busy_ns"),
    ("query", "sbr_core.query.query_ns"),
];

fn ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Render one snapshot as the per-phase / decisions / bandwidth report.
fn render_snapshot(snap: &Snapshot, out: &mut String) {
    let timed: Vec<(&str, &HistogramSnapshot)> = PHASES
        .iter()
        .filter_map(|(label, name)| snap.histogram(name).map(|h| (*label, h)))
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !timed.is_empty() {
        out.push_str(&format!(
            "  {:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "phase", "calls", "total-ms", "mean-ms", "p50-ms", "p90-ms", "p99-ms", "max-ms"
        ));
        for (label, h) in timed {
            out.push_str(&format!(
                "  {:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                label,
                h.count,
                ms(h.sum as f64),
                ms(h.mean()),
                ms(h.p50() as f64),
                ms(h.p90() as f64),
                ms(h.p99() as f64),
                ms(h.max as f64)
            ));
        }
    }
    let counters: &[(&str, &str)] = &[
        ("BestMap calls", "sbr_core.best_map.calls"),
        ("  direct sweeps", "sbr_core.best_map.direct_sweeps"),
        ("  FFT sweeps", "sbr_core.best_map.fft_sweeps"),
        (
            "  FFT re-verified",
            "sbr_core.best_map.fft_reverified_shifts",
        ),
        (
            "  base-region direct",
            "sbr_core.best_map.base_direct_sweeps",
        ),
        ("  base-region FFT", "sbr_core.best_map.base_fft_sweeps"),
        (
            "  cand-region direct",
            "sbr_core.best_map.cand_direct_sweeps",
        ),
        ("  cand-region FFT", "sbr_core.best_map.cand_fft_sweeps"),
        ("  base-mapped wins", "sbr_core.best_map.base_wins"),
        ("  fallback wins", "sbr_core.best_map.fallback_wins"),
        (
            "  f32 pre-screens",
            "sbr_core.best_map.f32_prescreen_sweeps",
        ),
        (
            "  f32 re-verified",
            "sbr_core.best_map.f32_reverified_shifts",
        ),
        ("Search probes", "sbr_core.search.probes"),
        ("Probe-cache hits", "sbr_core.probe_cache.hits"),
        ("Probe-cache misses", "sbr_core.probe_cache.misses"),
        ("Fit-cache hits", "sbr_core.get_base.fit_cache.hits"),
        ("Fit-cache misses", "sbr_core.get_base.fit_cache.misses"),
        ("Plan-cache hits", "sbr_core.query.plan_cache.hits"),
        ("Plan-cache misses", "sbr_core.query.plan_cache.misses"),
        ("Intervals folded", "sbr_core.query.intervals_folded"),
        ("Boundary decodes", "sbr_core.query.boundary_decodes"),
        ("Base inserted", "sbr_core.base_signal.inserted"),
        ("Base evicted", "sbr_core.base_signal.evicted"),
        ("Tx mapped intervals", "sbr_core.sbr.tx_mapped_intervals"),
        (
            "Tx fallback intervals",
            "sbr_core.sbr.tx_fallback_intervals",
        ),
    ];
    for (label, name) in counters {
        if let Some(n) = snap.counter(name) {
            out.push_str(&format!("  {label:<24} {n}\n"));
        }
    }
    if let Some(slots) = snap.gauge("sbr_core.base_signal.slots") {
        out.push_str(&format!("  {:<24} {slots}\n", "Base slots"));
    }
    if let Some(bytes) = snap.gauge("sbr_core.probe_cache.bytes") {
        out.push_str(&format!("  {:<24} {bytes:.0}\n", "Probe-cache bytes"));
    }
    if let Some(bytes) = snap.gauge("sbr_core.get_base.fit_cache.bytes") {
        out.push_str(&format!("  {:<24} {bytes:.0}\n", "Fit-cache bytes"));
    }
    // Sensor-network metrics, when the artifact came from a network run.
    let mut net: Vec<String> = Vec::new();
    for (name, value) in &snap.metrics {
        if !name.starts_with("sensor_net.") {
            continue;
        }
        match value {
            sbr_obs::MetricValue::Counter(n) => net.push(format!("  {name:<40} {n}")),
            sbr_obs::MetricValue::Gauge(g) => net.push(format!("  {name:<40} {g:.0}")),
            sbr_obs::MetricValue::Histogram(h) => net.push(format!(
                "  {name:<40} n={} mean={:.1} p50={} p90={} p99={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            )),
        }
    }
    if !net.is_empty() {
        out.push_str("  sensor network:\n");
        for line in net {
            out.push_str(&line);
            out.push('\n');
        }
    }
}

/// `sbr report`: render a metrics artifact as human-readable tables.
fn report(input: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let v = sbr_obs::json::parse(&text).map_err(|e| format!("{input}: {e}"))?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    let mut out = String::new();
    match schema {
        "sbr-obs/v1" | "sbr-obs/v2" => {
            let snap = Snapshot::from_json(&text).map_err(|e| format!("{input}: {e}"))?;
            out.push_str(&format!("metrics snapshot {input}\n"));
            render_snapshot(&snap, &mut out);
        }
        "sbr-bench/v1" | "sbr-bench/v2" | "sbr-bench/v3" => {
            let records = v
                .get("records")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{input}: no records array"))?;
            out.push_str(&format!(
                "{input}: {} ({} record(s))\n",
                schema,
                records.len()
            ));
            for r in records {
                let exp = r.get("experiment").and_then(Value::as_str).unwrap_or("?");
                let mut params = String::new();
                if let Some(ps) = r.get("params").and_then(Value::as_obj) {
                    for (k, pv) in ps {
                        params.push_str(&format!(" {k}={pv}"));
                    }
                }
                let secs = r.get("avg_encode_secs").and_then(Value::as_f64);
                let sse = r.get("avg_sse").and_then(Value::as_f64);
                out.push('\n');
                out.push_str(&format!("{exp}{params}"));
                if let Some(s) = secs {
                    out.push_str(&format!("  avg-encode {:.1} ms", s * 1e3));
                }
                if let Some(s) = sse {
                    out.push_str(&format!("  avg-sse {s:.4e}"));
                }
                out.push('\n');
                // v3 search block: probe counts, cache traffic, and the
                // measured speedup over the probe-cache-off control run.
                if let Some(search) = r.get("search").filter(|s| !matches!(s, Value::Null)) {
                    let f = |k: &str| search.get(k).and_then(Value::as_f64);
                    out.push_str(&format!(
                        "  search: {} probe(s), cache {}/{} hit/miss, {:.1} ms",
                        f("probes").unwrap_or(0.0),
                        f("cache_hits").unwrap_or(0.0),
                        f("cache_misses").unwrap_or(0.0),
                        f("wall_secs").unwrap_or(0.0) * 1e3,
                    ));
                    if let Some(x) = f("speedup") {
                        out.push_str(&format!(" ({x:.2}x vs no cache)"));
                    }
                    out.push('\n');
                }
                // v3 get_base block (additive): matrix size, fit-cache
                // traffic, and the speedup over the fit-cache-off control.
                if let Some(gb) = r.get("get_base").filter(|s| !matches!(s, Value::Null)) {
                    let f = |k: &str| gb.get(k).and_then(Value::as_f64);
                    out.push_str(&format!(
                        "  get_base: {} cell(s), fit cache {}/{} hit/miss, {:.1} ms",
                        f("matrix_cells").unwrap_or(0.0),
                        f("fit_cache_hits").unwrap_or(0.0),
                        f("fit_cache_misses").unwrap_or(0.0),
                        f("wall_secs").unwrap_or(0.0) * 1e3,
                    ));
                    if let Some(x) = f("speedup") {
                        out.push_str(&format!(" ({x:.2}x vs no cache)"));
                    }
                    out.push('\n');
                }
                // v3 query block (additive): compressed-domain sweep size,
                // plan-cache traffic, and the speedup over full decode.
                if let Some(q) = r.get("query").filter(|s| !matches!(s, Value::Null)) {
                    let f = |k: &str| q.get(k).and_then(Value::as_f64);
                    out.push_str(&format!(
                        "  query: {} query(ies), plan cache {}/{} hit/miss, \
                         {} folded / {} boundary, {:.1} ms",
                        f("queries").unwrap_or(0.0),
                        f("plan_cache_hits").unwrap_or(0.0),
                        f("plan_cache_misses").unwrap_or(0.0),
                        f("intervals_folded").unwrap_or(0.0),
                        f("boundary_decodes").unwrap_or(0.0),
                        f("wall_secs").unwrap_or(0.0) * 1e3,
                    ));
                    if let Some(x) = f("speedup") {
                        out.push_str(&format!(" ({x:.0}x vs full decode)"));
                    }
                    out.push('\n');
                }
                // v3 storage block (additive): persisted-history size vs
                // what the checkpointed load actually replayed.
                if let Some(s) = r.get("storage").filter(|s| !matches!(s, Value::Null)) {
                    let f = |k: &str| s.get(k).and_then(Value::as_f64);
                    out.push_str(&format!(
                        "  storage: {} record(s) in {} sealed segment(s) + {} checkpoint(s), \
                         recovery replayed {} record(s) in {:.1} ms",
                        f("records").unwrap_or(0.0),
                        f("segments_sealed").unwrap_or(0.0),
                        f("checkpoints").unwrap_or(0.0),
                        f("replayed_records").unwrap_or(0.0),
                        f("wall_secs").unwrap_or(0.0) * 1e3,
                    ));
                    if let Some(x) = f("speedup") {
                        out.push_str(&format!(" ({x:.1}x vs full replay)"));
                    }
                    out.push('\n');
                }
                match r.get("metrics") {
                    Some(Value::Null) | None => {
                        out.push_str("  (no metrics recorded for this record)\n");
                    }
                    Some(m) => {
                        let snap = Snapshot::from_json_value(m)
                            .map_err(|e| format!("{input}: record '{exp}': {e}"))?;
                        render_snapshot(&snap, &mut out);
                    }
                }
            }
        }
        "" => return Err(format!("{input}: missing schema field").into()),
        other => return Err(format!("{input}: unsupported schema '{other}'").into()),
    }
    Ok(out)
}

/// `sbr simulate`: drive the loss-tolerant v2 ARQ protocol over a line
/// topology with per-hop loss and a seeded end-to-end fault schedule,
/// then render the recovery statistics.
#[allow(clippy::too_many_arguments)]
fn simulate(
    nodes: usize,
    signals: usize,
    len: usize,
    batch: usize,
    band: usize,
    loss: f64,
    fault_seed: u64,
    [drop, dup, reorder, corrupt]: [f64; 4],
    crash_at: Option<(usize, u64)>,
    metrics_out: Option<&str>,
    store: Option<&str>,
    segment_bytes: Option<u64>,
) -> Result<String, CliError> {
    if batch == 0 || len < batch {
        return Err(CliError::Usage(format!(
            "--len {len} must cover at least one --batch {batch}"
        )));
    }
    if let Some((node, _)) = crash_at {
        if node == 0 || node >= nodes {
            return Err(CliError::Usage(format!(
                "--crash-at node {node} is not a sensor (valid: 1..{nodes})"
            )));
        }
    }

    // Deterministic synthetic feed: smooth per-sensor mixtures so SBR has
    // structure to exploit (the protocol under test is delivery, not
    // compression quality).
    let data: Vec<Vec<Vec<f64>>> = (0..nodes - 1)
        .map(|n| {
            (0..signals)
                .map(|s| {
                    (0..len)
                        .map(|t| {
                            let x = t as f64;
                            (x * 0.9 + (n * 3 + s) as f64 * 2.1).sin() * 4.0
                                + (x * 0.23).cos() * 2.0
                                + ((t * 7 + s) % 5) as f64
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut net = Network::new(Topology::line(nodes, 1.0), EnergyModel::default());
    if let Some(dir) = store {
        net.set_store_dir(dir, segment_bytes);
    }
    if loss > 0.0 {
        net.set_link(LossyLink::new(loss, 12, fault_seed | 1));
    }
    let mut plan = FaultPlan::new(fault_seed)
        .with_drop(drop)
        .with_dup(dup)
        .with_reorder(reorder)
        .with_corrupt(corrupt);
    if let Some((node, chunk)) = crash_at {
        plan = plan.with_crash_at(node, chunk);
    }
    net.set_fault_plan(plan);

    // A recorder (and a frame-lifecycle timeline feeding it) is built
    // whenever someone will read it: --metrics or the SBR_TRACE
    // environment variable. The timeline mirrors every frame event into
    // the trace log, so `sbr trace --frame/--node/--kind` can follow one
    // frame through the pipeline.
    let env_trace = std::env::var(sbr_obs::TRACE_ENV).is_ok_and(|v| !v.is_empty());
    let recorder: Option<Arc<MetricsRecorder>> = if metrics_out.is_some() || env_trace {
        Some(Arc::new(
            MetricsRecorder::from_env().map_err(|e| e.to_string())?,
        ))
    } else {
        None
    };
    if let Some(rec) = &recorder {
        net.set_recorder(Arc::clone(rec) as Arc<dyn Recorder>);
        net.set_timeline(Timeline::with_recorder(
            rec.as_ref(),
            DEFAULT_TIMELINE_CAPACITY,
        ));
    }

    let report = net
        .simulate(&data, batch, &Strategy::SbrArq(SbrConfig::new(band, band)))
        .map_err(|e| e.to_string())?;
    let stats = report.recovery.ok_or_else(|| {
        CliError::Runtime("simulation reported no recovery stats for an ARQ run".into())
    })?;

    let mut out = format!(
        "simulated {} sensor(s) × {signals} signal(s) × {len} samples \
         (batch {batch}, band {band})\n\
         per-hop loss {loss:.2}, fault seed {fault_seed} \
         (drop {drop:.2} dup {dup:.2} reorder {reorder:.2} corrupt {corrupt:.2})\n",
        nodes - 1
    );
    out.push_str("recovery:\n");
    for (label, v) in [
        ("frames sent", stats.frames_sent),
        ("frames delivered", stats.frames_delivered),
        ("duplicates discarded", stats.duplicates_discarded),
        ("gaps detected", stats.gaps_detected),
        ("corrupt rejected", stats.corrupt_rejected),
        ("resyncs", stats.resyncs),
        ("retx overflows", stats.retx_overflows),
        ("max retx depth", stats.max_retx_depth as u64),
        ("crashes", stats.crashes),
        ("acks sent", stats.acks_sent),
    ] {
        out.push_str(&format!("  {label:<22} {v}\n"));
    }
    out.push_str(&format!(
        "  {:<22} {}/{} ({:.1}%)\n",
        "chunks delivered",
        stats.chunks_delivered,
        stats.chunks_flushed,
        100.0 * stats.delivered_fraction()
    ));
    out.push_str(&format!(
        "energy {:.1} total, {} values on air, sse {:.4e}\n",
        report.total_energy(),
        report.values_sent,
        report.sse
    ));

    if let Some(dir) = store {
        let d = Path::new(dir);
        let stored = storage::nodes(d);
        out.push_str(&format!(
            "persisted {} sensor store(s) under {dir}\n",
            stored.len()
        ));
        for node in stored {
            let r = storage::verify(d, node).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "  sensor {node}: {} segment(s), {} checkpoint(s), {} record(s), {} payload bytes\n",
                r.segments, r.checkpoints, r.records, r.payload_bytes
            ));
        }
    }
    if let (Some(rec), Some(path)) = (&recorder, metrics_out) {
        std::fs::write(path, rec.snapshot().to_json())
            .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        out.push_str(&format!("wrote metrics snapshot {path}\n"));
    }
    Ok(out)
}

/// `sbr storage inspect`: audit every sensor store under `dir` end to
/// end — every record CRC, the epoch/sequence continuity chain, and
/// each checkpoint's snapshot against the walk state at its boundary.
/// Any damage is a runtime error (exit 1), so this doubles as a
/// post-crash health check.
fn storage_inspect(dir: &Path) -> Result<String, CliError> {
    let nodes = storage::nodes(dir);
    if nodes.is_empty() {
        return Err(CliError::Runtime(format!(
            "{}: no sensor stores (expected sensor-<id> subdirectories)",
            dir.display()
        )));
    }
    let mut out = format!("store {}: {} sensor store(s)\n", dir.display(), nodes.len());
    out.push_str(
        "  node  segments  checkpoints    records      bytes  epoch  next-seq  resync@  tail\n",
    );
    for node in nodes {
        let r = storage::verify(dir, node).map_err(|e| e.to_string())?;
        let resync = r
            .newest_resync
            .map(|i| i.to_string())
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "  {node:>4}  {:>8}  {:>11}  {:>9}  {:>9}  {:>5}  {:>8}  {resync:>7}  {:>4}\n",
            r.segments,
            r.checkpoints,
            r.records,
            r.payload_bytes,
            r.epoch,
            r.next_seq,
            r.truncated_tail,
        ));
    }
    out.push_str("all stores verified: every record CRC and checkpoint snapshot checks out\n");
    Ok(out)
}

/// `sbr storage compact`: drop checkpoints superseded behind each
/// store's newest resync snapshot (the newest checkpoint always
/// survives). Stores without a resync are left untouched.
fn storage_compact(dir: &Path) -> Result<String, CliError> {
    let nodes = storage::nodes(dir);
    if nodes.is_empty() {
        return Err(CliError::Runtime(format!(
            "{}: no sensor stores (expected sensor-<id> subdirectories)",
            dir.display()
        )));
    }
    let mut out = String::new();
    let mut total = 0u32;
    for node in nodes {
        let r = storage::verify(dir, node).map_err(|e| e.to_string())?;
        let dropped = match r.newest_resync {
            Some(at) => storage::compact(dir, node, at).map_err(|e| e.to_string())?,
            None => 0,
        };
        total += dropped;
        out.push_str(&format!(
            "  sensor {node}: dropped {dropped} superseded checkpoint(s)\n"
        ));
    }
    Ok(format!(
        "compacted {}: {total} checkpoint(s) dropped\n{out}",
        dir.display()
    ))
}

/// `sbr trace`: pretty-print a line-delimited structured event log.
/// The lifecycle filters (`--frame`, `--node`, `--kind`) match the
/// fields `sensor_net.timeline.*` events carry; events without the
/// field are hidden while that filter is active.
fn trace_log(
    input: &str,
    filter: Option<&str>,
    frame: Option<FrameId>,
    node: Option<u32>,
    kind: Option<EventKind>,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let mut out = String::new();
    let (mut shown, mut total, mut bad) = (0usize, 0usize, 0usize);
    let field_is =
        |v: &Value, key: &str, want: &str| v.get(key).and_then(Value::as_str) == Some(want);
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        let Ok(v) = sbr_obs::json::parse(line) else {
            bad += 1;
            continue;
        };
        let name = v.get("name").and_then(Value::as_str).unwrap_or("?");
        if let Some(f) = filter {
            if !name.contains(f) {
                continue;
            }
        }
        if let Some(f) = frame {
            if !field_is(&v, "frame", &f.to_string()) {
                continue;
            }
        }
        if let Some(n) = node {
            if !field_is(&v, "node", &n.to_string()) {
                continue;
            }
        }
        if let Some(k) = kind {
            if !field_is(&v, "kind", k.as_str()) {
                continue;
            }
        }
        shown += 1;
        let ts_ms = v
            .get("ts_ns")
            .and_then(Value::as_f64)
            .map_or(0.0, |ns| ns / 1e6);
        out.push_str(&format!("{ts_ms:>12.3}  {name:<36}"));
        if let Some(d) = v.get("dur_ns").and_then(Value::as_f64) {
            out.push_str(&format!(" {:>10} ms", ms(d)));
        }
        if let Some(obj) = v.as_obj() {
            for (k, fv) in obj {
                if matches!(k.as_str(), "ts_ns" | "name" | "dur_ns") {
                    continue;
                }
                out.push_str(&format!("  {k}={fv}"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{shown} of {total} event(s) shown ({bad} unparseable)\n"
    ));
    Ok(out)
}

/// Walls this short on both sides are timer noise: `perf diff` prints
/// them but never lets them fail the gate.
const PERF_MIN_WALL_SECS: f64 = 1e-3;

/// Load a `sbr-bench/*` artifact as `(record key, record)` pairs. The
/// key is the experiment name plus its sorted params, so the same
/// configuration lines up across two runs regardless of record order.
fn bench_records(path: &str) -> Result<Vec<(String, Value)>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let v = sbr_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if !schema.starts_with("sbr-bench/") {
        return Err(format!("{path}: not a benchmark artifact (schema '{schema}')").into());
    }
    let records = v
        .get("records")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no records array"))?;
    let mut out = Vec::new();
    for r in records {
        let exp = r.get("experiment").and_then(Value::as_str).unwrap_or("?");
        let mut key = exp.to_string();
        if let Some(ps) = r.get("params").and_then(Value::as_obj) {
            let mut kv: Vec<String> = ps.iter().map(|(k, pv)| format!("{k}={pv}")).collect();
            kv.sort();
            for s in kv {
                key.push(' ');
                key.push_str(&s);
            }
        }
        out.push((key, r.clone()));
    }
    Ok(out)
}

/// The wall-clock scalars of one bench record, labelled.
fn bench_walls(r: &Value) -> Vec<(&'static str, f64)> {
    let nested = |outer: &str, inner: &str| {
        r.get(outer)
            .filter(|s| !matches!(s, Value::Null))
            .and_then(|s| s.get(inner))
            .and_then(Value::as_f64)
    };
    let mut walls = Vec::new();
    if let Some(v) = r.get("avg_encode_secs").and_then(Value::as_f64) {
        walls.push(("encode wall", v));
    }
    if let Some(v) = nested("search", "wall_secs") {
        walls.push(("search wall", v));
    }
    if let Some(v) = nested("get_base", "wall_secs") {
        walls.push(("get_base wall", v));
    }
    if let Some(v) = nested("query", "wall_secs") {
        walls.push(("query wall", v));
    }
    if let Some(v) = nested("storage", "wall_secs") {
        walls.push(("storage recovery wall", v));
    }
    walls
}

/// The cache hit rates of one bench record, labelled, in `[0, 1]`.
fn bench_hit_rates(r: &Value) -> Vec<(&'static str, f64)> {
    let rate = |outer: &str, hits: &str, misses: &str| {
        let block = r.get(outer).filter(|s| !matches!(s, Value::Null))?;
        let h = block.get(hits).and_then(Value::as_f64)?;
        let m = block.get(misses).and_then(Value::as_f64)?;
        (h + m > 0.0).then_some(h / (h + m))
    };
    let mut rates = Vec::new();
    if let Some(v) = rate("search", "cache_hits", "cache_misses") {
        rates.push(("probe-cache hit rate", v));
    }
    if let Some(v) = rate("get_base", "fit_cache_hits", "fit_cache_misses") {
        rates.push(("fit-cache hit rate", v));
    }
    if let Some(v) = rate("query", "plan_cache_hits", "plan_cache_misses") {
        rates.push(("plan-cache hit rate", v));
    }
    rates
}

/// `sbr perf diff`: compare two benchmark artifacts record-by-record.
/// Wall times gate (relative growth beyond `tolerance` fails, exit 1),
/// cache hit rates gate on absolute drops beyond `tolerance`, and
/// recovery counters are reported when they change (they are seeded and
/// deterministic, so a change means the protocol behaved differently).
fn perf_diff(
    baseline_path: &str,
    candidate_path: &str,
    tolerance: f64,
    report_out: Option<&str>,
) -> Result<String, CliError> {
    let base = bench_records(baseline_path)?;
    let cand = bench_records(candidate_path)?;
    let cand_map: std::collections::HashMap<&str, &Value> =
        cand.iter().map(|(k, r)| (k.as_str(), r)).collect();

    let mut out = format!(
        "perf diff: {baseline_path} (baseline) vs {candidate_path} (candidate), \
         tolerance +{:.0}%\n",
        tolerance * 100.0
    );
    let (mut compared, mut regressions, mut missing) = (0usize, 0usize, 0usize);
    for (key, br) in &base {
        let Some(cr) = cand_map.get(key.as_str()) else {
            missing += 1;
            continue;
        };
        compared += 1;
        out.push_str(&format!("\n{key}\n"));
        let cand_walls = bench_walls(cr);
        for (label, bv) in bench_walls(br) {
            let Some(&(_, cv)) = cand_walls.iter().find(|(l, _)| *l == label) else {
                out.push_str(&format!("  {label:<22} missing in candidate\n"));
                continue;
            };
            // lint:allow(panic-reachability): f64 division — cannot panic
            let delta = if bv > 0.0 { (cv - bv) / bv } else { 0.0 };
            let verdict = if bv < PERF_MIN_WALL_SECS && cv < PERF_MIN_WALL_SECS {
                "ok (below noise floor)"
            } else if delta > tolerance {
                regressions += 1;
                "REGRESSION"
            } else if delta < -tolerance {
                "improved"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {label:<22} {:>9.3} ms -> {:>9.3} ms  {:>+7.1}%  {verdict}\n",
                bv * 1e3,
                cv * 1e3,
                delta * 100.0
            ));
        }
        let cand_rates = bench_hit_rates(cr);
        for (label, bv) in bench_hit_rates(br) {
            let Some(&(_, cv)) = cand_rates.iter().find(|(l, _)| *l == label) else {
                out.push_str(&format!("  {label:<22} missing in candidate\n"));
                continue;
            };
            let verdict = if bv - cv > tolerance {
                regressions += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {label:<22} {:>8.1} %  -> {:>8.1} %   {:>+7.1}pp  {verdict}\n",
                bv * 100.0,
                cv * 100.0,
                (cv - bv) * 100.0
            ));
        }
        // Recovery counters are informational: seeded runs reproduce them
        // exactly, so any drift is worth a line but not a failure.
        if let (Some(bo), Some(co)) = (
            br.get("recovery").and_then(Value::as_obj),
            cr.get("recovery").and_then(Value::as_obj),
        ) {
            for (k, bv) in bo {
                let (Some(b), Some(c)) = (
                    bv.as_f64(),
                    co.iter()
                        .find(|(ck, _)| ck == k)
                        .and_then(|(_, cv)| cv.as_f64()),
                ) else {
                    continue;
                };
                if b != c {
                    out.push_str(&format!("  recovery.{k:<31} {b} -> {c}  changed\n"));
                }
            }
        }
    }
    if missing > 0 {
        out.push_str(&format!(
            "\n{missing} baseline record(s) had no matching candidate record\n"
        ));
    }
    if compared == 0 {
        return Err(format!(
            "perf diff: no overlapping records between {baseline_path} and {candidate_path}"
        )
        .into());
    }
    out.push_str(&format!(
        "\ncompared {compared} record(s): {regressions} regression(s) beyond tolerance\n"
    ));
    if let Some(p) = report_out {
        std::fs::write(p, &out).map_err(|e| format!("cannot write report {p}: {e}"))?;
    }
    if regressions > 0 {
        return Err(CliError::Runtime(out));
    }
    Ok(out)
}

fn row(name: &str, exact: &[f64], approx: &[f64]) -> String {
    format!(
        "{name:<24} {:>14.4e} {:>15.4e}\n",
        ErrorMetric::Sse.score(exact, approx),
        ErrorMetric::relative().score(exact, approx),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sbr-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_sample_csv(path: &Path, rows: usize) {
        let mut s = String::from("a,b\n");
        for i in 0..rows {
            let t = i as f64;
            s.push_str(&format!(
                "{},{}\n",
                (t * 0.2).sin() * 5.0,
                (t * 0.2).sin() * 10.0 + 1.0
            ));
        }
        std::fs::write(path, s).unwrap();
    }

    fn run_argv(args: &str) -> Result<String, CliError> {
        let argv: Vec<String> = args.split_whitespace().map(str::to_string).collect();
        run(&parse(&argv).map_err(CliError::Usage)?)
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let dir = tempdir("roundtrip");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        let csv_out = dir.join("rec.csv");
        write_sample_csv(&csv_in, 256);

        let msg = run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        assert!(msg.contains("2 batches"), "{msg}");

        let msg = run_argv(&format!(
            "decompress --input {} --output {}",
            stream.display(),
            csv_out.display()
        ))
        .unwrap();
        assert!(msg.contains("256 samples × 2 signals"), "{msg}");

        // Reconstruction is close: the two columns are affine images of one
        // sine, SBR eats this for breakfast.
        let orig = csv::read(std::io::BufReader::new(File::open(&csv_in).unwrap())).unwrap();
        let rec = csv::read(std::io::BufReader::new(File::open(&csv_out).unwrap())).unwrap();
        let mut sse = 0.0;
        for (a, b) in orig.columns.iter().zip(&rec.columns) {
            sse += ErrorMetric::Sse.score(a, b);
        }
        let energy: f64 = orig.columns.iter().flatten().map(|v| v * v).sum();
        assert!(sse < 0.05 * energy, "sse {sse} vs energy {energy}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The failure modes a deployment actually hits — malformed input
    /// data, missing artifacts, empty streams — must come back as typed
    /// runtime errors (exit 1), never as panics, and usage mistakes as
    /// exit 2. `main` routes both through `trace_error` (`cli.error`).
    #[test]
    fn operational_failures_are_typed_errors_not_panics() {
        let dir = tempdir("typed-errors");

        // Malformed CSV: a non-numeric cell mid-file.
        let bad_csv = dir.join("bad.csv");
        std::fs::write(&bad_csv, "a,b\n1.0,2.0\noops,3.0\n").unwrap();
        let err = run_argv(&format!(
            "compress --input {} --output {} --band 8 --batch 2",
            bad_csv.display(),
            dir.join("out.sbr").display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err:?}");

        // Unreadable metrics artifact for `report`.
        let err = run_argv(&format!("report --input {}/absent.json", dir.display())).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err:?}");
        assert!(err.message().contains("cannot open"), "{err:?}");

        // A stream with no complete transmissions decompresses to an error.
        let empty = dir.join("empty.sbr");
        std::fs::write(&empty, b"").unwrap();
        let err = run_argv(&format!(
            "decompress --input {} --output {}",
            empty.display(),
            dir.join("rec.csv").display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err:?}");

        // A bad --crash-at spec is a usage error (exit 2), caught at parse.
        let err = run_argv("simulate --crash-at nonsense").unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_lists_transmissions() {
        let dir = tempdir("info");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 192);
        run_argv(&format!(
            "compress --input {} --output {} --band 48 --batch 64",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let out = run_argv(&format!("info --input {}", stream.display())).unwrap();
        assert_eq!(out.lines().count(), 4, "{out}"); // header + 3 rows
        assert!(out.contains("  0 "), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_prints_all_methods() {
        let dir = tempdir("compare");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 128);
        let out = run_argv(&format!("compare --input {} --band 32", csv_in.display())).unwrap();
        for name in [
            "SBR",
            "Wavelets",
            "DCT",
            "Fourier",
            "Histograms",
            "Quadratic",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_matches_decompressed_csv() {
        let dir = tempdir("agg");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 256);
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let out = run_argv(&format!(
            "aggregate --input {} --signal 1 --from 50 --to 200",
            stream.display()
        ))
        .unwrap();
        // Cross-check against full decompression.
        let csv_out = dir.join("rec.csv");
        run_argv(&format!(
            "decompress --input {} --output {}",
            stream.display(),
            csv_out.display()
        ))
        .unwrap();
        let rec = csv::read(std::io::BufReader::new(File::open(&csv_out).unwrap())).unwrap();
        let slice = &rec.columns[1][50..200];
        let sum: f64 = slice.iter().sum();
        let sum_line = out.lines().find(|l| l.starts_with("sum")).unwrap();
        let got: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(
            (got - sum).abs() < 1e-4 * (1.0 + sum.abs()),
            "{got} vs {sum}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_rejects_bad_ranges() {
        let dir = tempdir("aggbad");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 128);
        run_argv(&format!(
            "compress --input {} --output {} --band 64",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let s = stream.display();
        // Inverted/empty range: the invocation is wrong → usage, exit 2.
        let e = run_argv(&format!("aggregate --input {s} --signal 0 --from 9 --to 9")).unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        assert!(e.message().contains("--from must be below --to"), "{e}");
        let e = run_argv(&format!(
            "aggregate --input {s} --signal 0 --from 20 --to 9"
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        // Unknown signal: well-formed command, the work fails → runtime.
        let e = run_argv(&format!("aggregate --input {s} --signal 7 --from 0 --to 9")).unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        // Range past the stream: runtime, with a clear out-of-range message.
        let e = run_argv(&format!(
            "aggregate --input {s} --signal 0 --from 0 --to 999"
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        assert!(
            e.message().contains("runs past the 128 logged samples"),
            "{e}"
        );
        // The decode engine classifies identically.
        let e = run_argv(&format!(
            "aggregate --input {s} --signal 0 --from 0 --to 999 --engine decode"
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        assert!(e.message().contains("runs past the"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_engines_agree() {
        let dir = tempdir("aggab");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 256);
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let s = stream.display();
        for (from, to) in [(0usize, 256usize), (50, 200), (130, 140)] {
            let fast = run_argv(&format!(
                "aggregate --input {s} --signal 1 --from {from} --to {to}"
            ))
            .unwrap();
            let slow = run_argv(&format!(
                "aggregate --input {s} --signal 1 --from {from} --to {to} --engine decode"
            ))
            .unwrap();
            assert!(fast.contains("(compressed engine)"), "{fast}");
            assert!(slow.contains("(decode engine)"), "{slow}");
            // The four value lines must agree to the printed precision.
            let values = |out: &str| -> Vec<String> {
                out.lines()
                    .filter(|l| {
                        ["sum", "avg", "min", "max"]
                            .iter()
                            .any(|p| l.starts_with(p))
                    })
                    .map(str::to_string)
                    .collect()
            };
            assert_eq!(values(&fast), values(&slow), "[{from},{to})");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run_argv("compress --input /nonexistent.csv --output /tmp/x --band 10").is_err());
        assert!(run_argv("decompress --input /nonexistent.sbr --output /tmp/x").is_err());
        let dir = tempdir("badbatch");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 16);
        assert!(run_argv(&format!(
            "compress --input {} --output {} --band 64 --batch 999",
            csv_in.display(),
            dir.join("o").display()
        ))
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generate_then_compress_pipeline() {
        let dir = tempdir("gen");
        let csv_path = dir.join("weather.csv");
        let out = run_argv(&format!(
            "generate --dataset weather --output {} --len 512 --seed 7",
            csv_path.display()
        ))
        .unwrap();
        assert!(out.contains("6 signals × 512"), "{out}");
        // Header row names the quantities.
        let t = csv::read(std::io::BufReader::new(File::open(&csv_path).unwrap())).unwrap();
        assert_eq!(t.names[0], "air_temperature");
        assert_eq!(t.rows(), 512);
        // The generated CSV feeds straight into compress.
        let stream = dir.join("w.sbr");
        run_argv(&format!(
            "compress --input {} --output {} --band 300 --batch 256",
            csv_path.display(),
            stream.display()
        ))
        .unwrap();
        let info = run_argv(&format!("info --input {}", stream.display())).unwrap();
        assert!(info.lines().count() >= 3, "{info}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_shows_usage() {
        let out = run_argv("help").unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn usage_and_runtime_errors_are_classified() {
        // Missing file: the command line is fine, the work fails → runtime.
        let e = run_argv("decompress --input /nonexistent.sbr --output /tmp/x").unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        // Empty aggregate range: the invocation is wrong → usage.
        let e = run_argv("aggregate --input x --signal 0 --from 9 --to 9").unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        // Unparseable flags → usage.
        let e = run_argv("compress --input a --output b --band ten").unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        // Batch larger than the file → usage.
        let dir = tempdir("classify");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 16);
        let e = run_argv(&format!(
            "compress --input {} --output {} --band 64 --batch 999",
            csv_in.display(),
            dir.join("o").display()
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compress_writes_metrics_and_trace_then_report_and_trace_render_them() {
        let dir = tempdir("obs");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.log");
        write_sample_csv(&csv_in, 256);

        let msg = run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128 --metrics {} --trace {}",
            csv_in.display(),
            stream.display(),
            metrics.display(),
            trace.display()
        ))
        .unwrap();
        assert!(msg.contains("wrote metrics snapshot"), "{msg}");

        // The snapshot is a valid sbr-obs/v2 document with pipeline data.
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.counter("sbr_core.best_map.calls").unwrap() > 0);
        assert_eq!(
            snap.histogram("sbr_core.sbr.encode_ns").unwrap().count,
            2,
            "one encode span per batch"
        );

        // `report` renders the per-phase table from it, with the
        // bounded-error quantile columns.
        let rep = run_argv(&format!("report --input {}", metrics.display())).unwrap();
        assert!(rep.contains("encode (total)"), "{rep}");
        assert!(rep.contains("BestMap calls"), "{rep}");
        assert!(rep.contains("p50-ms"), "{rep}");
        assert!(rep.contains("p99-ms"), "{rep}");

        // `trace` pretty-prints the event log; spans landed there too.
        let tr = run_argv(&format!("trace --input {}", trace.display())).unwrap();
        assert!(tr.contains("sbr_core.sbr.encode_ns"), "{tr}");
        // Filtering narrows the output.
        let filtered = run_argv(&format!(
            "trace --input {} --filter get_base",
            trace.display()
        ))
        .unwrap();
        assert!(
            filtered.contains("sbr_core.get_base.build_ns"),
            "{filtered}"
        );
        assert!(!filtered.contains("sbr_core.sbr.encode_ns"), "{filtered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_cache_off_writes_identical_stream() {
        let dir = tempdir("pcache");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 256);
        let on = dir.join("on.sbr");
        let off = dir.join("off.sbr");
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128 --probe-cache on",
            csv_in.display(),
            on.display()
        ))
        .unwrap();
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128 --probe-cache off",
            csv_in.display(),
            off.display()
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(&on).unwrap(),
            std::fs::read(&off).unwrap(),
            "probe cache must not change the stream bytes"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fit_cache_off_writes_identical_stream() {
        let dir = tempdir("fcache");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 256);
        let on = dir.join("on.sbr");
        let off = dir.join("off.sbr");
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128 --fit-cache on",
            csv_in.display(),
            on.display()
        ))
        .unwrap();
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128 --fit-cache off",
            csv_in.display(),
            off.display()
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(&on).unwrap(),
            std::fs::read(&off).unwrap(),
            "fit cache must not change the stream bytes"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_clean_channel_delivers_everything() {
        let out = run_argv("simulate --nodes 3 --len 256 --batch 64").unwrap();
        assert!(out.contains("simulated 2 sensor(s)"), "{out}");
        assert!(out.contains("chunks delivered       8/8 (100.0%)"), "{out}");
        // No faults were injected, so recovery machinery stayed idle.
        assert!(out.contains("resyncs                0"), "{out}");
        assert!(out.contains("gaps detected          0"), "{out}");
    }

    #[test]
    fn simulate_chaos_recovers_and_reports_metrics() {
        let dir = tempdir("simulate");
        let metrics = dir.join("net.json");
        let out = run_argv(&format!(
            "simulate --nodes 3 --len 512 --batch 64 --loss 0.1 --fault-seed 42 \
             --drop 0.3 --dup 0.1 --crash-at 1:3 --metrics {}",
            metrics.display()
        ))
        .unwrap();
        // The fault schedule fired and the protocol healed: every flushed
        // chunk of the surviving epochs reached the station.
        assert!(out.contains("crashes                1"), "{out}");
        assert!(out.contains("(100.0%)"), "{out}");

        // The snapshot carries the recovery counters and `report` renders
        // them under the sensor-network section.
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.counter("sensor_net.recovery.acks").unwrap() > 0);
        assert!(snap.counter("sensor_net.recovery.resyncs").unwrap() > 0);
        // The frame-lifecycle timeline fed the quantile histograms and
        // its overflow counter reports an uncontended ring.
        assert!(
            snap.histogram("sensor_net.recovery.retx_depth_per_round")
                .unwrap()
                .count
                > 0
        );
        assert!(
            snap.histogram("sensor_net.recovery.ack_rtt_rounds")
                .unwrap()
                .count
                > 0
        );
        assert_eq!(snap.counter(sbr_obs::TIMELINE_DROPPED_METRIC), Some(0));
        let rep = run_argv(&format!("report --input {}", metrics.display())).unwrap();
        assert!(rep.contains("sensor_net.recovery.acks"), "{rep}");
        // Quantiles render for the network histograms.
        assert!(
            rep.contains("sensor_net.recovery.retx_depth_per_round"),
            "{rep}"
        );
        assert!(rep.contains("p99="), "{rep}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_store_then_inspect_and_compact() {
        let dir = tempdir("store-cli");
        let store = dir.join("stores");
        // Tiny segments so the run seals many segments and writes
        // checkpoints; a crash forces a resync, giving compact work.
        let out = run_argv(&format!(
            "simulate --nodes 3 --len 512 --batch 64 --crash-at 1:3 \
             --store {} --segment-bytes 256",
            store.display()
        ))
        .unwrap();
        assert!(out.contains("persisted 2 sensor store(s)"), "{out}");

        let rep = run_argv(&format!("storage inspect {}", store.display())).unwrap();
        assert!(rep.contains("2 sensor store(s)"), "{rep}");
        assert!(rep.contains("all stores verified"), "{rep}");

        let comp = run_argv(&format!("storage compact {}", store.display())).unwrap();
        assert!(comp.contains("compacted"), "{comp}");
        // Compaction preserves full auditability: the walk still checks
        // out from the origin.
        run_argv(&format!("storage inspect {}", store.display())).unwrap();

        // Flip one byte inside the first sealed segment of sensor 1:
        // inspect must turn into a runtime failure naming the damage.
        let seg = store.join("sensor-1").join("seg-00000000.sbrseg");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let e = run_argv(&format!("storage inspect {}", store.display())).unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_inspect_rejects_empty_dir() {
        let dir = tempdir("store-empty");
        let e = run_argv(&format!("storage inspect {}", dir.display())).unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_rejects_bad_geometry() {
        // A batch the feed can't fill and a crash on a non-sensor node are
        // usage errors, not runtime failures.
        let e = run_argv("simulate --len 32 --batch 64").unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        let e = run_argv("simulate --crash-at 0:2").unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
        let e = run_argv("simulate --nodes 3 --crash-at 5:2").unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e:?}");
    }

    /// A tiny `sbr-bench/v3` artifact with one fig5-shaped record whose
    /// walls are scaled by `scale` (1.0 = the baseline).
    fn bench_fixture(scale: f64) -> String {
        format!(
            "{{\n  \"schema\": \"sbr-bench/v3\",\n  \"records\": [\n    \
             {{\"experiment\": \"fig5\", \"params\": {{\"n\": 5120, \"ratio\": 0.05}}, \
             \"avg_encode_secs\": {}, \
             \"search\": {{\"probes\": 30, \"cache_hits\": 900, \"cache_misses\": 1100, \"wall_secs\": {}}}, \
             \"get_base\": {{\"matrix_cells\": 4900, \"fit_cache_hits\": 147000, \"fit_cache_misses\": 48300, \"wall_secs\": {}}}, \
             \"recovery\": null, \"metrics\": null}}\n  ]\n}}\n",
            0.010 * scale,
            0.008 * scale,
            0.006 * scale
        )
    }

    #[test]
    fn perf_diff_detects_seeded_regression() {
        let dir = tempdir("perfdiff");
        let base = dir.join("base.json");
        let slow = dir.join("slow.json");
        let report = dir.join("diff.txt");
        std::fs::write(&base, bench_fixture(1.0)).unwrap();
        std::fs::write(&slow, bench_fixture(1.3)).unwrap();

        // A 30% wall regression trips the default 25% tolerance: exit 1,
        // and the report file is still written for archival.
        let e = run_argv(&format!(
            "perf diff {} {} --report {}",
            base.display(),
            slow.display(),
            report.display()
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        assert!(e.message().contains("REGRESSION"), "{e:?}");
        assert!(e.message().contains("encode wall"), "{e:?}");
        let saved = std::fs::read_to_string(&report).unwrap();
        assert!(saved.contains("REGRESSION"), "{saved}");

        // Widening the tolerance past the regression passes it.
        let ok = run_argv(&format!(
            "perf diff {} {} --tolerance 0.5",
            base.display(),
            slow.display()
        ))
        .unwrap();
        assert!(ok.contains("0 regression(s)"), "{ok}");

        // And comparing a run against itself is always clean.
        let ok = run_argv(&format!("perf diff {} {}", base.display(), base.display())).unwrap();
        assert!(ok.contains("0 regression(s)"), "{ok}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn perf_diff_improvements_do_not_fail() {
        let dir = tempdir("perfgain");
        let base = dir.join("base.json");
        let fast = dir.join("fast.json");
        std::fs::write(&base, bench_fixture(1.0)).unwrap();
        std::fs::write(&fast, bench_fixture(0.5)).unwrap();
        let ok = run_argv(&format!("perf diff {} {}", base.display(), fast.display())).unwrap();
        assert!(ok.contains("improved"), "{ok}");
        assert!(ok.contains("0 regression(s)"), "{ok}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn perf_diff_rejects_non_bench_artifacts() {
        let dir = tempdir("perfbad");
        let snap = dir.join("snap.json");
        std::fs::write(&snap, "{\"schema\": \"sbr-obs/v2\", \"metrics\": {}}").unwrap();
        let e = run_argv(&format!("perf diff {} {}", snap.display(), snap.display())).unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e:?}");
        assert!(e.message().contains("not a benchmark artifact"), "{e:?}");
        // Disjoint record sets cannot be compared.
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, bench_fixture(1.0)).unwrap();
        std::fs::write(
            &b,
            "{\"schema\": \"sbr-bench/v3\", \"records\": [{\"experiment\": \"other\"}]}",
        )
        .unwrap();
        let e = run_argv(&format!("perf diff {} {}", a.display(), b.display())).unwrap_err();
        assert!(e.message().contains("no overlapping records"), "{e:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_lifecycle_filters_narrow_to_one_frame() {
        let dir = tempdir("tracefilter");
        let log = dir.join("t.log");
        // The shape `NetObs::frame_event` mirrors into the trace sink.
        std::fs::write(
            &log,
            concat!(
                "{\"ts_ns\":10,\"name\":\"sensor_net.timeline.tx\",\"frame\":\"1:0:3\",\"node\":\"1\",\"kind\":\"tx\",\"value\":\"0\"}\n",
                "{\"ts_ns\":20,\"name\":\"sensor_net.timeline.retx\",\"frame\":\"1:0:3\",\"node\":\"1\",\"kind\":\"retx\",\"value\":\"1\"}\n",
                "{\"ts_ns\":30,\"name\":\"sensor_net.timeline.tx\",\"frame\":\"2:0:3\",\"node\":\"2\",\"kind\":\"tx\",\"value\":\"0\"}\n",
                "{\"ts_ns\":40,\"name\":\"sensor_net.timeline.acked\",\"frame\":\"2:0:3\",\"node\":\"2\",\"kind\":\"acked\",\"value\":\"0\"}\n",
                "{\"ts_ns\":50,\"name\":\"sbr_core.sbr.encode_ns\",\"dur_ns\":900}\n",
            ),
        )
        .unwrap();
        let l = log.display();

        let one = run_argv(&format!("trace --input {l} --frame 1:0:3")).unwrap();
        assert!(one.contains("2 of 5 event(s)"), "{one}");
        assert!(one.contains("retx"), "{one}");
        assert!(!one.contains("acked"), "{one}");

        let node2 = run_argv(&format!("trace --input {l} --node 2")).unwrap();
        assert!(node2.contains("2 of 5 event(s)"), "{node2}");
        assert!(node2.contains("frame=\"2:0:3\""), "{node2}");

        let acked = run_argv(&format!("trace --input {l} --kind acked")).unwrap();
        assert!(acked.contains("1 of 5 event(s)"), "{acked}");

        // Filters compose; a frame that never acked yields nothing.
        let none = run_argv(&format!("trace --input {l} --frame 1:0:3 --kind acked")).unwrap();
        assert!(none.contains("0 of 5 event(s)"), "{none}");

        // Events without lifecycle fields are hidden while a lifecycle
        // filter is active, but still render unfiltered.
        let all = run_argv(&format!("trace --input {l}")).unwrap();
        assert!(all.contains("sbr_core.sbr.encode_ns"), "{all}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_rejects_unknown_schemas() {
        let dir = tempdir("badschema");
        let p = dir.join("x.json");
        std::fs::write(&p, "{\"schema\": \"wat/v9\"}").unwrap();
        let e = run_argv(&format!("report --input {}", p.display())).unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(e.message().contains("unsupported schema"), "{e:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
