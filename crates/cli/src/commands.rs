//! The subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use sbr_baselines::Compressor;
use sbr_core::query::aggregate_stream;
use sbr_core::{codec, Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};
use sensor_net::storage::{recover, LogWriter};

use crate::args::{Cli, Command, USAGE};
use crate::csv::{self, Table};

/// Run a parsed command line; returns the text to print.
pub fn run(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Compress {
            input,
            output,
            band,
            m_base,
            batch,
            metric,
        } => compress(input, output, *band, *m_base, *batch, metric),
        Command::Decompress { input, output } => decompress(input, output),
        Command::Info { input } => info(input),
        Command::Compare { input, band } => compare(input, *band),
        Command::Aggregate {
            input,
            signal,
            from,
            to,
        } => aggregate(input, *signal, *from, *to),
        Command::Generate {
            dataset,
            output,
            len,
            seed,
        } => generate(dataset, output, *len, *seed),
    }
}

fn generate(dataset: &str, output: &str, len: usize, seed: u64) -> Result<String, String> {
    if len == 0 {
        return Err("--len must be positive".into());
    }
    let d = match dataset {
        "phone" => sbr_datasets::phone(seed, len, 256),
        "weather" => sbr_datasets::weather(seed, len),
        "stock" => sbr_datasets::stock(seed, 10, len),
        "mixed" => sbr_datasets::mixed(seed, len),
        "indexes" => sbr_datasets::indexes(seed, len),
        "netflow" => sbr_datasets::netflow(seed, 8, len),
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let table = Table {
        names: d.signal_names.clone(),
        columns: d.signals,
    };
    let f = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    csv::write(&table, BufWriter::new(f)).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated {dataset} (seed {seed}): {} signals × {len} samples → {output}",
        table.columns.len()
    ))
}

fn read_csv(path: &str) -> Result<Table, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    csv::read(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn metric_of(name: &str) -> ErrorMetric {
    match name {
        "relative" => ErrorMetric::relative(),
        "maxabs" => ErrorMetric::MaxAbs,
        _ => ErrorMetric::Sse,
    }
}

fn compress(
    input: &str,
    output: &str,
    band: usize,
    m_base: usize,
    batch: Option<usize>,
    metric: &str,
) -> Result<String, String> {
    let table = read_csv(input)?;
    let n_signals = table.columns.len();
    let total_rows = table.rows();
    let batch = match batch {
        Some(b) if b > total_rows => {
            return Err(format!(
                "--batch {b} exceeds the {total_rows} rows available"
            ));
        }
        Some(0) => return Err("--batch must be positive".into()),
        Some(b) => b,
        None => total_rows,
    };
    let n_batches = total_rows / batch;

    let config = SbrConfig::new(band, m_base).with_metric(metric_of(metric));
    let mut encoder = SbrEncoder::new(n_signals, batch, config).map_err(|e| e.to_string())?;

    let out_path = Path::new(output);
    let dir = out_path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(d) = dir {
        std::fs::create_dir_all(d).map_err(|e| e.to_string())?;
    }
    // LogWriter names files itself; for the CLI we write the frames
    // directly in the same length-prefixed format.
    let f = File::create(out_path).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut w = BufWriter::new(f);

    let mut total_cost = 0usize;
    let mut total_err = 0.0f64;
    for b in 0..n_batches {
        let rows: Vec<Vec<f64>> = table
            .columns
            .iter()
            .map(|c| c[b * batch..(b + 1) * batch].to_vec())
            .collect();
        let tx = encoder.encode(&rows).map_err(|e| e.to_string())?;
        total_cost += tx.cost();
        total_err += encoder.last_stats().expect("stats").total_err;
        let frame = codec::encode(&tx);
        w.write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|()| w.write_all(&frame))
            .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;

    let raw = n_signals * batch * n_batches;
    Ok(format!(
        "compressed {input}: {n_signals} signals × {batch} samples × {n_batches} batches\n\
         {raw} values → {total_cost} values ({:.1}%), metric {metric}, total error {:.4e}\n\
         wrote {output}",
        100.0 * total_cost as f64 / raw as f64,
        total_err
    ))
}

fn decompress(input: &str, output: &str) -> Result<String, String> {
    let log = recover(Path::new(input)).map_err(|e| e.to_string())?;
    if log.transmissions.is_empty() {
        return Err(format!("{input}: no complete transmissions"));
    }
    let mut decoder = Decoder::new();
    let n_signals = log.transmissions[0].n_signals as usize;
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_signals];
    for tx in &log.transmissions {
        let rec = decoder.decode(tx).map_err(|e| e.to_string())?;
        for (c, r) in columns.iter_mut().zip(&rec) {
            c.extend_from_slice(r);
        }
    }
    let table = Table {
        names: Vec::new(),
        columns,
    };
    let f = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    csv::write(&table, BufWriter::new(f)).map_err(|e| e.to_string())?;
    let note = if log.truncated_tail > 0 {
        format!(" (discarded {} truncated tail bytes)", log.truncated_tail)
    } else {
        String::new()
    };
    Ok(format!(
        "decompressed {} transmissions → {} samples × {} signals → {output}{note}",
        log.transmissions.len(),
        table.rows(),
        n_signals
    ))
}

fn info(input: &str) -> Result<String, String> {
    let log = recover(Path::new(input)).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str("seq   signals  samples    w   base-ins  intervals   cost   ratio\n");
    for tx in &log.transmissions {
        out.push_str(&format!(
            "{:>3}   {:>7}  {:>7}  {:>3}   {:>8}  {:>9}  {:>5}  {:>5.1}%\n",
            tx.seq,
            tx.n_signals,
            tx.samples_per_signal,
            tx.w,
            tx.base_updates.len(),
            tx.intervals.len(),
            tx.cost(),
            100.0 * tx.compression_ratio()
        ));
    }
    if log.truncated_tail > 0 {
        out.push_str(&format!("truncated tail: {} bytes\n", log.truncated_tail));
    }
    Ok(out)
}

fn compare(input: &str, band: usize) -> Result<String, String> {
    let table = read_csv(input)?;
    let data = MultiSeries::from_rows(&table.columns).map_err(|e| e.to_string())?;
    let mut out =
        format!("method                          sse      relative-sse   (budget {band} values)\n");

    // SBR through the full pipeline.
    let config = SbrConfig::new(band, band);
    let mut enc = SbrEncoder::new(data.n_signals(), data.samples_per_signal(), config)
        .map_err(|e| e.to_string())?;
    let tx = enc.encode(&table.columns).map_err(|e| e.to_string())?;
    let rec = Decoder::new().decode(&tx).map_err(|e| e.to_string())?;
    let flat: Vec<f64> = rec.into_iter().flatten().collect();
    out.push_str(&row("SBR", data.flat(), &flat));

    let methods: Vec<Box<dyn Compressor>> = vec![
        Box::new(sbr_baselines::wavelet::WaveletCompressor::default()),
        Box::new(sbr_baselines::wavelet2d::Wavelet2dCompressor),
        Box::new(sbr_baselines::dct::DctCompressor::default()),
        Box::new(sbr_baselines::fourier::FourierCompressor::default()),
        Box::new(sbr_baselines::histogram::HistogramCompressor::default()),
        Box::new(sbr_baselines::v_optimal::VOptimalCompressor),
        Box::new(sbr_baselines::linreg::LinRegCompressor::default()),
        Box::new(sbr_baselines::quadreg::QuadRegCompressor),
        Box::new(sbr_baselines::swing::SwingCompressor),
    ];
    for m in &methods {
        let approx = m.compress_reconstruct(&data, band);
        out.push_str(&row(m.name(), data.flat(), &approx));
    }
    Ok(out)
}

/// Range aggregates straight off the compressed stream: no per-sample
/// reconstruction (see `sbr_core::query`).
fn aggregate(input: &str, signal: usize, from: usize, to: usize) -> Result<String, String> {
    if to <= from {
        return Err(format!("empty range [{from}, {to})"));
    }
    let log = recover(Path::new(input)).map_err(|e| e.to_string())?;
    if log.transmissions.is_empty() {
        return Err(format!("{input}: no complete transmissions"));
    }
    let mut decoder = Decoder::new();
    let agg = aggregate_stream(&mut decoder, &log.transmissions, signal, from, to)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "signal {signal}, samples [{from}, {to}) — {} values
\
         sum {:.6}
avg {:.6}
min {:.6}
max {:.6}",
        agg.count, agg.sum, agg.avg, agg.min, agg.max
    ))
}

fn row(name: &str, exact: &[f64], approx: &[f64]) -> String {
    format!(
        "{name:<24} {:>14.4e} {:>15.4e}\n",
        ErrorMetric::Sse.score(exact, approx),
        ErrorMetric::relative().score(exact, approx),
    )
}

/// Shared with `sensor-net`'s on-disk format: expose the writer for tests.
pub fn open_log_writer(dir: &Path, node: usize) -> std::io::Result<LogWriter> {
    LogWriter::open(dir, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sbr-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_sample_csv(path: &Path, rows: usize) {
        let mut s = String::from("a,b\n");
        for i in 0..rows {
            let t = i as f64;
            s.push_str(&format!(
                "{},{}\n",
                (t * 0.2).sin() * 5.0,
                (t * 0.2).sin() * 10.0 + 1.0
            ));
        }
        std::fs::write(path, s).unwrap();
    }

    fn run_argv(args: &str) -> Result<String, String> {
        let argv: Vec<String> = args.split_whitespace().map(str::to_string).collect();
        run(&parse(&argv)?)
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let dir = tempdir("roundtrip");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        let csv_out = dir.join("rec.csv");
        write_sample_csv(&csv_in, 256);

        let msg = run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        assert!(msg.contains("2 batches"), "{msg}");

        let msg = run_argv(&format!(
            "decompress --input {} --output {}",
            stream.display(),
            csv_out.display()
        ))
        .unwrap();
        assert!(msg.contains("256 samples × 2 signals"), "{msg}");

        // Reconstruction is close: the two columns are affine images of one
        // sine, SBR eats this for breakfast.
        let orig = csv::read(std::io::BufReader::new(File::open(&csv_in).unwrap())).unwrap();
        let rec = csv::read(std::io::BufReader::new(File::open(&csv_out).unwrap())).unwrap();
        let mut sse = 0.0;
        for (a, b) in orig.columns.iter().zip(&rec.columns) {
            sse += ErrorMetric::Sse.score(a, b);
        }
        let energy: f64 = orig.columns.iter().flatten().map(|v| v * v).sum();
        assert!(sse < 0.05 * energy, "sse {sse} vs energy {energy}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_lists_transmissions() {
        let dir = tempdir("info");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 192);
        run_argv(&format!(
            "compress --input {} --output {} --band 48 --batch 64",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let out = run_argv(&format!("info --input {}", stream.display())).unwrap();
        assert_eq!(out.lines().count(), 4, "{out}"); // header + 3 rows
        assert!(out.contains("  0 "), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_prints_all_methods() {
        let dir = tempdir("compare");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 128);
        let out = run_argv(&format!("compare --input {} --band 32", csv_in.display())).unwrap();
        for name in [
            "SBR",
            "Wavelets",
            "DCT",
            "Fourier",
            "Histograms",
            "Quadratic",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_matches_decompressed_csv() {
        let dir = tempdir("agg");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 256);
        run_argv(&format!(
            "compress --input {} --output {} --band 96 --batch 128",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let out = run_argv(&format!(
            "aggregate --input {} --signal 1 --from 50 --to 200",
            stream.display()
        ))
        .unwrap();
        // Cross-check against full decompression.
        let csv_out = dir.join("rec.csv");
        run_argv(&format!(
            "decompress --input {} --output {}",
            stream.display(),
            csv_out.display()
        ))
        .unwrap();
        let rec = csv::read(std::io::BufReader::new(File::open(&csv_out).unwrap())).unwrap();
        let slice = &rec.columns[1][50..200];
        let sum: f64 = slice.iter().sum();
        let sum_line = out.lines().find(|l| l.starts_with("sum")).unwrap();
        let got: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(
            (got - sum).abs() < 1e-4 * (1.0 + sum.abs()),
            "{got} vs {sum}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_rejects_bad_ranges() {
        let dir = tempdir("aggbad");
        let csv_in = dir.join("in.csv");
        let stream = dir.join("out.sbr");
        write_sample_csv(&csv_in, 128);
        run_argv(&format!(
            "compress --input {} --output {} --band 64",
            csv_in.display(),
            stream.display()
        ))
        .unwrap();
        let s = stream.display();
        assert!(run_argv(&format!("aggregate --input {s} --signal 0 --from 9 --to 9")).is_err());
        assert!(run_argv(&format!("aggregate --input {s} --signal 7 --from 0 --to 9")).is_err());
        assert!(run_argv(&format!(
            "aggregate --input {s} --signal 0 --from 0 --to 999"
        ))
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run_argv("compress --input /nonexistent.csv --output /tmp/x --band 10").is_err());
        assert!(run_argv("decompress --input /nonexistent.sbr --output /tmp/x").is_err());
        let dir = tempdir("badbatch");
        let csv_in = dir.join("in.csv");
        write_sample_csv(&csv_in, 16);
        assert!(run_argv(&format!(
            "compress --input {} --output {} --band 64 --batch 999",
            csv_in.display(),
            dir.join("o").display()
        ))
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generate_then_compress_pipeline() {
        let dir = tempdir("gen");
        let csv_path = dir.join("weather.csv");
        let out = run_argv(&format!(
            "generate --dataset weather --output {} --len 512 --seed 7",
            csv_path.display()
        ))
        .unwrap();
        assert!(out.contains("6 signals × 512"), "{out}");
        // Header row names the quantities.
        let t = csv::read(std::io::BufReader::new(File::open(&csv_path).unwrap())).unwrap();
        assert_eq!(t.names[0], "air_temperature");
        assert_eq!(t.rows(), 512);
        // The generated CSV feeds straight into compress.
        let stream = dir.join("w.sbr");
        run_argv(&format!(
            "compress --input {} --output {} --band 300 --batch 256",
            csv_path.display(),
            stream.display()
        ))
        .unwrap();
        let info = run_argv(&format!("info --input {}", stream.display())).unwrap();
        assert!(info.lines().count() >= 3, "{info}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_shows_usage() {
        let out = run_argv("help").unwrap();
        assert!(out.contains("USAGE"));
    }
}
