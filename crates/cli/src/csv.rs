//! Minimal CSV reader/writer for numeric time series.
//!
//! Layout convention: one column per signal, one row per sample, optional
//! header row (detected when the first row fails to parse as numbers).

use std::io::{BufRead, Write};

/// A parsed CSV: optional column names + column-major data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names (empty when the file had no header).
    pub names: Vec<String>,
    /// One `Vec` per column, all the same length.
    pub columns: Vec<Vec<f64>>,
}

impl Table {
    /// Number of samples per column.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

/// Parse a CSV from any reader.
pub fn read(reader: impl BufRead) -> Result<Table, String> {
    let mut names: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("I/O error at line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        match parsed {
            Ok(values) => {
                if columns.is_empty() {
                    columns = vec![Vec::new(); values.len()];
                }
                if values.len() != columns.len() {
                    return Err(format!(
                        "line {}: expected {} fields, found {}",
                        lineno + 1,
                        columns.len(),
                        values.len()
                    ));
                }
                for (c, v) in columns.iter_mut().zip(values) {
                    c.push(v);
                }
            }
            Err(_) if columns.is_empty() && names.is_empty() => {
                // First non-numeric row: treat as header.
                names = fields.iter().map(|s| (*s).to_string()).collect();
            }
            Err(e) => {
                return Err(format!("line {}: unparsable number: {e}", lineno + 1));
            }
        }
    }
    if columns.is_empty() {
        return Err("no data rows found".into());
    }
    if !names.is_empty() && names.len() != columns.len() {
        return Err(format!(
            "header has {} names but rows have {} fields",
            names.len(),
            columns.len()
        ));
    }
    Ok(Table { names, columns })
}

/// Write a table as CSV.
pub fn write(table: &Table, mut w: impl Write) -> std::io::Result<()> {
    if !table.names.is_empty() {
        writeln!(w, "{}", table.names.join(","))?;
    }
    for r in 0..table.rows() {
        let row: Vec<String> = table.columns.iter().map(|c| format!("{}", c[r])).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_headerless() {
        let t = read(Cursor::new("1,2\n3,4\n5,6\n")).unwrap();
        assert!(t.names.is_empty());
        assert_eq!(t.columns, vec![vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]]);
    }

    #[test]
    fn parses_header_and_skips_comments() {
        let t = read(Cursor::new(
            "temp,humidity\n# comment\n20.5,80\n21.0,79\n\n",
        ))
        .unwrap();
        assert_eq!(t.names, vec!["temp", "humidity"]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.columns[1], vec![80.0, 79.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(read(Cursor::new("1,2\n3\n")).is_err());
    }

    #[test]
    fn rejects_garbage_mid_file() {
        assert!(read(Cursor::new("1,2\nfoo,bar\n")).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(read(Cursor::new("")).is_err());
        assert!(read(Cursor::new("# only comments\n")).is_err());
    }

    #[test]
    fn roundtrip() {
        let t = Table {
            names: vec!["a".into(), "b".into()],
            columns: vec![vec![1.5, -2.0], vec![0.25, 1e6]],
        };
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        let back = read(Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }
}
