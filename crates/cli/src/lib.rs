//! Library backing the `sbr` command-line tool: CSV I/O, argument
//! parsing, and the compress / decompress / info / compare drivers.
//!
//! Kept as a library so every code path is unit-testable; `main.rs` is a
//! thin shim.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
pub mod csv;
pub mod error;

pub use args::{Cli, Command};
pub use commands::run;
pub use error::CliError;
