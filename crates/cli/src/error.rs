//! Typed CLI failures so `main` can map them to distinct exit codes and
//! route them into the structured event log.

use std::fmt;

/// A CLI failure, classified by whose fault it is.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The invocation itself is wrong (bad flag value, impossible range,
    /// unknown name): exit code 2, fix the command line.
    Usage(String),
    /// The command was well-formed but the work failed (I/O error, corrupt
    /// stream, encoder error): exit code 1.
    Runtime(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    /// Short machine-readable classification for trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Runtime(_) => "runtime",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

/// Bare strings bubbling up through `?` are runtime failures; usage
/// errors are always constructed explicitly at the validation site.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Runtime(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let u = CliError::Usage("bad".into());
        let r = CliError::Runtime("io".into());
        assert_eq!(u.exit_code(), 2);
        assert_eq!(r.exit_code(), 1);
        assert_ne!(u.exit_code(), r.exit_code());
        assert_eq!(u.kind(), "usage");
        assert_eq!(r.kind(), "runtime");
        assert_eq!(format!("{u}"), "bad");
    }

    #[test]
    fn strings_convert_to_runtime() {
        let e: CliError = String::from("boom").into();
        assert_eq!(e, CliError::Runtime("boom".into()));
    }
}
