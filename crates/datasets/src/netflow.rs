//! Synthetic network-measurement feed — the paper's §1 closes by noting
//! the framework "may have applications in other areas where historical
//! information is being collected in a distributed fashion, like network
//! measurements". This generator produces SNMP-style link utilization
//! series: a shared diurnal load, per-link capacity scaling, long-range
//! bursts (flash events) and heavy-tailed noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gauss::{standard_normal, Ar1};
use crate::Dataset;

/// Link capacities in Mbit/s for the generated interfaces.
const LINKS: [(&str, f64); 8] = [
    ("core-1", 10_000.0),
    ("core-2", 10_000.0),
    ("agg-1", 1_000.0),
    ("agg-2", 1_000.0),
    ("edge-1", 100.0),
    ("edge-2", 100.0),
    ("edge-3", 100.0),
    ("peering", 2_500.0),
];

/// Generate `len` utilization samples (Mbit/s) for `n ≤ 8` links.
pub fn netflow(seed: u64, n: usize, len: usize) -> Dataset {
    assert!(n <= LINKS.len(), "at most {} links", LINKS.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed_face_cafe_0001);
    let day = (len / 6).clamp(16, 288) as f64; // 5-min SNMP polls
    let mut regional = Ar1::new(0.99, 0.01);
    let mut per_link: Vec<Ar1> = (0..n).map(|_| Ar1::new(0.97, 0.02)).collect();
    // Flash events: occasional multiplicative bursts that decay.
    let mut burst = vec![0.0f64; n];

    let mut signals: Vec<Vec<f64>> = vec![Vec::with_capacity(len); n];
    for t in 0..len {
        let phase = 2.0 * std::f64::consts::PI * (t as f64 / day);
        let diurnal = 0.45 - 0.25 * phase.cos() - 0.08 * (2.0 * phase).cos();
        let shared = regional.step(&mut rng);
        for (l, (sig, (_, cap))) in signals.iter_mut().zip(&LINKS).enumerate() {
            if rng.random::<f64>() < 0.002 {
                burst[l] = 0.3 + rng.random::<f64>() * 0.5; // flash event
            }
            burst[l] *= 0.97; // exponential decay
            let local = per_link[l].step(&mut rng);
            // Heavy-tail noise: square a normal for occasional spikes.
            let tail = standard_normal(&mut rng);
            let noise = 0.01 * tail * tail.abs();
            let util = (diurnal + shared + local + burst[l] + noise).clamp(0.005, 0.98);
            sig.push(util * cap);
        }
    }
    Dataset {
        name: "Netflow",
        signal_names: LINKS[..n].iter().map(|(l, _)| (*l).to_string()).collect(),
        signals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn utilization_within_capacity() {
        let d = netflow(0, 8, 2048);
        for (s, (_, cap)) in d.signals.iter().zip(&LINKS) {
            assert!(s.iter().all(|&v| v > 0.0 && v < *cap), "bounds on {cap}");
        }
    }

    #[test]
    fn diurnal_cycle_present() {
        let len = 2048 * 4;
        let day = (len / 6).clamp(16, 288); // the generator's own period
        let d = netflow(1, 4, len);
        let rho = stats::autocorrelation(&d.signals[0], day);
        assert!(rho > 0.3, "day-lag autocorrelation {rho}");
    }

    #[test]
    fn links_share_load_pattern() {
        let d = netflow(2, 8, 4096);
        let rho = stats::correlation(&d.signals[0], &d.signals[2]);
        assert!(rho > 0.4, "core/agg correlation {rho}");
    }

    #[test]
    fn deterministic_and_shaped() {
        assert_eq!(netflow(7, 3, 512), netflow(7, 3, 512));
        let d = netflow(7, 3, 512);
        assert_eq!(d.n_signals(), 3);
        assert_eq!(d.len(), 512);
    }

    #[test]
    fn flash_events_create_heavy_bursts() {
        // Over a long run, the max should substantially exceed the median.
        let d = netflow(3, 1, 16_384);
        let mut v = d.signals[0].clone();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        let max = v[v.len() - 1];
        assert!(max > 1.8 * median, "max {max} vs median {median}");
    }
}
