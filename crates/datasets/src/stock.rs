//! Synthetic per-minute trade values: correlated geometric random walks
//! with volatility clustering plus heavy sampling noise — the paper drew a
//! *random sample* of each stock's trades, which destroys smoothness and
//! leaves few reusable shape features (Table 6 shows the Stock dataset
//! inserting the fewest base intervals).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::{normal, standard_normal, Ar1};
use crate::Dataset;

/// The ten tickers of §5.1 with 2000-04 price scales.
const TICKERS: [(&str, f64); 10] = [
    ("MSFT", 90.0),
    ("ORCL", 78.0),
    ("INTC", 130.0),
    ("DELL", 54.0),
    ("YHOO", 170.0),
    ("NOK", 55.0),
    ("CSCO", 75.0),
    ("WCOM", 45.0),
    ("ARBA", 110.0),
    ("LGTO", 40.0),
];

/// Generate `len` sampled trade values for `n` tickers (`n ≤ 10`).
pub fn stock(seed: u64, n: usize, len: usize) -> Dataset {
    assert!(n <= TICKERS.len(), "at most {} tickers", TICKERS.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe_f00d_d00d);
    let mut market = Ar1::new(0.98, 0.0016); // shared market factor
    let mut vol = Ar1::new(0.995, 0.05); // log-volatility (clustering)
    let mut log_prices: Vec<f64> = TICKERS[..n].iter().map(|(_, p)| p.ln()).collect();
    // Per-ticker beta to the market factor.
    let betas: Vec<f64> = (0..n)
        .map(|i| 0.6 + 0.9 * ((i * 7 % 10) as f64 / 10.0))
        .collect();

    // Trading-day length in samples: per-minute trades over a 6.5 h
    // session ≈ 390; scale with the series so short test series still see
    // whole sessions.
    let day = (len / 8).clamp(16, 390) as f64;
    let mut signals: Vec<Vec<f64>> = vec![Vec::with_capacity(len); n];
    for t in 0..len {
        let m = market.step(&mut rng);
        let sigma = 0.0012 * (1.0 + vol.step(&mut rng)).exp();
        // The intraday U-shape of trade activity/price pressure: busy and
        // volatile at open/close, quiet midday — the reusable per-day
        // feature real trade feeds exhibit.
        let phase = 2.0 * std::f64::consts::PI * (t as f64 / day);
        let intraday = 1.0 + 0.012 * phase.cos() + 0.004 * (2.0 * phase).cos();
        for (i, lp) in log_prices.iter_mut().enumerate() {
            *lp += betas[i] * m * 0.02 + standard_normal(&mut rng) * sigma;
            // Random-sampled trades around the mid price: bid/ask bounce +
            // odd-lot outliers.
            let mid = lp.exp() * intraday;
            let bounce = normal(&mut rng, 0.0, mid * 0.0009);
            let outlier = if rng_uniform(&mut rng) < 0.004 {
                normal(&mut rng, 0.0, mid * 0.01)
            } else {
                0.0
            };
            signals[i].push((mid + bounce + outlier).max(0.01));
        }
    }
    Dataset {
        name: "Stock",
        signal_names: TICKERS[..n].iter().map(|(t, _)| (*t).to_string()).collect(),
        signals,
    }
}

fn rng_uniform(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    rng.random()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_stay_positive_and_near_scale() {
        let d = stock(0, 10, 4096);
        for (s, (_, base)) in d.signals.iter().zip(&TICKERS) {
            assert!(s.iter().all(|&v| v > 0.0));
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            assert!(
                mean > base * 0.3 && mean < base * 3.0,
                "mean {mean} drifted too far from {base}"
            );
        }
    }

    #[test]
    fn returns_are_rougher_than_weather() {
        // First-difference energy relative to signal variance should be
        // high: sampled trades have little short-range smoothness.
        let d = stock(1, 3, 4096);
        let s = &d.signals[0];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / s.len() as f64;
        let diff_var: f64 =
            s.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum::<f64>() / (s.len() - 1) as f64;
        // A smooth diurnal signal has diff_var ≪ var; a random walk with
        // bounce noise keeps the ratio visible.
        assert!(diff_var / var > 1e-4, "ratio {:.2e}", diff_var / var);
    }

    #[test]
    fn tickers_share_market_moves() {
        let d = stock(2, 10, 8192);
        // Correlate daily-scale moving averages, not raw bounce noise.
        let smooth = |s: &[f64]| -> Vec<f64> {
            s.chunks(64)
                .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                .collect()
        };
        let a = smooth(&d.signals[0]);
        let b = smooth(&d.signals[6]);
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(&b) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        let rho = num / (da * db).sqrt();
        assert!(rho.abs() > 0.2, "smoothed co-movement {rho} too weak");
    }

    #[test]
    fn subset_matches_prefix_of_full_run() {
        // Shape contract: n controls how many tickers, not the randomness
        // layout guarantee — just check shapes and determinism.
        let d3 = stock(5, 3, 256);
        assert_eq!(d3.n_signals(), 3);
        assert_eq!(d3.signal_names, vec!["MSFT", "ORCL", "INTC"]);
    }
}
