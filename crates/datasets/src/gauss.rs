//! Seeded Gaussian sampling (Box–Muller) — kept local so the workspace
//! needs only the `rand` core crate, not `rand_distr`.

use rand::Rng;

/// Draw one standard-normal sample.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; reject u1 = 0 to keep ln finite.
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Draw `N(mu, sigma²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// A first-order autoregressive process: smooth, mean-reverting noise used
/// by several generators.
#[derive(Debug, Clone)]
pub struct Ar1 {
    /// Persistence coefficient in `[0, 1)`.
    pub phi: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Start an AR(1) at zero.
    pub fn new(phi: f64, sigma: f64) -> Self {
        Ar1 {
            phi,
            sigma,
            state: 0.0,
        }
    }

    /// Advance one step and return the new state.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.state = self.phi * self.state + standard_normal(rng) * self.sigma;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn ar1_is_mean_reverting() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = Ar1::new(0.9, 1.0);
        let vals: Vec<f64> = (0..50_000).map(|_| p.step(&mut rng)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.25, "long-run mean {mean} should be ~0");
        // Stationary variance σ²/(1-φ²) ≈ 5.26.
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((var - 5.26).abs() < 0.8, "var {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
