//! # Synthetic stand-ins for the paper's evaluation datasets
//!
//! The SIGMOD 2004 evaluation uses three proprietary feeds — AT&T long
//! distance call volumes, the University of Washington weather station, and
//! NYSE trade values — none of which is redistributable. This crate
//! generates deterministic synthetic equivalents that preserve the
//! *structure* each experiment exploits:
//!
//! * [`phone()`](fn@phone) — 15 state-level call-volume series sharing strong diurnal
//!   and weekly periodicity, with large absolute values (the property that
//!   makes the relative-error experiment of Table 3 interesting),
//! * [`weather()`](fn@weather) — 6 physically coupled quantities (temperature, dew
//!   point, humidity, wind speed/peak, solar irradiance) with the
//!   cross-signal linear correlations SBR feeds on,
//! * [`stock()`](fn@stock) — 10 correlated geometric random walks with volatility
//!   clustering and sampling noise (few reusable "features", matching the
//!   paper's Table 6 observation),
//! * [`mixed()`](fn@mixed) — 3 + 3 + 3 series from the three domains (§5.1.2),
//! * [`indexes()`](fn@indexes) — the 128-day industrial/insurance pair of Figures 2–3,
//! * [`netflow()`](fn@netflow) — SNMP-style link utilization, for the
//!   "network measurements" domain the paper's introduction points to.
//!
//! All generators are seeded ([`rand::rngs::StdRng`]); the same seed always
//! yields the same data, so every experiment in the harness is exactly
//! reproducible.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gauss;
pub mod indexes;
pub mod mixed;
pub mod netflow;
pub mod phone;
pub mod schedule;
pub mod stats;
pub mod stock;
pub mod weather;

pub use indexes::indexes;
pub use mixed::mixed;
pub use netflow::netflow;
pub use phone::phone;
pub use stock::stock;
pub use weather::weather;

/// A generated dataset: `N` signals of equal length plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name for report rows.
    pub name: &'static str,
    /// Per-signal names (quantity / state / ticker).
    pub signal_names: Vec<String>,
    /// The signals; all rows share one length.
    pub signals: Vec<Vec<f64>>,
}

impl Dataset {
    /// Number of signals (`N`).
    pub fn n_signals(&self) -> usize {
        self.signals.len()
    }

    /// Samples per signal.
    pub fn len(&self) -> usize {
        self.signals.first().map_or(0, Vec::len)
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split each signal into consecutive files of `file_len` samples —
    /// the per-transmission batches of §5.1. Trailing partial files are
    /// dropped. Returns `files[t][signal]`.
    pub fn chunk(&self, file_len: usize) -> Vec<Vec<Vec<f64>>> {
        assert!(file_len > 0, "file_len must be positive");
        let n_files = self.len() / file_len;
        (0..n_files)
            .map(|t| {
                self.signals
                    .iter()
                    .map(|s| s[t * file_len..(t + 1) * file_len].to_vec())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_exact_and_ordered() {
        let d = Dataset {
            name: "t",
            signal_names: vec!["a".into()],
            signals: vec![(0..10).map(|i| i as f64).collect()],
        };
        let files = d.chunk(3);
        assert_eq!(files.len(), 3); // 10/3, trailing sample dropped
        assert_eq!(files[0][0], vec![0.0, 1.0, 2.0]);
        assert_eq!(files[2][0], vec![6.0, 7.0, 8.0]);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(phone(7, 512, 256), phone(7, 512, 256));
        assert_eq!(weather(7, 512), weather(7, 512));
        assert_eq!(stock(7, 5, 512), stock(7, 5, 512));
        assert_eq!(mixed(7, 512), mixed(7, 512));
    }

    #[test]
    fn generators_differ_across_seeds() {
        assert_ne!(phone(1, 256, 128), phone(2, 256, 128));
        assert_ne!(stock(1, 4, 256), stock(2, 4, 256));
    }

    #[test]
    fn shapes_match_requests() {
        let d = phone(0, 1000, 500);
        assert_eq!(d.n_signals(), 15);
        assert_eq!(d.len(), 1000);
        let w = weather(0, 777);
        assert_eq!(w.n_signals(), 6);
        assert_eq!(w.len(), 777);
        let s = stock(0, 10, 2048);
        assert_eq!(s.n_signals(), 10);
        assert_eq!(s.len(), 2048);
        let m = mixed(0, 2048);
        assert_eq!(m.n_signals(), 9);
    }

    #[test]
    fn all_values_finite() {
        for d in [
            phone(3, 4096, 1440),
            weather(3, 4096),
            stock(3, 10, 4096),
            mixed(3, 4096),
        ] {
            for s in &d.signals {
                assert!(s.iter().all(|v| v.is_finite()), "{}", d.name);
            }
        }
    }
}
