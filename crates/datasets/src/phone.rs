//! Synthetic long-distance call volumes: 15 states, calls per minute.
//!
//! What the paper's AT&T feed provides and the experiments rely on:
//! a strong shared diurnal cycle, a weekday/weekend effect, per-state scale
//! differences (population), count-like noise that grows with the rate, and
//! *large absolute values* — the paper singles this dataset out as having
//! "the largest values", which is why its SSE numbers are in the thousands
//! and why the relative-error experiment runs on it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::{normal, Ar1};
use crate::Dataset;

/// Per-state base call rates (calls/min at the daily peak) — a population
/// proxy. Order matches the paper's state list.
const STATES: [(&str, f64); 15] = [
    ("AZ", 900.0),
    ("CA", 6000.0),
    ("CO", 800.0),
    ("CT", 700.0),
    ("FL", 3200.0),
    ("GA", 1600.0),
    ("IL", 2400.0),
    ("IN", 1100.0),
    ("MD", 1000.0),
    ("MN", 900.0),
    ("MO", 1100.0),
    ("NJ", 1700.0),
    ("NY", 3800.0),
    ("TX", 4200.0),
    ("WA", 1200.0),
];

/// Minutes per synthetic day. The paper's feed is per-minute over 19 days;
/// `samples_per_day` controls how much of a day one sample spans (use 1440
/// for true minutes; smaller values compress the cycle so shorter test
/// series still contain several periods).
pub fn phone(seed: u64, len: usize, samples_per_day: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let day = samples_per_day.max(2) as f64;
    let week = day * 7.0;
    // Smooth regional deviations, one AR(1) per state, plus one shared
    // national component so states stay correlated.
    let mut national = Ar1::new(0.995, 0.004);
    let mut regional: Vec<Ar1> = (0..STATES.len()).map(|_| Ar1::new(0.99, 0.006)).collect();

    let mut signals: Vec<Vec<f64>> = vec![Vec::with_capacity(len); STATES.len()];
    for t in 0..len {
        let tf = t as f64;
        // Diurnal shape: near-zero at night, business-hours hump with a
        // lunch dip. Built from two harmonics, clamped at a night floor.
        let phase = 2.0 * std::f64::consts::PI * (tf / day);
        let diurnal = (0.55 - 0.45 * phase.cos() - 0.12 * (2.0 * phase).cos()).max(0.03);
        // Weekday factor: weekends at ~55% volume, smooth transition.
        let wphase = 2.0 * std::f64::consts::PI * (tf / week);
        let weekly = 0.8 + 0.2 * (wphase - std::f64::consts::PI).cos().tanh();
        let shared = national.step(&mut rng);
        for (s, (_, base)) in STATES.iter().enumerate() {
            let local = regional[s].step(&mut rng);
            let rate = base * diurnal * weekly * (1.0 + shared + local).max(0.01);
            // Count noise ≈ Poisson: std = sqrt(rate).
            let v = (rate + normal(&mut rng, 0.0, rate.sqrt())).max(0.0);
            signals[s].push(v);
        }
    }
    Dataset {
        name: "Phone",
        signal_names: STATES.iter().map(|(n, _)| (*n).to_string()).collect(),
        signals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_large_and_nonnegative() {
        let d = phone(0, 2048, 256);
        for s in &d.signals {
            assert!(s.iter().all(|&v| v >= 0.0));
        }
        // CA (index 1) must dwarf AZ (index 0) on average.
        let mean = |s: &Vec<f64>| s.iter().sum::<f64>() / s.len() as f64;
        assert!(mean(&d.signals[1]) > 3.0 * mean(&d.signals[0]));
        assert!(mean(&d.signals[1]) > 500.0, "values must be large");
    }

    #[test]
    fn diurnal_cycle_is_visible() {
        // Autocorrelation at one day lag should be strongly positive.
        let day = 128;
        let d = phone(1, day * 16, day);
        let s = &d.signals[12]; // NY
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|v| (v - mean).powi(2)).sum();
        let cov: f64 = s
            .windows(day + 1)
            .map(|w| (w[0] - mean) * (w[day] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.5, "day-lag autocorrelation {rho} too weak");
    }

    #[test]
    fn states_are_cross_correlated() {
        let d = phone(2, 4096, 256);
        let a = &d.signals[1]; // CA
        let b = &d.signals[13]; // TX
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let (ma, mb) = (mean(a), mean(b));
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        let rho = num / (da * db).sqrt();
        assert!(rho > 0.8, "cross-state correlation {rho} too weak");
    }
}
