//! Descriptive statistics used to validate the generators (and handy for
//! anyone inspecting their own feeds before choosing SBR parameters):
//! means/variances, Pearson correlation, lag autocorrelation and a compact
//! per-signal summary.

/// Arithmetic mean.
pub fn mean(v: &[f64]) -> f64 {
    assert!(!v.is_empty(), "mean of an empty slice");
    v.iter().sum::<f64>() / v.len() as f64
}

/// Population variance.
pub fn variance(v: &[f64]) -> f64 {
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Pearson correlation of two equal-length signals; 0 when either side is
/// constant.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs equal lengths");
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    // lint:allow(float-eq): degenerate-variance guard; exact zero is the only unsafe divisor
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Autocorrelation of `v` at `lag` samples; 0 when the signal is constant
/// or shorter than the lag.
pub fn autocorrelation(v: &[f64], lag: usize) -> f64 {
    if v.len() <= lag || lag == 0 {
        return 0.0;
    }
    correlation(&v[..v.len() - lag], &v[lag..])
}

/// A compact per-signal summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Roughness: variance of first differences over the signal variance
    /// (≈ 0 for smooth series, ≈ 2 for white noise).
    pub roughness: f64,
}

/// Summarize one signal.
pub fn summarize(v: &[f64]) -> Summary {
    assert!(v.len() >= 2, "summary needs at least two samples");
    let var = variance(v);
    let diffs: Vec<f64> = v.windows(2).map(|w| w[1] - w[0]).collect();
    Summary {
        mean: mean(v),
        std: var.sqrt(),
        min: v.iter().copied().fold(f64::INFINITY, f64::min),
        max: v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        // lint:allow(float-eq): exact zero variance is the only division hazard here
        roughness: if var == 0.0 {
            0.0
        } else {
            variance(&diffs) / var
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert_eq!(variance(&v), 1.25);
    }

    #[test]
    fn perfect_and_anti_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let c = [3.0, 2.0, 1.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_has_zero_correlation() {
        let a = [5.0; 4];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(correlation(&a, &b), 0.0);
    }

    #[test]
    fn autocorrelation_detects_periodicity() {
        let v: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin())
            .collect();
        assert!(autocorrelation(&v, 16) > 0.99);
        assert!(autocorrelation(&v, 8) < -0.99);
        assert_eq!(autocorrelation(&v, 0), 0.0);
        assert_eq!(autocorrelation(&v, 500), 0.0);
    }

    #[test]
    fn roughness_separates_smooth_from_noise() {
        let smooth: Vec<f64> = (0..512).map(|i| (i as f64 * 0.05).sin()).collect();
        // A deterministic "white-ish" sequence.
        let rough: Vec<f64> = (0..512)
            .map(|i| (((i as u64 * 2654435761) % 1000) as f64) / 500.0)
            .collect();
        let s = summarize(&smooth);
        let r = summarize(&rough);
        assert!(s.roughness < 0.05, "{}", s.roughness);
        assert!(r.roughness > 1.0, "{}", r.roughness);
    }

    #[test]
    fn summary_extremes() {
        let s = summarize(&[3.0, -1.0, 4.0, 1.0]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn generator_structure_checks() {
        // The generators' signature properties, via the shared stats.
        let w = crate::weather(11, 4096);
        assert!(
            correlation(&w.signals[0], &w.signals[1]) > 0.85,
            "temp/dewpoint"
        );
        let p = crate::phone(11, 2048, 128);
        assert!(
            autocorrelation(&p.signals[1], 128) > 0.5,
            "diurnal phone cycle"
        );
        let s = crate::stock(11, 4, 2048);
        let sm = summarize(&s.signals[0]);
        let wm = summarize(&w.signals[0]);
        assert!(
            sm.roughness > wm.roughness,
            "trades rougher than temperature"
        );
    }
}
