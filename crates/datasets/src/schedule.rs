//! Multi-rate sampling schedules.
//!
//! §3.2 of the paper assumes, for notation only, that all quantities share
//! one sampling frequency, noting that *"our framework also applies when
//! each quantity is recorded on a different schedule"*. This module makes
//! that concrete: align signals recorded at different periods onto the
//! common (finest) clock so they can form the `N × M` matrix the encoder
//! consumes, and thin them back out after reconstruction.

/// How an alignment fills the gaps of a slow signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// Repeat the last recorded value (zero-order hold) — what a real
    /// sensor register does between reads.
    Hold,
    /// Linearly interpolate between consecutive readings.
    Linear,
}

/// A signal together with its sampling period (in base ticks).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledSignal {
    /// The recorded values, one per `period` ticks.
    pub values: Vec<f64>,
    /// Ticks between consecutive samples (≥ 1).
    pub period: usize,
}

impl ScheduledSignal {
    /// Construct; panics on a zero period.
    pub fn new(values: Vec<f64>, period: usize) -> Self {
        assert!(period >= 1, "period must be at least 1 tick");
        ScheduledSignal { values, period }
    }

    /// Ticks covered by this signal (`len × period`).
    pub fn ticks(&self) -> usize {
        self.values.len() * self.period
    }
}

/// Expand one scheduled signal onto the tick clock over `[0, ticks)`.
pub fn expand(signal: &ScheduledSignal, ticks: usize, fill: Fill) -> Vec<f64> {
    assert!(!signal.values.is_empty(), "cannot expand an empty signal");
    let p = signal.period;
    (0..ticks)
        .map(|t| {
            let idx = t / p;
            let last = signal.values.len() - 1;
            match fill {
                Fill::Hold => signal.values[idx.min(last)],
                Fill::Linear => {
                    if idx >= last {
                        signal.values[last]
                    } else {
                        let frac = (t % p) as f64 / p as f64;
                        signal.values[idx] * (1.0 - frac) + signal.values[idx + 1] * frac
                    }
                }
            }
        })
        .collect()
}

/// Align differently-scheduled signals into the encoder's `N × M` matrix:
/// all rows expanded onto the finest common clock, truncated to the
/// shortest coverage.
///
/// Returns the rows plus the tick count `M`.
///
/// ```
/// use sbr_datasets::schedule::{align, Fill, ScheduledSignal};
/// let fast = ScheduledSignal::new(vec![0.0, 1.0, 2.0, 3.0], 1);
/// let slow = ScheduledSignal::new(vec![10.0, 30.0], 2);
/// let (rows, m) = align(&[fast, slow], Fill::Linear);
/// assert_eq!(m, 4);
/// assert_eq!(rows[1], vec![10.0, 20.0, 30.0, 30.0]);
/// ```
pub fn align(signals: &[ScheduledSignal], fill: Fill) -> (Vec<Vec<f64>>, usize) {
    assert!(!signals.is_empty(), "need at least one signal");
    let ticks = signals
        .iter()
        .map(ScheduledSignal::ticks)
        .min()
        .expect("non-empty");
    let rows = signals.iter().map(|s| expand(s, ticks, fill)).collect();
    (rows, ticks)
}

/// Thin an expanded (or reconstructed) row back to its native schedule:
/// take every `period`-th tick.
pub fn thin(expanded: &[f64], period: usize) -> Vec<f64> {
    assert!(period >= 1);
    expanded.iter().step_by(period).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_repeats_values() {
        let s = ScheduledSignal::new(vec![1.0, 5.0, 9.0], 3);
        let e = expand(&s, 9, Fill::Hold);
        assert_eq!(e, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn linear_interpolates_between_readings() {
        let s = ScheduledSignal::new(vec![0.0, 3.0], 3);
        let e = expand(&s, 6, Fill::Linear);
        assert_eq!(e[..4], [0.0, 1.0, 2.0, 3.0]);
        // Past the last reading: hold.
        assert_eq!(e[4], 3.0);
    }

    #[test]
    fn period_one_is_identity() {
        let v = vec![2.0, -1.0, 4.0];
        let s = ScheduledSignal::new(v.clone(), 1);
        assert_eq!(expand(&s, 3, Fill::Hold), v);
        assert_eq!(expand(&s, 3, Fill::Linear), v);
    }

    #[test]
    fn align_truncates_to_shortest_coverage() {
        let fast = ScheduledSignal::new((0..10).map(|i| i as f64).collect(), 1); // 10 ticks
        let slow = ScheduledSignal::new(vec![100.0, 200.0], 4); // 8 ticks
        let (rows, m) = align(&[fast, slow], Fill::Hold);
        assert_eq!(m, 8);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 8);
        assert_eq!(
            rows[1],
            vec![100.0; 4]
                .into_iter()
                .chain(vec![200.0; 4])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn thin_inverts_hold_expansion() {
        let s = ScheduledSignal::new(vec![3.0, 1.0, 4.0, 1.0], 5);
        let e = expand(&s, 20, Fill::Hold);
        assert_eq!(thin(&e, 5), s.values);
    }

    #[test]
    fn aligned_rows_feed_the_encoder() {
        // End-to-end shape check with two schedules: the matrix is valid
        // SBR input.
        let fast = ScheduledSignal::new((0..64).map(|i| (i as f64 * 0.3).sin()).collect(), 1);
        let slow = ScheduledSignal::new((0..16).map(|i| i as f64).collect(), 4);
        let (rows, m) = align(&[fast, slow], Fill::Linear);
        assert_eq!(m, 64);
        assert!(rows.iter().all(|r| r.len() == 64));
    }
}
