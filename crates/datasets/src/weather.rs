//! Synthetic weather-station feed: the six quantities of the University of
//! Washington station used in the paper (air temperature, dew point, wind
//! speed, wind peak, solar irradiance, relative humidity), sampled over a
//! year with physically plausible couplings:
//!
//! * dew point tracks temperature minus a humidity-dependent spread,
//! * relative humidity is anti-correlated with the diurnal temperature
//!   swing,
//! * wind peak is a gusty envelope over wind speed,
//! * solar irradiance is a day-clipped bell modulated by cloud cover,
//!   and clouds simultaneously damp the temperature swing.
//!
//! These couplings are exactly the cross-signal linear correlations SBR's
//! base signal exploits (the paper's Table 5 shows `GetBase` helping most
//! on this dataset).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::{normal, Ar1};
use crate::Dataset;

/// Samples per synthetic day (the station reports every ~10 minutes; we
/// default to 144/day scaled into the requested length).
const SAMPLES_PER_DAY: f64 = 144.0;

/// Generate `len` samples of the six quantities.
pub fn weather(seed: u64, len: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151_5151_dead_beef);
    let mut cloud = Ar1::new(0.995, 0.02); // slow synoptic cloud systems
    let mut wind_base = Ar1::new(0.99, 0.12);
    let mut temp_noise = Ar1::new(0.97, 0.05);

    let mut temperature = Vec::with_capacity(len);
    let mut dewpoint = Vec::with_capacity(len);
    let mut wind_speed = Vec::with_capacity(len);
    let mut wind_peak = Vec::with_capacity(len);
    let mut solar = Vec::with_capacity(len);
    let mut humidity = Vec::with_capacity(len);

    for t in 0..len {
        let day_frac = (t as f64 / SAMPLES_PER_DAY).fract();
        let season = 2.0 * std::f64::consts::PI * (t as f64 / (SAMPLES_PER_DAY * 365.0));
        let cloudiness = (0.5 + cloud.step(&mut rng)).clamp(0.0, 1.0);

        // Solar elevation proxy: positive half of a sine centred at noon.
        let sun = (std::f64::consts::PI * (day_frac - 0.25) * 2.0)
            .sin()
            .max(0.0);
        let irradiance = 900.0 * sun * (1.0 - 0.8 * cloudiness);

        // Temperature: seasonal base + diurnal swing damped by clouds.
        let seasonal = 11.0 - 7.0 * season.cos(); // °C, Seattle-ish
        let swing = 5.5 * (1.0 - 0.6 * cloudiness);
        let temp = seasonal
            + swing * (2.0 * std::f64::consts::PI * (day_frac - 0.417)).sin()
            + temp_noise.step(&mut rng);

        // Humidity: high at night/clouds, low mid-afternoon.
        let rh = (78.0 - 18.0 * sun * (1.0 - cloudiness) + normal(&mut rng, 0.0, 1.5))
            .clamp(15.0, 100.0);

        // Dew point from temperature and humidity (Magnus-style spread).
        let dp = temp - (100.0 - rh) / 5.0 + normal(&mut rng, 0.0, 0.3);

        // Wind: mean-reverting base, stronger when fronts (clouds) pass.
        let ws = (3.0 + 4.0 * cloudiness + wind_base.step(&mut rng)).max(0.0);
        let gust = ws * (1.25 + 0.35 * rng_abs(&mut rng));
        temperature.push(temp);
        dewpoint.push(dp);
        wind_speed.push(ws);
        wind_peak.push(gust);
        solar.push(irradiance.max(0.0));
        humidity.push(rh);
    }

    Dataset {
        name: "Weather",
        signal_names: [
            "air_temperature",
            "dewpoint",
            "wind_speed",
            "wind_peak",
            "solar_irradiance",
            "relative_humidity",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect(),
        signals: vec![
            temperature,
            dewpoint,
            wind_speed,
            wind_peak,
            solar,
            humidity,
        ],
    }
}

fn rng_abs(rng: &mut StdRng) -> f64 {
    normal(rng, 0.0, 1.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        num / (da * db).sqrt()
    }

    #[test]
    fn dewpoint_tracks_temperature() {
        let d = weather(0, 8192);
        let rho = corr(&d.signals[0], &d.signals[1]);
        assert!(rho > 0.85, "temp/dewpoint correlation {rho}");
    }

    #[test]
    fn wind_peak_bounds_wind_speed() {
        let d = weather(1, 4096);
        for (s, p) in d.signals[2].iter().zip(&d.signals[3]) {
            assert!(p >= s, "gust {p} below sustained wind {s}");
        }
    }

    #[test]
    fn solar_is_nonnegative_and_dark_at_night() {
        let d = weather(2, 4096);
        let s = &d.signals[4];
        assert!(s.iter().all(|&v| v >= 0.0));
        let zeros = s.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros as f64 > 0.3 * s.len() as f64,
            "nights must be dark ({zeros} zero samples)"
        );
    }

    #[test]
    fn humidity_within_physical_bounds() {
        let d = weather(3, 4096);
        assert!(d.signals[5].iter().all(|&v| (15.0..=100.0).contains(&v)));
    }

    #[test]
    fn humidity_anticorrelates_with_solar() {
        let d = weather(4, 8192);
        let rho = corr(&d.signals[4], &d.signals[5]);
        assert!(
            rho < -0.3,
            "solar/humidity correlation {rho} should be negative"
        );
    }
}
