//! The mixed dataset of §5.1.2: three phone states (AZ, CA, FL), three
//! weather quantities (air temperature, pressure-proxy*, solar irradiance)
//! and three stocks (MSFT, INTC, ORCL), concatenated into one 9-signal
//! batch with deliberately weak cross-domain correlation.
//!
//! *The paper lists "pressure" here although the weather dataset
//! description lists dew point instead; we use dew point, the quantity the
//! generator actually produces — the experiment only needs three weather
//! signals of different character.

use crate::{phone, stock, weather, Dataset};

/// Generate the 9-signal mixed dataset, `len` samples per signal.
pub fn mixed(seed: u64, len: usize) -> Dataset {
    let p = phone(seed, len, 256);
    let w = weather(seed.wrapping_add(1), len);
    let s = stock(seed.wrapping_add(2), 3, len);

    let mut signals = Vec::with_capacity(9);
    let mut names = Vec::with_capacity(9);
    // AZ, CA, FL are phone indices 0, 1, 4.
    for &i in &[0usize, 1, 4] {
        signals.push(p.signals[i].clone());
        names.push(format!("phone_{}", p.signal_names[i]));
    }
    // Air temperature, dew point, solar irradiance are weather 0, 1, 4.
    for &i in &[0usize, 1, 4] {
        signals.push(w.signals[i].clone());
        names.push(format!("weather_{}", w.signal_names[i]));
    }
    for i in 0..3 {
        signals.push(s.signals[i].clone());
        names.push(format!("stock_{}", s.signal_names[i]));
    }
    Dataset {
        name: "Mixed",
        signal_names: names,
        signals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_signals_from_three_domains() {
        let d = mixed(0, 512);
        assert_eq!(d.n_signals(), 9);
        assert!(d.signal_names[0].starts_with("phone_"));
        assert!(d.signal_names[3].starts_with("weather_"));
        assert!(d.signal_names[6].starts_with("stock_"));
        assert_eq!(d.len(), 512);
    }

    #[test]
    fn domains_live_on_different_scales() {
        let d = mixed(1, 2048);
        let mean = |s: &Vec<f64>| s.iter().map(|v| v.abs()).sum::<f64>() / s.len() as f64;
        let phone_scale = mean(&d.signals[1]); // CA calls: thousands
        let weather_scale = mean(&d.signals[3]); // temperature: tens
        assert!(
            phone_scale > 20.0 * weather_scale,
            "scale contrast lost: {phone_scale} vs {weather_scale}"
        );
    }
}
