//! The motivating example of Figures 2–3: two strongly correlated market
//! indexes ("Industrial" and "Insurance") over 128 consecutive days.
//!
//! The Insurance series is an affine image of the Industrial series plus a
//! small idiosyncratic term, so an XY scatter of the pair hugs a straight
//! line — exactly the picture the paper opens with.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::{normal, standard_normal};
use crate::Dataset;

/// Generate `days` daily closes of the two indexes.
pub fn indexes(seed: u64, days: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1d1d_1d1d_abcd_ef01);
    let mut industrial: f64 = 10_500.0;
    let mut ind = Vec::with_capacity(days);
    let mut ins = Vec::with_capacity(days);
    for t in 0..days {
        // A trending random walk with a mid-window regime change, so the
        // series is visibly non-linear in time (Figure 2's point: the
        // series themselves are poor fits for a single line over *time*).
        let drift = if t < days / 2 { 26.0 } else { -18.0 };
        industrial += drift + standard_normal(&mut rng) * 35.0;
        ind.push(industrial);
        // Insurance ≈ a·Industrial + b with small idiosyncratic noise.
        ins.push(0.62 * industrial + 1_150.0 + normal(&mut rng, 0.0, 28.0));
    }
    Dataset {
        name: "Indexes",
        signal_names: vec!["Industrial".into(), "Insurance".into()],
        signals: vec![ind, ins],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_strongly_correlated() {
        let d = indexes(0, 128);
        let (a, b) = (&d.signals[0], &d.signals[1]);
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        let rho = num / (da * db).sqrt();
        assert!(rho > 0.97, "index correlation {rho}");
    }

    #[test]
    fn neither_series_is_linear_in_time() {
        // Fit each against its index and check the residual is substantial
        // relative to a two-piece fit — the regime change guarantees it.
        let d = indexes(1, 128);
        let y = &d.signals[0];
        let f = sse_line_fit(y);
        let half = y.len() / 2;
        let two_piece = sse_line_fit(&y[..half]) + sse_line_fit(&y[half..]);
        assert!(
            f > 2.0 * two_piece,
            "single line {f} vs two-piece {two_piece}"
        );
    }

    fn sse_line_fit(y: &[f64]) -> f64 {
        let n = y.len() as f64;
        let sx = n * (n - 1.0) / 2.0;
        let sxx = n * (n - 1.0) * (2.0 * n - 1.0) / 6.0;
        let sy: f64 = y.iter().sum();
        let sxy: f64 = y.iter().enumerate().map(|(i, v)| i as f64 * v).sum();
        let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let b = (sy - a * sx) / n;
        y.iter()
            .enumerate()
            .map(|(i, v)| (v - (a * i as f64 + b)).powi(2))
            .sum()
    }

    #[test]
    fn shape_is_as_requested() {
        let d = indexes(2, 128);
        assert_eq!(d.n_signals(), 2);
        assert_eq!(d.len(), 128);
    }
}
