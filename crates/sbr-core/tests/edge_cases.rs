//! Public-API edge cases: degenerate shapes, extreme configurations, and
//! the boundaries the paper's pseudocode glosses over.

use sbr_core::{Decoder, ErrorMetric, SbrConfig, SbrEncoder, SbrError};

fn roundtrip(enc: &mut SbrEncoder, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let tx = enc.encode(rows).unwrap();
    Decoder::new().decode(&tx).unwrap()
}

#[test]
fn single_signal_single_batchful() {
    let rows = vec![(0..16).map(|i| i as f64).collect::<Vec<f64>>()];
    let mut enc = SbrEncoder::new(1, 16, SbrConfig::new(8, 8)).unwrap();
    let rec = roundtrip(&mut enc, &rows);
    // A line fits in one fall-back interval: exact.
    for (a, b) in rows[0].iter().zip(&rec[0]) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn tiny_batch_two_samples_per_signal() {
    let rows = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
    let mut enc = SbrEncoder::new(2, 2, SbrConfig::new(8, 4)).unwrap();
    let rec = roundtrip(&mut enc, &rows);
    assert_eq!(rec.len(), 2);
    for (o, r) in rows.iter().zip(&rec) {
        for (a, b) in o.iter().zip(r) {
            assert!((a - b).abs() < 1e-9, "two points always fit a line");
        }
    }
}

#[test]
fn w_override_larger_than_a_row_still_works() {
    // W spans more than one row: no CBIs can be cut from rows shorter than
    // W, so the dictionary stays empty and the fall-back carries the batch.
    let rows: Vec<Vec<f64>> = (0..4).map(|r| vec![r as f64; 8]).collect();
    let cfg = SbrConfig::new(32, 32).with_w(16);
    let mut enc = SbrEncoder::new(4, 8, cfg).unwrap();
    let tx = enc.encode(&rows).unwrap();
    assert!(tx.base_updates.is_empty());
    let rec = Decoder::new().decode(&tx).unwrap();
    for (o, r) in rows.iter().zip(&rec) {
        for (a, b) in o.iter().zip(r) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn minimum_legal_budget_is_exactly_4n() {
    let rows: Vec<Vec<f64>> = (0..3)
        .map(|r| (0..32).map(|i| ((i + r) as f64 * 0.7).sin()).collect())
        .collect();
    assert!(matches!(
        SbrEncoder::new(3, 32, SbrConfig::new(11, 16)),
        Err(SbrError::BudgetTooSmall { .. })
    ));
    let mut enc = SbrEncoder::new(3, 32, SbrConfig::new(12, 16)).unwrap();
    let tx = enc.encode(&rows).unwrap();
    assert_eq!(tx.intervals.len(), 3, "exactly one interval per signal");
    assert!(tx.base_updates.is_empty(), "no bandwidth left for inserts");
}

#[test]
fn budget_larger_than_raw_data_is_harmless() {
    // TotalBand ≫ n: the splitter bottoms out at length-1 intervals and
    // the result is exact.
    let rows = vec![(0..16).map(|i| ((i * 13) % 7) as f64).collect::<Vec<f64>>()];
    let mut enc = SbrEncoder::new(1, 16, SbrConfig::new(10_000, 64)).unwrap();
    let tx = enc.encode(&rows).unwrap();
    let rec = Decoder::new().decode(&tx).unwrap();
    assert_eq!(ErrorMetric::Sse.score(&rows[0], &rec[0]), 0.0);
}

#[test]
fn constant_batches_cost_one_interval_each() {
    let rows: Vec<Vec<f64>> = (0..2).map(|r| vec![r as f64 * 3.0; 64]).collect();
    let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(200, 64)).unwrap();
    let tx = enc.encode(&rows).unwrap();
    assert_eq!(tx.intervals.len(), 2, "constants need no splitting");
    assert_eq!(enc.last_stats().unwrap().total_err, 0.0);
}

#[test]
fn metric_switch_changes_fits_not_protocol() {
    let rows: Vec<Vec<f64>> = vec![(0..64).map(|i| 1000.0 + ((i * 7) % 13) as f64).collect()];
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::relative(),
        ErrorMetric::MaxAbs,
    ] {
        let cfg = SbrConfig::new(40, 32).with_metric(metric);
        let mut enc = SbrEncoder::new(1, 64, cfg).unwrap();
        let tx = enc.encode(&rows).unwrap();
        assert!(tx.cost() <= 40);
        let rec = Decoder::new().decode(&tx).unwrap();
        assert_eq!(rec[0].len(), 64, "{metric:?}");
    }
}

#[test]
fn m_base_zero_works_when_updates_disabled() {
    let cfg = SbrConfig::new(32, 0).frozen_base();
    let mut enc = SbrEncoder::new(1, 64, cfg).unwrap();
    let rows = vec![(0..64)
        .map(|i| (i as f64 * 0.3).sin())
        .collect::<Vec<f64>>()];
    let tx = enc.encode(&rows).unwrap();
    assert!(tx.base_updates.is_empty());
}

#[test]
fn m_base_zero_with_updates_is_equivalent_to_no_inserts() {
    // maxIns = 0, so GetBase is consulted but nothing can be inserted.
    let cfg = SbrConfig::new(32, 0);
    assert!(
        SbrEncoder::new(1, 64, cfg).is_err(),
        "W > M_base is rejected"
    );
}

#[test]
fn many_signals_few_samples() {
    let rows: Vec<Vec<f64>> = (0..16).map(|r| vec![r as f64, r as f64 + 1.0]).collect();
    let mut enc = SbrEncoder::new(16, 2, SbrConfig::new(64, 16)).unwrap();
    let rec = roundtrip(&mut enc, &rows);
    assert_eq!(rec.len(), 16);
}

#[test]
fn stats_survive_error_paths() {
    let mut enc = SbrEncoder::new(2, 32, SbrConfig::new(40, 32)).unwrap();
    let good: Vec<Vec<f64>> = (0..2).map(|r| vec![r as f64; 32]).collect();
    enc.encode(&good).unwrap();
    let stats_before = enc.last_stats();
    // A bad batch: shape mismatch must not clobber the previous stats nor
    // advance the sequence.
    let seq_before = enc.seq();
    assert!(enc.encode(&good[..1]).is_err());
    assert_eq!(enc.last_stats(), stats_before);
    assert_eq!(enc.seq(), seq_before);
    // The stream continues cleanly.
    enc.encode(&good).unwrap();
    assert_eq!(enc.seq(), seq_before + 1);
}

#[test]
fn huge_magnitudes_roundtrip_finite() {
    let rows = vec![
        (0..32)
            .map(|i| 1e15 * ((i % 5) as f64 - 2.0))
            .collect::<Vec<f64>>(),
        (0..32).map(|i| 1e-15 * i as f64).collect(),
    ];
    let mut enc = SbrEncoder::new(2, 32, SbrConfig::new(64, 32)).unwrap();
    let rec = roundtrip(&mut enc, &rows);
    assert!(rec.iter().flatten().all(|v| v.is_finite()));
}
