//! Observability facade for the encode pipeline.
//!
//! With the `obs` feature (on by default) this re-exports the `sbr-obs`
//! handle types and provides [`EncodeObs`], the pre-registered bundle of
//! every pipeline metric, carried inside [`SbrConfig`](crate::SbrConfig)
//! so it reaches `GetBase`/`Search`/`GetIntervals`/`BestMap` through the
//! existing plumbing. With the feature off, this module defines inert
//! mirror types with identical APIs, so instrumentation call sites
//! compile unchanged and cost nothing — no `#[cfg]` scattering in the
//! hot code.
//!
//! Metric names follow the `crate.module.name` convention:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `sbr_core.sbr.encode_ns` | histogram | whole `encode` call |
//! | `sbr_core.get_base.build_ns` | histogram | candidate construction |
//! | `sbr_core.get_base.matrix_cells` | gauge | `K×K` benefit-matrix size |
//! | `sbr_core.get_base.fit_cache.hits` | counter | pair errors served from the memoized matrix |
//! | `sbr_core.get_base.fit_cache.misses` | counter | pair errors that required a fresh fit |
//! | `sbr_core.get_base.fit_cache.bytes` | gauge | approximate fit-cache footprint after `GetBase` |
//! | `sbr_core.search.run_ns` | histogram | insertion-count search |
//! | `sbr_core.search.probes` | counter | `GetIntervals` probes run |
//! | `sbr_core.search.probe_ns` | histogram | one `Search` probe (`CalculateError`) |
//! | `sbr_core.probe_cache.hits` | counter | probe fits served from a cached entry |
//! | `sbr_core.probe_cache.misses` | counter | probe fits that created a cache entry |
//! | `sbr_core.probe_cache.bytes` | gauge | approximate cache footprint after `Search` |
//! | `sbr_core.get_intervals.run_ns` | histogram | one splitting pass |
//! | `sbr_core.best_map.calls` | counter | interval fits attempted |
//! | `sbr_core.best_map.direct_sweeps` | counter | full SSE sweeps on the direct path |
//! | `sbr_core.best_map.fft_sweeps` | counter | full SSE sweeps on the FFT path |
//! | `sbr_core.best_map.base_direct_sweeps` | counter | base-prefix region sweeps, direct path |
//! | `sbr_core.best_map.base_fft_sweeps` | counter | base-prefix region sweeps, FFT path |
//! | `sbr_core.best_map.cand_direct_sweeps` | counter | candidate region sweeps, direct path |
//! | `sbr_core.best_map.cand_fft_sweeps` | counter | candidate region sweeps, FFT path |
//! | `sbr_core.best_map.fft_reverified_shifts` | counter | shifts exactly re-checked after the FFT filter |
//! | `sbr_core.best_map.f32_prescreen_sweeps` | counter | sweeps ranked by the `f32` pre-screen |
//! | `sbr_core.best_map.f32_reverified_shifts` | counter | shifts exactly re-checked after the `f32` filter |
//! | `sbr_core.best_map.base_wins` | counter | fits won by a base mapping |
//! | `sbr_core.best_map.fallback_wins` | counter | fits won by the linear fall-back |
//! | `sbr_core.base_signal.inserted` | counter | base intervals inserted |
//! | `sbr_core.base_signal.evicted` | counter | LFU slots overwritten |
//! | `sbr_core.base_signal.slots` | gauge | dictionary slots in use |
//! | `sbr_core.sbr.tx_mapped_intervals` | counter | transmitted intervals using the base |
//! | `sbr_core.sbr.tx_fallback_intervals` | counter | transmitted intervals using the fall-back |
//! | `sbr_core.codec.encode_ns` / `decode_ns` | histogram | wire codec |
//! | `sbr_core.codec.resync_frames` | counter | resync frames emitted (overflow or reboot) |
//! | `sbr_core.par.fanouts` | counter | thread fan-outs actually taken |
//! | `sbr_core.par.worker_items` | histogram | items one worker processed |
//! | `sbr_core.par.worker_busy_ns` | histogram | one worker's busy time |
//! | `sbr_core.query.query_ns` | histogram | one compressed-domain range query |
//! | `sbr_core.query.plan_cache.hits` | counter | queries served from a cached plan |
//! | `sbr_core.query.plan_cache.misses` | counter | queries that computed a fresh plan |
//! | `sbr_core.query.intervals_folded` | counter | intervals answered from precomputed moments |
//! | `sbr_core.query.boundary_decodes` | counter | intervals a range split mid-way (partial scan) |
//!
//! [`EncodeObs`] also carries a frame-lifecycle [`Timeline`] (disabled by
//! default; attach with
//! [`SbrConfig::with_timeline`](crate::SbrConfig::with_timeline)). The
//! encoder itself never names frames — the sensor-network layer, which
//! knows the `(node, epoch, seq)` identity, records through this handle
//! so encode-side events share the ring (and its
//! `obs.timeline.dropped_events` overflow counter) with the link and
//! base-station events.

#[cfg(not(feature = "obs"))]
pub use disabled::*;
#[cfg(feature = "obs")]
pub use enabled::*;

#[cfg(feature = "obs")]
mod enabled {
    use std::sync::Arc;

    pub use sbr_obs::{
        Counter, EventKind, FrameId, Gauge, Histogram, MetricsRecorder, NoopRecorder, Recorder,
        Snapshot, Span, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY,
    };

    /// Pre-registered handles for every encode-pipeline metric.
    ///
    /// The default is fully disabled (every operation one branch); attach
    /// a live recorder with
    /// [`SbrConfig::with_recorder`](crate::SbrConfig::with_recorder).
    /// Cloning shares the underlying storage.
    #[derive(Clone, Debug, Default)]
    pub struct EncodeObs {
        recorder: Option<Arc<dyn Recorder>>,
        /// Whole `encode` call.
        pub encode_ns: Histogram,
        /// `GetBase` candidate construction.
        pub get_base_ns: Histogram,
        /// Insertion-count binary search.
        pub search_ns: Histogram,
        /// One `Search` probe (`CalculateError` for one insertion count).
        pub probe_ns: Histogram,
        /// One `GetIntervals` splitting pass.
        pub get_intervals_ns: Histogram,
        /// Wire-codec encode.
        pub codec_encode_ns: Histogram,
        /// Wire-codec decode.
        pub codec_decode_ns: Histogram,
        /// Resync frames emitted (retransmit-buffer overflow or reboot).
        pub resync_frames: Counter,
        /// `BestMap` fits attempted.
        pub best_map_calls: Counter,
        /// Full SSE sweeps evaluated with the direct loop.
        pub direct_sweeps: Counter,
        /// Full SSE sweeps evaluated with the FFT kernel.
        pub fft_sweeps: Counter,
        /// Base-prefix region sweeps evaluated with the direct loop.
        pub base_direct_sweeps: Counter,
        /// Base-prefix region sweeps evaluated with the FFT kernel.
        pub base_fft_sweeps: Counter,
        /// Candidate region sweeps evaluated with the direct loop.
        pub cand_direct_sweeps: Counter,
        /// Candidate region sweeps evaluated with the FFT kernel.
        pub cand_fft_sweeps: Counter,
        /// Shifts exactly re-verified after the FFT filter pass.
        pub fft_reverified: Counter,
        /// Sweeps ranked by the `f32` pre-screen before exact re-verification.
        pub f32_prescreens: Counter,
        /// Shifts exactly re-verified after the `f32` filter pass.
        pub f32_reverified: Counter,
        /// Fits won by a base-signal mapping.
        pub base_wins: Counter,
        /// Fits won by the linear fall-back.
        pub fallback_wins: Counter,
        /// `GetIntervals` probes the insertion search ran.
        pub search_probes: Counter,
        /// Probe-cache fits served from an existing `(start, len)` entry.
        pub cache_hits: Counter,
        /// Probe-cache fits that had to create their `(start, len)` entry.
        pub cache_misses: Counter,
        /// Approximate probe-cache footprint in bytes after `Search`.
        pub cache_bytes: Gauge,
        /// `GetBase` pair errors served from the memoized matrix.
        pub fit_cache_hits: Counter,
        /// `GetBase` pair errors that required a fresh fit.
        pub fit_cache_misses: Counter,
        /// Approximate fit-cache footprint in bytes after `GetBase`.
        pub fit_cache_bytes: Gauge,
        /// Base intervals inserted into the dictionary.
        pub base_inserted: Counter,
        /// Dictionary slots overwritten by LFU eviction.
        pub base_evicted: Counter,
        /// Transmitted intervals mapped onto the base signal.
        pub tx_mapped_intervals: Counter,
        /// Transmitted intervals using the linear fall-back.
        pub tx_fallback_intervals: Counter,
        /// Dictionary slots currently in use.
        pub base_slots: Gauge,
        /// `K×K` benefit-matrix size of the last `GetBase` run.
        pub matrix_cells: Gauge,
        /// Fan-out metrics for `par_map`.
        pub par: ParObs,
        /// Frame-lifecycle event ring (disabled unless attached with
        /// [`SbrConfig::with_timeline`](crate::SbrConfig::with_timeline)).
        pub timeline: Timeline,
    }

    impl EncodeObs {
        /// Register every pipeline metric on `recorder`.
        pub fn new(recorder: Arc<dyn Recorder>) -> Self {
            let r = recorder.as_ref();
            EncodeObs {
                resync_frames: r.counter("sbr_core.codec.resync_frames"),
                encode_ns: r.histogram("sbr_core.sbr.encode_ns"),
                get_base_ns: r.histogram("sbr_core.get_base.build_ns"),
                search_ns: r.histogram("sbr_core.search.run_ns"),
                probe_ns: r.histogram("sbr_core.search.probe_ns"),
                get_intervals_ns: r.histogram("sbr_core.get_intervals.run_ns"),
                codec_encode_ns: r.histogram("sbr_core.codec.encode_ns"),
                codec_decode_ns: r.histogram("sbr_core.codec.decode_ns"),
                best_map_calls: r.counter("sbr_core.best_map.calls"),
                direct_sweeps: r.counter("sbr_core.best_map.direct_sweeps"),
                fft_sweeps: r.counter("sbr_core.best_map.fft_sweeps"),
                base_direct_sweeps: r.counter("sbr_core.best_map.base_direct_sweeps"),
                base_fft_sweeps: r.counter("sbr_core.best_map.base_fft_sweeps"),
                cand_direct_sweeps: r.counter("sbr_core.best_map.cand_direct_sweeps"),
                cand_fft_sweeps: r.counter("sbr_core.best_map.cand_fft_sweeps"),
                fft_reverified: r.counter("sbr_core.best_map.fft_reverified_shifts"),
                f32_prescreens: r.counter("sbr_core.best_map.f32_prescreen_sweeps"),
                f32_reverified: r.counter("sbr_core.best_map.f32_reverified_shifts"),
                base_wins: r.counter("sbr_core.best_map.base_wins"),
                fallback_wins: r.counter("sbr_core.best_map.fallback_wins"),
                search_probes: r.counter("sbr_core.search.probes"),
                cache_hits: r.counter("sbr_core.probe_cache.hits"),
                cache_misses: r.counter("sbr_core.probe_cache.misses"),
                cache_bytes: r.gauge("sbr_core.probe_cache.bytes"),
                fit_cache_hits: r.counter("sbr_core.get_base.fit_cache.hits"),
                fit_cache_misses: r.counter("sbr_core.get_base.fit_cache.misses"),
                fit_cache_bytes: r.gauge("sbr_core.get_base.fit_cache.bytes"),
                base_inserted: r.counter("sbr_core.base_signal.inserted"),
                base_evicted: r.counter("sbr_core.base_signal.evicted"),
                tx_mapped_intervals: r.counter("sbr_core.sbr.tx_mapped_intervals"),
                tx_fallback_intervals: r.counter("sbr_core.sbr.tx_fallback_intervals"),
                base_slots: r.gauge("sbr_core.base_signal.slots"),
                matrix_cells: r.gauge("sbr_core.get_base.matrix_cells"),
                par: ParObs::new(r),
                timeline: Timeline::noop(),
                recorder: Some(recorder),
            }
        }

        /// Share `timeline` with this bundle, so the encode side of the
        /// pipeline records frame-lifecycle events into the same ring as
        /// the network layer.
        pub fn set_timeline(&mut self, timeline: Timeline) {
            self.timeline = timeline;
        }

        /// Whether a live recorder is attached.
        #[inline]
        pub fn enabled(&self) -> bool {
            self.recorder.is_some()
        }

        /// The attached recorder, if any.
        pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
            self.recorder.as_ref()
        }

        /// Start a scoped timer recording into `hist` and tracing through
        /// the attached recorder.
        pub fn span(&self, name: &'static str, hist: &Histogram) -> Span {
            Span::start(name, hist, self.recorder.as_ref())
        }
    }

    /// Pre-registered handles for the compressed-domain query engine
    /// ([`QueryEngine`](crate::query::QueryEngine)).
    ///
    /// The default is fully disabled (every operation one branch); attach
    /// a live recorder by constructing with [`QueryObs::new`].
    #[derive(Clone, Debug, Default)]
    pub struct QueryObs {
        /// One compressed-domain range query end to end.
        pub query_ns: Histogram,
        /// Queries answered from a cached plan.
        pub plan_hits: Counter,
        /// Queries that resolved and cached a fresh plan.
        pub plan_misses: Counter,
        /// Intervals whose contribution came from precomputed moments.
        pub intervals_folded: Counter,
        /// Intervals a range split mid-way: only their covered window is
        /// decoded (scanned), never the whole chunk.
        pub boundary_decodes: Counter,
    }

    impl QueryObs {
        /// Register every query-engine metric on `recorder`.
        pub fn new(r: &dyn Recorder) -> Self {
            QueryObs {
                query_ns: r.histogram("sbr_core.query.query_ns"),
                plan_hits: r.counter("sbr_core.query.plan_cache.hits"),
                plan_misses: r.counter("sbr_core.query.plan_cache.misses"),
                intervals_folded: r.counter("sbr_core.query.intervals_folded"),
                boundary_decodes: r.counter("sbr_core.query.boundary_decodes"),
            }
        }

        /// Whether per-query timing should be collected.
        #[inline]
        pub fn enabled(&self) -> bool {
            self.query_ns.is_enabled()
        }
    }

    /// Per-thread utilization metrics for the `par_map` fan-out.
    #[derive(Clone, Debug, Default)]
    pub struct ParObs {
        /// Fan-outs that actually spawned workers (serial runs excluded).
        pub fanouts: Counter,
        /// Items processed by one worker in one fan-out.
        pub worker_items: Histogram,
        /// One worker's busy time in one fan-out, nanoseconds.
        pub worker_busy_ns: Histogram,
    }

    impl ParObs {
        fn new(r: &dyn Recorder) -> Self {
            ParObs {
                fanouts: r.counter("sbr_core.par.fanouts"),
                worker_items: r.histogram("sbr_core.par.worker_items"),
                worker_busy_ns: r.histogram("sbr_core.par.worker_busy_ns"),
            }
        }

        /// Whether worker timing should be collected.
        #[inline]
        pub fn enabled(&self) -> bool {
            self.worker_busy_ns.is_enabled()
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    //! Inert mirrors of the `sbr-obs` handle types: identical inherent
    //! APIs, every method a no-op the optimizer erases.

    /// Inert counter (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline]
        pub fn inc(&self) {}
        /// No-op.
        #[inline]
        pub fn add(&self, _delta: u64) {}
        /// Always 0.
        #[inline]
        pub fn get(&self) -> u64 {
            0
        }
        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// Inert gauge (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline]
        pub fn set(&self, _v: f64) {}
        /// Always 0.0.
        #[inline]
        pub fn get(&self) -> f64 {
            0.0
        }
        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// Inert histogram (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline]
        pub fn record(&self, _v: u64) {}
        /// Always 0.
        #[inline]
        pub fn count(&self) -> u64 {
            0
        }
        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// Inert scoped timer (the `obs` feature is off).
    #[derive(Debug, Default)]
    pub struct Span;

    impl Span {
        /// A span that does nothing.
        pub fn noop() -> Self {
            Span
        }
    }

    /// Inert frame-lifecycle timeline (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Timeline;

    impl Timeline {
        /// A timeline that does nothing.
        pub fn noop() -> Self {
            Timeline
        }
        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// Inert metric bundle (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct EncodeObs {
        /// Whole `encode` call.
        pub encode_ns: Histogram,
        /// `GetBase` candidate construction.
        pub get_base_ns: Histogram,
        /// Insertion-count binary search.
        pub search_ns: Histogram,
        /// One `Search` probe (`CalculateError` for one insertion count).
        pub probe_ns: Histogram,
        /// One `GetIntervals` splitting pass.
        pub get_intervals_ns: Histogram,
        /// Wire-codec encode.
        pub codec_encode_ns: Histogram,
        /// Wire-codec decode.
        pub codec_decode_ns: Histogram,
        /// Resync frames emitted (retransmit-buffer overflow or reboot).
        pub resync_frames: Counter,
        /// `BestMap` fits attempted.
        pub best_map_calls: Counter,
        /// Full SSE sweeps evaluated with the direct loop.
        pub direct_sweeps: Counter,
        /// Full SSE sweeps evaluated with the FFT kernel.
        pub fft_sweeps: Counter,
        /// Base-prefix region sweeps evaluated with the direct loop.
        pub base_direct_sweeps: Counter,
        /// Base-prefix region sweeps evaluated with the FFT kernel.
        pub base_fft_sweeps: Counter,
        /// Candidate region sweeps evaluated with the direct loop.
        pub cand_direct_sweeps: Counter,
        /// Candidate region sweeps evaluated with the FFT kernel.
        pub cand_fft_sweeps: Counter,
        /// Shifts exactly re-verified after the FFT filter pass.
        pub fft_reverified: Counter,
        /// Sweeps ranked by the `f32` pre-screen before exact re-verification.
        pub f32_prescreens: Counter,
        /// Shifts exactly re-verified after the `f32` filter pass.
        pub f32_reverified: Counter,
        /// Fits won by a base-signal mapping.
        pub base_wins: Counter,
        /// Fits won by the linear fall-back.
        pub fallback_wins: Counter,
        /// `GetIntervals` probes the insertion search ran.
        pub search_probes: Counter,
        /// Probe-cache fits served from an existing `(start, len)` entry.
        pub cache_hits: Counter,
        /// Probe-cache fits that had to create their `(start, len)` entry.
        pub cache_misses: Counter,
        /// Approximate probe-cache footprint in bytes after `Search`.
        pub cache_bytes: Gauge,
        /// `GetBase` pair errors served from the memoized matrix.
        pub fit_cache_hits: Counter,
        /// `GetBase` pair errors that required a fresh fit.
        pub fit_cache_misses: Counter,
        /// Approximate fit-cache footprint in bytes after `GetBase`.
        pub fit_cache_bytes: Gauge,
        /// Base intervals inserted into the dictionary.
        pub base_inserted: Counter,
        /// Dictionary slots overwritten by LFU eviction.
        pub base_evicted: Counter,
        /// Transmitted intervals mapped onto the base signal.
        pub tx_mapped_intervals: Counter,
        /// Transmitted intervals using the linear fall-back.
        pub tx_fallback_intervals: Counter,
        /// Dictionary slots currently in use.
        pub base_slots: Gauge,
        /// `K×K` benefit-matrix size of the last `GetBase` run.
        pub matrix_cells: Gauge,
        /// Fan-out metrics for `par_map`.
        pub par: ParObs,
        /// Inert frame-lifecycle timeline.
        pub timeline: Timeline,
    }

    impl EncodeObs {
        /// Always false.
        #[inline]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        pub fn set_timeline(&mut self, _timeline: Timeline) {}

        /// An inert span.
        #[inline]
        pub fn span(&self, _name: &'static str, _hist: &Histogram) -> Span {
            Span
        }
    }

    /// Inert query-engine metric bundle (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct QueryObs {
        /// One compressed-domain range query end to end.
        pub query_ns: Histogram,
        /// Queries answered from a cached plan.
        pub plan_hits: Counter,
        /// Queries that resolved and cached a fresh plan.
        pub plan_misses: Counter,
        /// Intervals whose contribution came from precomputed moments.
        pub intervals_folded: Counter,
        /// Intervals a range split mid-way (partial scan).
        pub boundary_decodes: Counter,
    }

    impl QueryObs {
        /// Always false.
        #[inline]
        pub fn enabled(&self) -> bool {
            false
        }
    }

    /// Inert fan-out metrics (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct ParObs {
        /// Fan-outs that actually spawned workers.
        pub fanouts: Counter,
        /// Items processed by one worker in one fan-out.
        pub worker_items: Histogram,
        /// One worker's busy time in one fan-out, nanoseconds.
        pub worker_busy_ns: Histogram,
    }

    impl ParObs {
        /// Always false.
        #[inline]
        pub fn enabled(&self) -> bool {
            false
        }
    }
}
