//! `GetIntervals` (Algorithm 3): recursive halving of the data into
//! variable-length intervals, worst interval first.

use std::collections::BinaryHeap;

use crate::best_map::MapContext;
use crate::config::SbrConfig;
use crate::error::{Result, SbrError};
use crate::interval::{Interval, IntervalRecord};
use crate::metric::ErrorMetric;
use crate::series::MultiSeries;

/// Result of the interval-splitting approximation.
#[derive(Debug, Clone)]
pub struct Approximation {
    /// The chosen intervals, sorted by `start`.
    pub intervals: Vec<Interval>,
    /// Batch error under the encoder's metric (sum or max of interval
    /// errors).
    pub total_err: f64,
}

impl Approximation {
    /// Number of bandwidth values the interval records consume.
    pub fn cost(&self) -> usize {
        self.intervals.len() * IntervalRecord::COST
    }

    /// How many intervals landed on each of the `n_signals` rows of `m`
    /// samples — the paper notes `GetIntervals` "decides dynamically how
    /// many intervals it will use to approximate each of the N rows,
    /// allocating more intervals to signals that are harder to approximate
    /// accurately".
    pub fn intervals_per_signal(&self, n_signals: usize, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_signals];
        for iv in &self.intervals {
            counts[(iv.start / m).min(n_signals - 1)] += 1;
        }
        counts
    }
}

/// A source of interval fits for the splitting loop.
///
/// [`get_intervals_with`] is parameterized over this so the recursive
/// halving is shared — not forked — between the plain per-probe evaluation
/// ([`MapContext`] fits against one concrete dictionary) and the `Search`
/// probe cache ([`crate::probe_cache::ProbeOracle`] serves fits assembled
/// from cached per-region sweeps). Implementations must be [`Sync`]: the
/// splitting loop fans fits out over worker threads, and `Search` may
/// evaluate several probes concurrently on top of that.
pub trait FitOracle: Sync {
    /// Fit `interval` in place; `start`/`length` are already set. Must
    /// reproduce [`MapContext::best_map`] against the oracle's dictionary
    /// bit for bit.
    fn fit(&self, interval: &mut Interval);

    /// Length of the dictionary the fits sweep over. Only steers the
    /// thread-fan-out gate (estimated sweep work); never the results.
    fn x_len(&self) -> usize;

    /// Intervals longer than this are never shifted (`2 × W`); with
    /// [`FitOracle::x_len`] this lets the splitting loop skip the fan-out
    /// for children that face no real sweep.
    fn max_shift_len(&self) -> usize;
}

impl FitOracle for MapContext<'_> {
    fn fit(&self, interval: &mut Interval) {
        self.best_map(interval);
    }

    fn x_len(&self) -> usize {
        self.x.len()
    }

    fn max_shift_len(&self) -> usize {
        self.max_shift_len
    }
}

/// Max-heap entry ordered by interval error.
struct HeapItem(Interval);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.err == other.0.err
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.err.total_cmp(&other.0.err)
    }
}

/// Approximate the batch with at most `budget_values / 4` intervals against
/// the flat base signal `x`.
///
/// Follows Algorithm 3: one interval per input row to start, then repeatedly
/// split the interval with the largest error and re-map both halves, until
/// the interval budget is exhausted (or, when `config.error_target` is set,
/// until the batch error reaches the target — the §4.5 combined bound).
///
/// Intervals of length 1 cannot be split; they are frozen and skipped. The
/// paper leaves this implicit, but without the guard the loop would not
/// terminate on pathological budgets.
pub fn get_intervals(
    x: &[f64],
    data: &MultiSeries,
    budget_values: usize,
    w: usize,
    config: &SbrConfig,
) -> Result<Approximation> {
    let ctx = MapContext::new(x, data.flat(), config, w);
    get_intervals_with(&ctx, data, budget_values, config)
}

/// [`get_intervals`] over an arbitrary [`FitOracle`] — the same Algorithm 3
/// splitting loop, with every fit delegated to `oracle`.
pub fn get_intervals_with<O: FitOracle>(
    oracle: &O,
    data: &MultiSeries,
    budget_values: usize,
    config: &SbrConfig,
) -> Result<Approximation> {
    let n_signals = data.n_signals();
    let m = data.samples_per_signal();
    let max_intervals = budget_values / IntervalRecord::COST;
    if max_intervals < n_signals {
        return Err(SbrError::BudgetTooSmall {
            total_band: budget_values,
            required: n_signals * IntervalRecord::COST,
        });
    }

    let _span = config.obs.span(
        "sbr_core.get_intervals.run_ns",
        &config.obs.get_intervals_ns,
    );
    let metric = config.metric;
    let threads = config.resolved_threads();

    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(max_intervals);
    let mut frozen: Vec<Interval> = Vec::new();

    // The per-signal fits are independent; fan them out over the worker
    // pool. `par_map` returns results in index order, so the heap sees the
    // same insertion sequence as the serial loop regardless of thread count.
    for iv in crate::par::par_map(n_signals, threads, &config.obs.par, |i| {
        let mut iv = Interval::unfitted(i * m, m);
        oracle.fit(&mut iv);
        iv
    }) {
        heap.push(HeapItem(iv));
    }

    let mut num_intervals = n_signals;
    while num_intervals < max_intervals {
        if let Some(target) = config.error_target {
            if current_error(metric, &heap, &frozen) <= target {
                break;
            }
        }
        // Pop until a splittable interval surfaces.
        let worst = loop {
            match heap.pop() {
                Some(HeapItem(iv)) if iv.length >= 2 => break Some(iv),
                Some(HeapItem(iv)) => frozen.push(iv),
                None => break None,
            }
        };
        let Some(worst) = worst else { break };
        // lint:allow(float-eq): exact-fit early exit pinned by the differential byte-identity suite
        if worst.err == 0.0 {
            // Everything remaining is already exact; splitting cannot help.
            heap.push(HeapItem(worst));
            break;
        }

        let left_len = worst.length / 2;
        let right_len = worst.length - left_len;
        // Both children refit independently; left is pushed first either
        // way, so the heap state is identical to the serial order. Spawning
        // a thread costs tens of microseconds, so only fan out when the
        // children face a real shift sweep (gate depends on sizes only —
        // never on the thread count — keeping results deterministic).
        let sweep_work = oracle.x_len().saturating_mul(right_len);
        let child_threads = if right_len <= oracle.max_shift_len() && sweep_work >= 1 << 16 {
            threads
        } else {
            1
        };
        for child in crate::par::par_map(2, child_threads, &config.obs.par, |side| {
            let mut iv = if side == 0 {
                Interval::unfitted(worst.start, left_len)
            } else {
                Interval::unfitted(worst.start + left_len, right_len)
            };
            oracle.fit(&mut iv);
            iv
        }) {
            heap.push(HeapItem(child));
        }
        num_intervals += 1;
    }

    let mut intervals: Vec<Interval> = frozen;
    intervals.extend(heap.into_iter().map(|h| h.0));
    intervals.sort_by_key(|iv| iv.start);
    let total_err = metric.combine_all(intervals.iter().map(|iv| iv.err));
    Ok(Approximation {
        intervals,
        total_err,
    })
}

fn current_error(metric: ErrorMetric, heap: &BinaryHeap<HeapItem>, frozen: &[Interval]) -> f64 {
    let a = metric.combine_all(heap.iter().map(|h| h.0.err));
    let b = metric.combine_all(frozen.iter().map(|iv| iv.err));
    metric.combine(a, b)
}

/// Reconstruct the concatenated series from a set of interval records
/// against a flat base signal — the shared decode kernel used by the base
/// station and by error probes. `records` need not be sorted.
pub fn reconstruct_flat(x: &[f64], records: &[IntervalRecord], n_total: usize) -> Result<Vec<f64>> {
    let mut recs: Vec<IntervalRecord> = records.to_vec();
    recs.sort_by_key(|r| r.start);
    if let Some(first) = recs.first() {
        if first.start != 0 {
            return Err(SbrError::Corrupt(format!(
                "records leave [0, {}) uncovered",
                first.start
            )));
        }
    }
    let mut out = vec![0.0f64; n_total];
    for (k, r) in recs.iter().enumerate() {
        let start = r.start as usize;
        let end = if k + 1 < recs.len() {
            recs[k + 1].start as usize
        } else {
            n_total
        };
        if start >= end || end > n_total {
            return Err(SbrError::Corrupt(format!(
                "interval record {k} covers [{start}, {end}) out of {n_total} values"
            )));
        }
        let len = end - start;
        if r.shift < 0 {
            for (i, slot) in out[start..end].iter_mut().enumerate() {
                *slot = r.a * i as f64 + r.b;
            }
        } else {
            let shift = r.shift as usize;
            if shift + len > x.len() {
                return Err(SbrError::Corrupt(format!(
                    "interval record {k} maps to base segment [{shift}, {}) but the \
                     base signal holds {} values",
                    shift + len,
                    x.len()
                )));
            }
            for (slot, &xv) in out[start..end].iter_mut().zip(&x[shift..shift + len]) {
                *slot = r.a * xv + r.b;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_rows(rows).unwrap()
    }

    fn cfg(budget: usize) -> SbrConfig {
        SbrConfig::new(budget, budget)
    }

    #[test]
    fn budget_too_small_is_rejected() {
        let data = series(&[vec![1.0; 8], vec![2.0; 8]]);
        let e = get_intervals(&[], &data, 4, 2, &cfg(4)).unwrap_err();
        assert!(matches!(e, SbrError::BudgetTooSmall { .. }));
    }

    #[test]
    fn respects_interval_budget_exactly() {
        let data = series(&[(0..64).map(|i| (i as f64).sin()).collect()]);
        let approx = get_intervals(&[], &data, 40, 8, &cfg(40)).unwrap();
        assert_eq!(approx.intervals.len(), 10);
        assert!(approx.cost() <= 40);
    }

    #[test]
    fn intervals_partition_the_batch() {
        let data = series(&[
            (0..32).map(|i| (i as f64 * 0.4).cos()).collect(),
            (0..32).map(|i| i as f64).collect(),
        ]);
        let approx = get_intervals(&[], &data, 48, 8, &cfg(48)).unwrap();
        let mut cursor = 0;
        for iv in &approx.intervals {
            assert_eq!(iv.start, cursor);
            cursor += iv.length;
        }
        assert_eq!(cursor, 64);
    }

    #[test]
    fn error_decreases_with_budget() {
        let y: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.2).sin() + (i as f64 * 0.05).cos())
            .collect();
        let data = series(&[y]);
        let lo = get_intervals(&[], &data, 16, 11, &cfg(16)).unwrap();
        let hi = get_intervals(&[], &data, 64, 11, &cfg(64)).unwrap();
        assert!(hi.total_err <= lo.total_err);
    }

    #[test]
    fn exact_data_stops_splitting_early() {
        // A single straight line needs exactly one fall-back interval.
        let y: Vec<f64> = (0..64).map(|i| 2.0 * i as f64).collect();
        let data = series(&[y]);
        let approx = get_intervals(&[], &data, 400, 8, &cfg(400)).unwrap();
        assert_eq!(approx.intervals.len(), 1, "no splits needed on exact fit");
        assert!(approx.total_err < 1e-9);
    }

    #[test]
    fn error_target_stops_early() {
        let y: Vec<f64> = (0..128).map(|i| ((i * i) % 23) as f64).collect();
        let data = series(&[y]);
        let mut config = cfg(512);
        let full = get_intervals(&[], &data, 512, 11, &config).unwrap();
        config.error_target = Some(full.total_err * 100.0);
        let bounded = get_intervals(&[], &data, 512, 11, &config).unwrap();
        assert!(bounded.intervals.len() <= full.intervals.len());
        assert!(bounded.total_err <= full.total_err * 100.0);
    }

    #[test]
    fn length_one_intervals_freeze() {
        // Budget allows more intervals than there are samples: the loop must
        // terminate with all length-1 intervals.
        let data = series(&[vec![5.0, -1.0, 3.0, 9.0]]);
        let approx = get_intervals(&[], &data, 400, 2, &cfg(400)).unwrap();
        assert!(approx.intervals.len() <= 4);
        assert!(approx.total_err < 1e-18);
    }

    #[test]
    fn base_signal_beats_fallback_on_correlated_data() {
        // The data repeats an irregular pattern that a time-index line can't
        // track, but a base holding the pattern can.
        let pattern: Vec<f64> = vec![0.0, 5.0, -3.0, 8.0, 1.0, -6.0, 4.0, 2.0];
        let mut y = Vec::new();
        for rep in 0..8 {
            for &p in &pattern {
                y.push(p * (1.0 + rep as f64 * 0.1) + rep as f64);
            }
        }
        let data = series(&[y]);
        let with_base = get_intervals(&pattern, &data, 32, 8, &cfg(32)).unwrap();
        let without = get_intervals(&[], &data, 32, 8, &cfg(32)).unwrap();
        assert!(with_base.total_err < without.total_err / 10.0);
    }

    #[test]
    fn reconstruct_roundtrips_fallback_lines() {
        // Two rows that are exact lines reconstruct exactly from 2 records.
        let data = series(&[
            (0..16).map(|i| 2.0 * i as f64 + 1.0).collect(),
            (0..16).map(|i| -0.5 * i as f64 + 4.0).collect(),
        ]);
        let approx = get_intervals(&[], &data, 16, 5, &cfg(16)).unwrap();
        let recs: Vec<IntervalRecord> = approx.intervals.iter().map(|iv| iv.record()).collect();
        let rec = reconstruct_flat(&[], &recs, 32).unwrap();
        for (a, b) in rec.iter().zip(data.flat()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstruct_rejects_bad_shift() {
        let recs = [IntervalRecord {
            start: 0,
            shift: 10,
            a: 1.0,
            b: 0.0,
        }];
        assert!(reconstruct_flat(&[0.0; 4], &recs, 8).is_err());
    }

    #[test]
    fn reconstruct_rejects_duplicate_starts() {
        let recs = [
            IntervalRecord {
                start: 3,
                shift: -1,
                a: 0.0,
                b: 0.0,
            },
            IntervalRecord {
                start: 3,
                shift: -1,
                a: 0.0,
                b: 1.0,
            },
        ];
        assert!(reconstruct_flat(&[], &recs, 8).is_err());
    }

    #[test]
    fn harder_signals_get_more_intervals() {
        // Row 0 is a straight line (one interval suffices); row 1 is a
        // dense zig-zag. The splitter must pour its budget into row 1.
        let easy: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let hard: Vec<f64> = (0..128).map(|i| ((i * 37) % 11) as f64 * 5.0).collect();
        let data = series(&[easy, hard]);
        let approx = get_intervals(&[], &data, 80, 16, &cfg(80)).unwrap();
        let per = approx.intervals_per_signal(2, 128);
        assert_eq!(per.iter().sum::<usize>(), approx.intervals.len());
        assert!(
            per[1] >= 5 * per[0].max(1),
            "allocation {per:?} not skewed to the hard signal"
        );
    }

    #[test]
    fn maxabs_metric_combines_with_max() {
        let y: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64).collect();
        let data = series(&[y]);
        let config = SbrConfig::new(32, 32).with_metric(ErrorMetric::MaxAbs);
        let approx = get_intervals(&[], &data, 32, 8, &config).unwrap();
        let worst = approx.intervals.iter().map(|iv| iv.err).fold(0.0, f64::max);
        assert_eq!(approx.total_err, worst);
    }
}
