//! # Self-Based Regression (SBR)
//!
//! Implementation of the compression framework from *"Compressing Historical
//! Information in Sensor Networks"* (Deligiannakis, Kotidis, Roussopoulos,
//! SIGMOD 2004).
//!
//! A sensor collects `N` time series ("quantities") of `M` samples each.
//! When its buffer fills, the batch of `n = N × M` values is compressed to a
//! bandwidth budget of `TotalBand` *values* and shipped to a base station.
//! Compression is driven by a **base signal**: a dictionary of `W`-sample
//! intervals (`W = ⌊√n⌋`) extracted from the data itself. Each data interval
//! is encoded as a linear projection `a·X[shift .. shift+len] + b` of a
//! base-signal segment, with plain linear regression over the time index as a
//! fall-back. The base signal itself evolves across transmissions: new
//! features are inserted greedily ([`get_base`]), the number of insertions is
//! chosen by a binary search balancing dictionary richness against the
//! bandwidth those insertions consume ([`search`]), and stale features are
//! evicted LFU when the dictionary buffer overflows.
//!
//! ## Quick start
//!
//! ```
//! use sbr_core::{SbrConfig, SbrEncoder, Decoder};
//!
//! // Two correlated signals, 64 samples each.
//! let m = 64;
//! let y1: Vec<f64> = (0..m).map(|i| (i as f64 * 0.2).sin()).collect();
//! let y2: Vec<f64> = y1.iter().map(|v| 3.0 * v + 1.0).collect();
//!
//! let config = SbrConfig::new(/*total_band=*/ 40, /*m_base=*/ 32);
//! let mut encoder = SbrEncoder::new(2, m, config.clone()).unwrap();
//! let tx = encoder.encode(&[y1.clone(), y2.clone()]).unwrap();
//! assert!(tx.cost() <= 40);
//!
//! let mut decoder = Decoder::new();
//! let rec = decoder.decode(&tx).unwrap();
//! assert_eq!(rec.len(), 2);
//! assert_eq!(rec[0].len(), m);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod base_signal;
pub mod best_map;
pub mod bounds;
pub mod codec;
pub mod config;
pub mod decoder;
pub mod error;
pub mod fit_cache;
pub mod get_base;
pub mod get_intervals;
pub mod interval;
pub mod metric;
pub mod obs;
pub mod probe_cache;
pub mod quadratic;
pub mod query;
pub mod regression;
pub mod sbr;
pub mod search;
pub mod series;
pub mod transmission;
#[cfg(feature = "wire_profile")]
pub mod wire_profile;
pub mod xcorr;

pub(crate) mod par;

pub use adaptive::{AdaptiveEncoder, Quality, QualityMonitor};
pub use base_signal::BaseSignal;
pub use bounds::{BoundedEncoding, ErrorBoundSpec};
pub use config::{BaseBuilder, SbrConfig, ShiftStrategy};
pub use decoder::Decoder;
pub use error::SbrError;
pub use fit_cache::FitCache;
pub use get_base::{GetBaseBuilder, LowMemoryGetBase};
pub use get_intervals::FitOracle;
pub use interval::{Interval, IntervalRecord};
pub use metric::ErrorMetric;
pub use obs::{EncodeObs, QueryObs};
pub use probe_cache::ProbeCache;
pub use quadratic::QuadFit;
pub use query::{Aggregate, ChunkSummary, ChunkView, FoldCounts, QueryEngine, StreamAggregate};
pub use regression::Fit;
pub use sbr::SbrEncoder;
pub use series::MultiSeries;
pub use transmission::{BaseUpdate, Frame, FrameKind, Transmission};
