//! `GetBase` (Algorithm 4): greedy selection of candidate base intervals by
//! marginal benefit, plus the `O(√n)`-space variant the paper sketches for
//! severely memory-constrained nodes.

use crate::config::BaseBuilder;
use crate::metric::ErrorMetric;
use crate::obs::{EncodeObs, ParObs};
use crate::regression;
use crate::series::MultiSeries;

/// Split the batch into `K = n/W` non-overlapping candidate base intervals
/// (CBIs) of width `w`. A trailing partial window (when `M` is not a
/// multiple of `W`) is ignored, matching the paper's multiples assumption.
pub fn candidate_intervals(data: &MultiSeries, w: usize) -> Vec<&[f64]> {
    let mut cbis = Vec::new();
    for row in data.rows() {
        for chunk in row.chunks_exact(w) {
            cbis.push(chunk);
        }
    }
    cbis
}

/// The paper's main `GetBase`: keeps the full `K×K` error matrix
/// (`O(n)` floats for `W = √n`) and re-adjusts marginal benefits after every
/// selection.
///
/// The benefit of candidate `i` is `Σ_j max(0, bestErr(j) − err(i→j))`,
/// where `bestErr(j)` starts at the plain linear-regression error of `j` and
/// shrinks as selected candidates cover `j` better. This is the adjustment
/// of Figure 4: once a feature is stored, near-duplicates lose their value.
///
/// ```
/// use sbr_core::{get_base::get_base, ErrorMetric, MultiSeries};
/// // A wiggle repeated with different scales: one dictionary entry
/// // explains everything.
/// let p: Vec<f64> = (0..8).map(|i| (i as f64 * 1.3).sin() * 5.0).collect();
/// let mut row = p.clone();
/// row.extend(p.iter().map(|v| 3.0 * v - 2.0));
/// let data = MultiSeries::from_rows(&[row]).unwrap();
/// let base = get_base(&data, 8, 1, ErrorMetric::Sse);
/// assert_eq!(base.len(), 1);
/// assert_eq!(base[0].len(), 8);
/// ```
pub fn get_base(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
) -> Vec<Vec<f64>> {
    get_base_threaded(data, w, max_ins, metric, 1)
}

/// [`get_base`] with the `K×K` error matrix built row-parallel on up to
/// `threads` scoped worker threads (`<= 1` = serial). Rows are independent
/// and merged in index order, so every thread count returns identical
/// output.
pub fn get_base_threaded(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
) -> Vec<Vec<f64>> {
    get_base_with_obs(data, w, max_ins, metric, threads, &ParObs::default())
}

/// [`get_base_threaded`] with fan-out observability: worker utilization of
/// the error-matrix build is reported through `obs` when a live recorder
/// is attached. Output is identical to the uninstrumented call.
pub fn get_base_with_obs(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
    obs: &ParObs,
) -> Vec<Vec<f64>> {
    let cbis = candidate_intervals(data, w);
    let k = cbis.len();
    if k == 0 || max_ins == 0 {
        return Vec::new();
    }

    // err[i*k + j]: error of approximating CBI j using CBI i as base.
    let mut best_err: Vec<f64> = cbis
        .iter()
        .map(|c| regression::fit_linear(metric, c).err)
        .collect();
    let err: Vec<f64> = crate::par::par_map(k, threads, obs, |i| {
        let mut row = Vec::with_capacity(k);
        for j in 0..k {
            row.push(if i == j {
                0.0
            } else {
                regression::fit(metric, cbis[i], cbis[j]).err
            });
        }
        row
    })
    .into_iter()
    .flatten()
    .collect();

    let mut selected_flags = vec![false; k];
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(max_ins.min(k));
    for _ in 0..max_ins.min(k) {
        // Benefit of each unselected candidate against the *current* best
        // coverage.
        let mut best_i = None;
        let mut best_benefit = 0.0f64;
        for i in 0..k {
            if selected_flags[i] {
                continue;
            }
            let mut benefit = 0.0;
            for j in 0..k {
                let e = err[i * k + j];
                if e < best_err[j] {
                    benefit += best_err[j] - e;
                }
            }
            if best_i.is_none() || benefit > best_benefit {
                best_i = Some(i);
                best_benefit = benefit;
            }
        }
        let Some(c) = best_i else { break };
        selected_flags[c] = true;
        selected.push(cbis[c].to_vec());
        for j in 0..k {
            let e = err[c * k + j];
            if e < best_err[j] {
                best_err[j] = e;
            }
        }
    }
    selected
}

/// The `O(√n)`-space variant: no error matrix; each greedy step recomputes
/// pairwise errors on the fly (`O(maxIns · n^1.5)` time, as derived in
/// §4.2).
pub fn get_base_low_memory(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
) -> Vec<Vec<f64>> {
    get_base_low_memory_threaded(data, w, max_ins, metric, 1)
}

/// [`get_base_low_memory`] with each greedy step's per-candidate benefit
/// scan fanned out over up to `threads` worker threads. The arg-max over
/// the gathered benefits runs serially with the same earliest-index
/// tie-break as the serial loop, so output is identical for every thread
/// count.
pub fn get_base_low_memory_threaded(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
) -> Vec<Vec<f64>> {
    get_base_low_memory_with_obs(data, w, max_ins, metric, threads, &ParObs::default())
}

/// [`get_base_low_memory_threaded`] with fan-out observability, mirroring
/// [`get_base_with_obs`].
pub fn get_base_low_memory_with_obs(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
    obs: &ParObs,
) -> Vec<Vec<f64>> {
    let cbis = candidate_intervals(data, w);
    let k = cbis.len();
    if k == 0 || max_ins == 0 {
        return Vec::new();
    }

    let mut best_err: Vec<f64> = cbis
        .iter()
        .map(|c| regression::fit_linear(metric, c).err)
        .collect();
    let mut selected_flags = vec![false; k];
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(max_ins.min(k));

    for _ in 0..max_ins.min(k) {
        let benefits = crate::par::par_map(k, threads, obs, |i| {
            if selected_flags[i] {
                return f64::NEG_INFINITY;
            }
            let mut benefit = 0.0;
            for j in 0..k {
                let e = if i == j {
                    0.0
                } else {
                    regression::fit(metric, cbis[i], cbis[j]).err
                };
                if e < best_err[j] {
                    benefit += best_err[j] - e;
                }
            }
            benefit
        });
        let mut best_i = None;
        let mut best_benefit = 0.0f64;
        for (i, &benefit) in benefits.iter().enumerate() {
            if selected_flags[i] {
                continue;
            }
            if best_i.is_none() || benefit > best_benefit {
                best_i = Some(i);
                best_benefit = benefit;
            }
        }
        let Some(c) = best_i else { break };
        selected_flags[c] = true;
        selected.push(cbis[c].to_vec());
        for j in 0..k {
            let e = if c == j {
                0.0
            } else {
                regression::fit(metric, cbis[c], cbis[j]).err
            };
            if e < best_err[j] {
                best_err[j] = e;
            }
        }
    }
    selected
}

/// [`BaseBuilder`] wrapping [`get_base`] — the default construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct GetBaseBuilder;

impl BaseBuilder for GetBaseBuilder {
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        get_base(data, w, max_ins, metric)
    }

    fn build_threaded(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        get_base_threaded(data, w, max_ins, metric, threads)
    }

    fn build_with_obs(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
    ) -> Vec<Vec<f64>> {
        get_base_with_obs(data, w, max_ins, metric, threads, &obs.par)
    }
}

/// [`BaseBuilder`] wrapping [`get_base_low_memory`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LowMemoryGetBase;

impl BaseBuilder for LowMemoryGetBase {
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory(data, w, max_ins, metric)
    }

    fn build_threaded(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory_threaded(data, w, max_ins, metric, threads)
    }

    fn build_with_obs(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory_with_obs(data, w, max_ins, metric, threads, &obs.par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_rows(rows).unwrap()
    }

    /// A wiggly pattern no straight line approximates well.
    fn wiggle(seed: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 1.3 + seed).sin() * 5.0 + (i as f64 * 0.7).cos() * 3.0)
            .collect()
    }

    #[test]
    fn candidates_cover_full_windows_only() {
        let data = series(&[vec![0.0; 10], vec![0.0; 10]]);
        let cbis = candidate_intervals(&data, 4);
        assert_eq!(cbis.len(), 4); // 2 per row, trailing 2 samples dropped
        for c in cbis {
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn picks_the_shared_pattern() {
        // Rows = affine images of one wiggle + one pure line. The wiggle
        // window must be chosen first: it explains all wiggle windows, while
        // the line windows are already perfect under the fall-back.
        let p = wiggle(0.0, 8);
        let row1: Vec<f64> = p.iter().map(|v| 2.0 * v + 1.0).collect();
        let row2: Vec<f64> = p.iter().map(|v| -v + 3.0).collect();
        let line: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let data = series(&[row1.clone(), row2, line]);
        let base = get_base(&data, 8, 1, ErrorMetric::Sse);
        assert_eq!(base.len(), 1);
        // The selected interval must be one of the wiggle images (they all
        // explain each other exactly), not the line.
        let f = regression::fit_sse(&base[0], &row1);
        assert!(f.err < 1e-9, "selected base must explain the wiggles");
    }

    #[test]
    fn adjustment_avoids_near_duplicates() {
        // Two distinct wiggles, two windows each. With maxIns = 2 the greedy
        // must pick one window of *each* wiggle, not two of the same.
        let w1 = wiggle(0.0, 8);
        let w2: Vec<f64> = (0..8).map(|i| ((i * i) as f64 * 0.9).sin() * 4.0).collect();
        let mut row1 = w1.clone();
        row1.extend(w1.iter().map(|v| 3.0 * v - 2.0));
        let mut row2 = w2.clone();
        row2.extend(w2.iter().map(|v| -2.0 * v + 1.0));
        let data = series(&[row1, row2]);
        let base = get_base(&data, 8, 2, ErrorMetric::Sse);
        assert_eq!(base.len(), 2);
        let explains_w1 = regression::fit_sse(&base[0], &w1).err < 1e-9
            || regression::fit_sse(&base[1], &w1).err < 1e-9;
        let explains_w2 = regression::fit_sse(&base[0], &w2).err < 1e-9
            || regression::fit_sse(&base[1], &w2).err < 1e-9;
        assert!(explains_w1 && explains_w2);
    }

    #[test]
    fn low_memory_variant_matches_full_variant() {
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..32)
                    .map(|i| ((i + r * 7) as f64 * 0.8).sin() * (r + 1) as f64 + i as f64 * 0.1)
                    .collect()
            })
            .collect();
        let data = series(&rows);
        let a = get_base(&data, 8, 3, ErrorMetric::Sse);
        let b = get_base_low_memory(&data, 8, 3, ErrorMetric::Sse);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_max_ins_returns_nothing() {
        let data = series(&[wiggle(1.0, 16)]);
        assert!(get_base(&data, 4, 0, ErrorMetric::Sse).is_empty());
    }

    #[test]
    fn perfectly_linear_data_yields_zero_benefit_but_still_selects() {
        // All windows are lines: every benefit is 0; the greedy still
        // returns maxIns intervals (Algorithm 4 always pops maxIns times).
        // The SBR Search step is what rejects useless insertions.
        let line: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let data = series(&[line]);
        let base = get_base(&data, 4, 2, ErrorMetric::Sse);
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn works_under_relative_metric() {
        let p = wiggle(2.0, 8);
        let row: Vec<f64> = p.iter().map(|v| 100.0 + 10.0 * v).collect();
        let data = series(&[row]);
        let base = get_base(&data, 8, 1, ErrorMetric::relative());
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn builder_trait_objects_dispatch() {
        use crate::config::BaseBuilder as _;
        let data = series(&[wiggle(0.5, 16)]);
        let full = GetBaseBuilder.build(&data, 4, 2, ErrorMetric::Sse);
        let low = LowMemoryGetBase.build(&data, 4, 2, ErrorMetric::Sse);
        assert_eq!(full, low);
    }
}
