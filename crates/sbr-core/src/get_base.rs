//! `GetBase` (Algorithm 4): greedy selection of candidate base intervals by
//! marginal benefit, plus the `O(√n)`-space variant the paper sketches for
//! severely memory-constrained nodes.

use crate::config::BaseBuilder;
use crate::fit_cache::FitCache;
use crate::metric::ErrorMetric;
use crate::obs::{EncodeObs, ParObs};
use crate::regression;
use crate::series::MultiSeries;

/// Fresh matrix cells fit per blocked `Σx·y` pass in the cached build:
/// 8 independent accumulator chains hide the FP-add latency that bounds a
/// single-accumulator pass (same trick as `xcorr::DOT_BLOCK`, applied
/// across *pairs* instead of shifts).
const PAIR_BLOCK: usize = 8;

/// Split the batch into `K = n/W` non-overlapping candidate base intervals
/// (CBIs) of width `w`. A trailing partial window (when `M` is not a
/// multiple of `W`) is ignored, matching the paper's multiples assumption.
pub fn candidate_intervals(data: &MultiSeries, w: usize) -> Vec<&[f64]> {
    let mut cbis = Vec::new();
    for row in data.rows() {
        for chunk in row.chunks_exact(w) {
            cbis.push(chunk);
        }
    }
    cbis
}

/// The paper's main `GetBase`: keeps the full `K×K` error matrix
/// (`O(n)` floats for `W = √n`) and re-adjusts marginal benefits after every
/// selection.
///
/// The benefit of candidate `i` is `Σ_j max(0, bestErr(j) − err(i→j))`,
/// where `bestErr(j)` starts at the plain linear-regression error of `j` and
/// shrinks as selected candidates cover `j` better. This is the adjustment
/// of Figure 4: once a feature is stored, near-duplicates lose their value.
///
/// ```
/// use sbr_core::{get_base::get_base, ErrorMetric, MultiSeries};
/// // A wiggle repeated with different scales: one dictionary entry
/// // explains everything.
/// let p: Vec<f64> = (0..8).map(|i| (i as f64 * 1.3).sin() * 5.0).collect();
/// let mut row = p.clone();
/// row.extend(p.iter().map(|v| 3.0 * v - 2.0));
/// let data = MultiSeries::from_rows(&[row]).unwrap();
/// let base = get_base(&data, 8, 1, ErrorMetric::Sse);
/// assert_eq!(base.len(), 1);
/// assert_eq!(base[0].len(), 8);
/// ```
pub fn get_base(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
) -> Vec<Vec<f64>> {
    get_base_threaded(data, w, max_ins, metric, 1)
}

/// [`get_base`] with the `K×K` error matrix built row-parallel on up to
/// `threads` scoped worker threads (`<= 1` = serial). Rows are independent
/// and merged in index order, so every thread count returns identical
/// output.
pub fn get_base_threaded(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
) -> Vec<Vec<f64>> {
    get_base_with_obs(data, w, max_ins, metric, threads, &ParObs::default())
}

/// [`get_base_threaded`] with fan-out observability: worker utilization of
/// the error-matrix build is reported through `obs` when a live recorder
/// is attached. Output is identical to the uninstrumented call.
pub fn get_base_with_obs(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
    obs: &ParObs,
) -> Vec<Vec<f64>> {
    let cbis = candidate_intervals(data, w);
    let k = cbis.len();
    if k == 0 || max_ins == 0 {
        return Vec::new();
    }

    // err[i*k + j]: error of approximating CBI j using CBI i as base.
    let mut best_err: Vec<f64> = cbis
        .iter()
        .map(|c| regression::fit_linear(metric, c).err)
        .collect();
    let err: Vec<f64> = crate::par::par_map(k, threads, obs, |i| {
        let mut row = Vec::with_capacity(k);
        for j in 0..k {
            row.push(if i == j {
                0.0
            } else {
                regression::fit(metric, cbis[i], cbis[j]).err
            });
        }
        row
    })
    .into_iter()
    .flatten()
    .collect();

    let mut selected_flags = vec![false; k];
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(max_ins.min(k));
    for _ in 0..max_ins.min(k) {
        // Benefit of each unselected candidate against the *current* best
        // coverage.
        let mut best_i = None;
        let mut best_benefit = 0.0f64;
        for i in 0..k {
            if selected_flags[i] {
                continue;
            }
            let mut benefit = 0.0;
            for j in 0..k {
                let e = err[i * k + j];
                if e < best_err[j] {
                    benefit += best_err[j] - e;
                }
            }
            if best_i.is_none() || benefit > best_benefit {
                best_i = Some(i);
                best_benefit = benefit;
            }
        }
        let Some(c) = best_i else { break };
        selected_flags[c] = true;
        selected.push(cbis[c].to_vec());
        for j in 0..k {
            let e = err[c * k + j];
            if e < best_err[j] {
                best_err[j] = e;
            }
        }
    }
    selected
}

/// [`get_base_with_obs`] with the error matrix built *through* a
/// [`FitCache`] memo — the incremental `GetBase` path.
///
/// Three layers of reuse, none of which changes the output:
///
/// 1. **Within the matrix build** (SSE only), each pair's fit is factored
///    into per-window moments (`Σx`, `Σx²` — computed once per CBI) plus a
///    single `Σx·y` pass per pair, instead of the fused five-accumulator
///    loop of [`regression::fit_sse`]. Each accumulator still sees the
///    identical sequence of adds in the identical order, so the factored
///    errors are bit-identical to the fused ones.
/// 2. **Across greedy steps**, the benefit scans and the post-selection
///    `best_err` refresh are pure re-reductions over the memoized matrix —
///    no pair is ever fit twice in one batch (the low-memory legacy re-fits
///    all `K×K` pairs per step; see [`get_base_low_memory_with_obs`]).
/// 3. **Across transmission batches**, pair errors are carried in `cache`
///    keyed by window *content* (see [`FitCache`]): windows repeated from
///    the previous batch skip their `Σx·y` passes entirely.
///
/// `obs` reports the reuse through `sbr_core.get_base.fit_cache.{hits,
/// misses,bytes}`: a hit is any pair-error evaluation served by the memo
/// (carried-over build cells plus every greedy re-reduction read), a miss
/// is a fresh fit. Passing `cache = None` still memoizes within the batch
/// (layers 1–2) but carries nothing over.
#[allow(clippy::too_many_arguments)]
pub fn get_base_cached(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
    obs: &EncodeObs,
    cache: Option<&mut FitCache>,
) -> Vec<Vec<f64>> {
    let cbis = candidate_intervals(data, w);
    let k = cbis.len();
    if k == 0 || max_ins == 0 {
        return Vec::new();
    }

    let mut local = FitCache::new();
    let cache = cache.unwrap_or(&mut local);
    cache.begin_batch(metric);
    let mut ids: Vec<u32> = Vec::with_capacity(k);
    // Carried-over windows are the only ones that can have memoized pairs;
    // cells touching a fresh window skip the lookup entirely.
    let mut carried: Vec<bool> = Vec::with_capacity(k);
    for c in &cbis {
        let (id, known) = cache.intern(c);
        ids.push(id);
        carried.push(known);
    }

    // Per-window moments for the factored SSE fit: the same accumulation
    // order as `fit_sse`'s fused loop, so the factored fit is bit-identical.
    let moments: Vec<(f64, f64)> = if metric == ErrorMetric::Sse {
        cbis.iter()
            .map(|c| {
                let mut sum = 0.0;
                let mut sum_sq = 0.0;
                for &v in *c {
                    sum += v;
                    sum_sq += v * v;
                }
                (sum, sum_sq)
            })
            .collect()
    } else {
        Vec::new()
    };
    let fit_pair = |i: usize, j: usize| -> f64 {
        if metric == ErrorMetric::Sse {
            let (sum_x, sum_x2) = moments[i];
            let (sum_y, sum_y2) = moments[j];
            let mut sum_xy = 0.0;
            for (xi, yi) in cbis[i].iter().zip(cbis[j]) {
                sum_xy += xi * yi;
            }
            regression::fit_sse_with_stats(w, sum_x, sum_x2, sum_y, sum_y2, sum_xy).err
        } else {
            regression::fit(metric, cbis[i], cbis[j]).err
        }
    };
    // Fresh SSE cells are fit `PAIR_BLOCK` data windows at a time: one
    // pass over the base window feeds 8 independent `Σx·y` accumulators,
    // hiding the FP-add latency a single accumulator chain serializes on.
    // Each lane still sums its own pair in ascending index order, so every
    // cell is bit-identical to the scalar `fit_pair` (and to the legacy
    // fused `fit_sse` loop).
    let fit_block = |i: usize, js: &[usize]| -> [f64; PAIR_BLOCK] {
        debug_assert_eq!(js.len(), PAIR_BLOCK);
        let xi = cbis[i];
        let n = xi.len();
        let ys: [&[f64]; PAIR_BLOCK] = std::array::from_fn(|b| &cbis[js[b]][..n]);
        let mut sums = [0.0f64; PAIR_BLOCK];
        for (t, &xv) in xi.iter().enumerate() {
            for b in 0..PAIR_BLOCK {
                sums[b] += xv * ys[b][t];
            }
        }
        let (sum_x, sum_x2) = moments[i];
        std::array::from_fn(|b| {
            let (sum_y, sum_y2) = moments[js[b]];
            regression::fit_sse_with_stats(w, sum_x, sum_x2, sum_y, sum_y2, sums[b]).err
        })
    };

    let mut best_err: Vec<f64> = cbis
        .iter()
        .map(|c| regression::fit_linear(metric, c).err)
        .collect();
    // Row build through the memo: workers read the cache immutably and
    // report which cells they had to fit fresh; misses are folded back in
    // serially afterwards (ids are per-content, so two equal-content CBIs
    // in one batch share their row/column cells too).
    let cache_ro: &FitCache = cache;
    let rows: Vec<Vec<(f64, bool)>> = crate::par::par_map(k, threads, &obs.par, |i| {
        let mut row: Vec<(f64, bool)> = Vec::with_capacity(k);
        let mut fresh_js: Vec<usize> = Vec::with_capacity(k);
        for j in 0..k {
            if i == j {
                row.push((0.0, false));
            } else if carried[i] && carried[j] {
                match cache_ro.get(ids[i], ids[j]) {
                    Some(e) => row.push((e, false)),
                    None => {
                        row.push((f64::NAN, true));
                        fresh_js.push(j);
                    }
                }
            } else {
                row.push((f64::NAN, true));
                fresh_js.push(j);
            }
        }
        if metric == ErrorMetric::Sse {
            let mut b = 0;
            while b + PAIR_BLOCK <= fresh_js.len() {
                let js = &fresh_js[b..b + PAIR_BLOCK];
                let errs = fit_block(i, js);
                for (l, &j) in js.iter().enumerate() {
                    row[j].0 = errs[l];
                }
                b += PAIR_BLOCK;
            }
            for &j in &fresh_js[b..] {
                row[j].0 = fit_pair(i, j);
            }
        } else {
            for &j in &fresh_js {
                row[j].0 = fit_pair(i, j);
            }
        }
        row
    });
    let mut build_hits = 0u64;
    let mut build_misses = 0u64;
    let mut err: Vec<f64> = Vec::with_capacity(k * k);
    for (i, row) in rows.into_iter().enumerate() {
        for (j, (e, fresh)) in row.into_iter().enumerate() {
            if i != j {
                if fresh {
                    build_misses += 1;
                } else {
                    build_hits += 1;
                }
            }
            err.push(e);
        }
    }
    obs.fit_cache_misses.add(build_misses);

    let mut selected_flags = vec![false; k];
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(max_ins.min(k));
    let mut memo_reads = build_hits;
    for _ in 0..max_ins.min(k) {
        let mut best_i = None;
        let mut best_benefit = 0.0f64;
        for i in 0..k {
            if selected_flags[i] {
                continue;
            }
            let mut benefit = 0.0;
            for j in 0..k {
                let e = err[i * k + j];
                if e < best_err[j] {
                    benefit += best_err[j] - e;
                }
            }
            memo_reads += k as u64;
            if best_i.is_none() || benefit > best_benefit {
                best_i = Some(i);
                best_benefit = benefit;
            }
        }
        let Some(c) = best_i else { break };
        selected_flags[c] = true;
        selected.push(cbis[c].to_vec());
        for j in 0..k {
            let e = err[c * k + j];
            if e < best_err[j] {
                best_err[j] = e;
            }
        }
        memo_reads += k as u64;
    }
    // Hand the whole matrix to the cache in one move — the next batch's
    // carried windows serve their pairs straight out of it.
    cache.store_matrix(&ids, err);
    obs.fit_cache_hits.add(memo_reads);
    obs.fit_cache_bytes.set(cache.footprint_bytes() as f64);
    selected
}

/// The `O(√n)`-space variant: no error matrix; each greedy step recomputes
/// pairwise errors on the fly (`O(maxIns · n^1.5)` time, as derived in
/// §4.2).
pub fn get_base_low_memory(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
) -> Vec<Vec<f64>> {
    get_base_low_memory_threaded(data, w, max_ins, metric, 1)
}

/// [`get_base_low_memory`] with each greedy step's per-candidate benefit
/// scan fanned out over up to `threads` worker threads. The arg-max over
/// the gathered benefits runs serially with the same earliest-index
/// tie-break as the serial loop, so output is identical for every thread
/// count.
pub fn get_base_low_memory_threaded(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
) -> Vec<Vec<f64>> {
    get_base_low_memory_with_obs(data, w, max_ins, metric, threads, &ParObs::default())
}

/// [`get_base_low_memory_threaded`] with fan-out observability, mirroring
/// [`get_base_with_obs`].
pub fn get_base_low_memory_with_obs(
    data: &MultiSeries,
    w: usize,
    max_ins: usize,
    metric: ErrorMetric,
    threads: usize,
    obs: &ParObs,
) -> Vec<Vec<f64>> {
    let cbis = candidate_intervals(data, w);
    let k = cbis.len();
    if k == 0 || max_ins == 0 {
        return Vec::new();
    }

    let mut best_err: Vec<f64> = cbis
        .iter()
        .map(|c| regression::fit_linear(metric, c).err)
        .collect();
    let mut selected_flags = vec![false; k];
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(max_ins.min(k));

    for _ in 0..max_ins.min(k) {
        let benefits = crate::par::par_map(k, threads, obs, |i| {
            if selected_flags[i] {
                return f64::NEG_INFINITY;
            }
            let mut benefit = 0.0;
            for j in 0..k {
                let e = if i == j {
                    0.0
                } else {
                    regression::fit(metric, cbis[i], cbis[j]).err
                };
                if e < best_err[j] {
                    benefit += best_err[j] - e;
                }
            }
            benefit
        });
        let mut best_i = None;
        let mut best_benefit = 0.0f64;
        for (i, &benefit) in benefits.iter().enumerate() {
            if selected_flags[i] {
                continue;
            }
            if best_i.is_none() || benefit > best_benefit {
                best_i = Some(i);
                best_benefit = benefit;
            }
        }
        let Some(c) = best_i else { break };
        selected_flags[c] = true;
        selected.push(cbis[c].to_vec());
        for j in 0..k {
            let e = if c == j {
                0.0
            } else {
                regression::fit(metric, cbis[c], cbis[j]).err
            };
            if e < best_err[j] {
                best_err[j] = e;
            }
        }
    }
    selected
}

/// [`BaseBuilder`] wrapping [`get_base`] — the default construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct GetBaseBuilder;

impl BaseBuilder for GetBaseBuilder {
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        get_base(data, w, max_ins, metric)
    }

    fn build_threaded(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        get_base_threaded(data, w, max_ins, metric, threads)
    }

    fn build_with_obs(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
    ) -> Vec<Vec<f64>> {
        get_base_with_obs(data, w, max_ins, metric, threads, &obs.par)
    }

    fn build_cached(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
        cache: Option<&mut FitCache>,
    ) -> Vec<Vec<f64>> {
        get_base_cached(data, w, max_ins, metric, threads, obs, cache)
    }
}

/// [`BaseBuilder`] wrapping [`get_base_low_memory`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LowMemoryGetBase;

impl BaseBuilder for LowMemoryGetBase {
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory(data, w, max_ins, metric)
    }

    fn build_threaded(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory_threaded(data, w, max_ins, metric, threads)
    }

    fn build_with_obs(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
    ) -> Vec<Vec<f64>> {
        get_base_low_memory_with_obs(data, w, max_ins, metric, threads, &obs.par)
    }

    /// With a fit cache the memo already holds every pair error, so the
    /// per-step re-fitting (and with it the `O(√n)` space bound — the memo
    /// is the trade) has nothing left to save: the cached low-memory build
    /// *is* [`get_base_cached`]. Output stays identical — the low-memory
    /// greedy selects exactly what the full-matrix greedy selects (pinned
    /// by `low_memory_variant_matches_full_variant`) — and the
    /// post-selection `best_err` refresh reads the memoized row instead of
    /// re-fitting row `c` a second time. Disable the cache
    /// ([`crate::SbrConfig::without_fit_cache`]) to keep the
    /// paper-faithful `O(√n)`-space oracle.
    fn build_cached(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &EncodeObs,
        cache: Option<&mut FitCache>,
    ) -> Vec<Vec<f64>> {
        get_base_cached(data, w, max_ins, metric, threads, obs, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_rows(rows).unwrap()
    }

    /// A wiggly pattern no straight line approximates well.
    fn wiggle(seed: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 1.3 + seed).sin() * 5.0 + (i as f64 * 0.7).cos() * 3.0)
            .collect()
    }

    #[test]
    fn candidates_cover_full_windows_only() {
        let data = series(&[vec![0.0; 10], vec![0.0; 10]]);
        let cbis = candidate_intervals(&data, 4);
        assert_eq!(cbis.len(), 4); // 2 per row, trailing 2 samples dropped
        for c in cbis {
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn picks_the_shared_pattern() {
        // Rows = affine images of one wiggle + one pure line. The wiggle
        // window must be chosen first: it explains all wiggle windows, while
        // the line windows are already perfect under the fall-back.
        let p = wiggle(0.0, 8);
        let row1: Vec<f64> = p.iter().map(|v| 2.0 * v + 1.0).collect();
        let row2: Vec<f64> = p.iter().map(|v| -v + 3.0).collect();
        let line: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let data = series(&[row1.clone(), row2, line]);
        let base = get_base(&data, 8, 1, ErrorMetric::Sse);
        assert_eq!(base.len(), 1);
        // The selected interval must be one of the wiggle images (they all
        // explain each other exactly), not the line.
        let f = regression::fit_sse(&base[0], &row1);
        assert!(f.err < 1e-9, "selected base must explain the wiggles");
    }

    #[test]
    fn adjustment_avoids_near_duplicates() {
        // Two distinct wiggles, two windows each. With maxIns = 2 the greedy
        // must pick one window of *each* wiggle, not two of the same.
        let w1 = wiggle(0.0, 8);
        let w2: Vec<f64> = (0..8).map(|i| ((i * i) as f64 * 0.9).sin() * 4.0).collect();
        let mut row1 = w1.clone();
        row1.extend(w1.iter().map(|v| 3.0 * v - 2.0));
        let mut row2 = w2.clone();
        row2.extend(w2.iter().map(|v| -2.0 * v + 1.0));
        let data = series(&[row1, row2]);
        let base = get_base(&data, 8, 2, ErrorMetric::Sse);
        assert_eq!(base.len(), 2);
        let explains_w1 = regression::fit_sse(&base[0], &w1).err < 1e-9
            || regression::fit_sse(&base[1], &w1).err < 1e-9;
        let explains_w2 = regression::fit_sse(&base[0], &w2).err < 1e-9
            || regression::fit_sse(&base[1], &w2).err < 1e-9;
        assert!(explains_w1 && explains_w2);
    }

    #[test]
    fn low_memory_variant_matches_full_variant() {
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..32)
                    .map(|i| ((i + r * 7) as f64 * 0.8).sin() * (r + 1) as f64 + i as f64 * 0.1)
                    .collect()
            })
            .collect();
        let data = series(&rows);
        let a = get_base(&data, 8, 3, ErrorMetric::Sse);
        let b = get_base_low_memory(&data, 8, 3, ErrorMetric::Sse);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_max_ins_returns_nothing() {
        let data = series(&[wiggle(1.0, 16)]);
        assert!(get_base(&data, 4, 0, ErrorMetric::Sse).is_empty());
    }

    #[test]
    fn perfectly_linear_data_yields_zero_benefit_but_still_selects() {
        // All windows are lines: every benefit is 0; the greedy still
        // returns maxIns intervals (Algorithm 4 always pops maxIns times).
        // The SBR Search step is what rejects useless insertions.
        let line: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let data = series(&[line]);
        let base = get_base(&data, 4, 2, ErrorMetric::Sse);
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn works_under_relative_metric() {
        let p = wiggle(2.0, 8);
        let row: Vec<f64> = p.iter().map(|v| 100.0 + 10.0 * v).collect();
        let data = series(&[row]);
        let base = get_base(&data, 8, 1, ErrorMetric::relative());
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn builder_trait_objects_dispatch() {
        use crate::config::BaseBuilder as _;
        let data = series(&[wiggle(0.5, 16)]);
        let full = GetBaseBuilder.build(&data, 4, 2, ErrorMetric::Sse);
        let low = LowMemoryGetBase.build(&data, 4, 2, ErrorMetric::Sse);
        assert_eq!(full, low);
    }
}
