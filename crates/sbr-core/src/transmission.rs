//! What a sensor actually sends per batch: base-signal updates plus interval
//! records, with exact bandwidth accounting (§4.3).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::interval::IntervalRecord;

/// One inserted base interval: its `W` samples plus the slot of the
/// base-signal buffer it finally occupies. Costs `W + 1` values.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BaseUpdate {
    /// Final slot index in the base-signal buffer. Slots beyond the
    /// receiver's current buffer are appends; earlier slots are
    /// replacements (the sensor evicted LFU intervals).
    pub slot: u64,
    /// The `W` samples of the interval.
    pub values: Vec<f64>,
}

impl BaseUpdate {
    /// Bandwidth cost in values: the samples plus the slot offset.
    pub fn cost(&self) -> usize {
        self.values.len() + 1
    }
}

/// A complete per-batch transmission.
///
/// Decoding order matters and mirrors Algorithm 5: the receiver first forms
/// the *candidate* signal `X_new = X_old ∥ updates` (in transmitted order),
/// decodes every interval record against `X_new`, and only then applies the
/// slot placements to obtain the buffer used by the next transmission. The
/// `shift` fields therefore always reference the `X_new` layout.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Transmission {
    /// Monotone sequence number of the batch (0-based).
    pub seq: u64,
    /// Number of input signals in the batch.
    pub n_signals: u32,
    /// Samples per signal in the batch.
    pub samples_per_signal: u32,
    /// Base-interval width `W` used for this batch.
    pub w: u32,
    /// Inserted base intervals, in insertion order.
    pub base_updates: Vec<BaseUpdate>,
    /// Approximation interval records.
    pub intervals: Vec<IntervalRecord>,
}

impl Transmission {
    /// Total bandwidth cost in values:
    /// `Ins × (W + 1) + 4 × #intervals` (§4.3).
    pub fn cost(&self) -> usize {
        self.base_updates
            .iter()
            .map(BaseUpdate::cost)
            .sum::<usize>()
            + self.intervals.len() * IntervalRecord::COST
    }

    /// Number of values in the batch this transmission encodes.
    pub fn batch_len(&self) -> usize {
        // lint:allow(cast-truncation): both u32 factors widen to usize before the multiply
        self.n_signals as usize * self.samples_per_signal as usize
    }

    /// Achieved compression ratio (transmitted values / batch values).
    pub fn compression_ratio(&self) -> f64 {
        self.cost() as f64 / self.batch_len() as f64
    }
}

/// What a v2 wire frame carries besides its [`Transmission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum FrameKind {
    /// An ordinary in-sequence batch, encoded against the receiver's
    /// current base-signal replica.
    Data,
    /// A re-anchoring frame: carries a full base-signal snapshot the
    /// receiver must install *before* decoding the embedded transmission.
    /// Emitted after a retransmit-buffer overflow or a node reboot, always
    /// with a strictly larger epoch than any prior frame.
    Resync,
}

/// A v2 wire frame: epoch + kind envelope around one [`Transmission`],
/// with an optional base-signal snapshot on [`FrameKind::Resync`] frames.
///
/// The snapshot is the sensor's base signal *before* encoding the embedded
/// transmission (flattened slot-major, a multiple of `tx.w` values), so the
/// receiver installs it and then decodes `tx` with unchanged shift
/// semantics. A reboot resync has an empty snapshot: the encoder restarted
/// from scratch and `tx.seq` is 0 again.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Frame {
    /// Resync generation. Starts at 0; bumped by the sensor on every
    /// retransmit-buffer overflow or reboot. v1 frames decode as epoch 0.
    pub epoch: u32,
    /// Whether this frame re-anchors the decoder.
    pub kind: FrameKind,
    /// Flattened base-signal snapshot (`Resync` only; empty on `Data` and
    /// on reboot resyncs). Length must be a multiple of `tx.w`.
    pub snapshot: Vec<f64>,
    /// The batch payload.
    pub tx: Transmission,
}

impl Frame {
    /// An ordinary data frame.
    pub fn data(epoch: u32, tx: Transmission) -> Self {
        Frame {
            epoch,
            kind: FrameKind::Data,
            snapshot: Vec::new(),
            tx,
        }
    }

    /// A resync frame carrying the pre-encode base-signal snapshot.
    pub fn resync(epoch: u32, snapshot: Vec<f64>, tx: Transmission) -> Self {
        Frame {
            epoch,
            kind: FrameKind::Resync,
            snapshot,
            tx,
        }
    }

    /// Bandwidth cost in values: the transmission plus any snapshot values.
    pub fn cost(&self) -> usize {
        self.tx.cost() + self.snapshot.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx() -> Transmission {
        Transmission {
            seq: 3,
            n_signals: 2,
            samples_per_signal: 100,
            w: 4,
            base_updates: vec![BaseUpdate {
                slot: 0,
                values: vec![1.0, 2.0, 3.0, 4.0],
            }],
            intervals: vec![
                IntervalRecord {
                    start: 0,
                    shift: -1,
                    a: 0.0,
                    b: 1.0,
                },
                IntervalRecord {
                    start: 100,
                    shift: 0,
                    a: 1.0,
                    b: 0.0,
                },
            ],
        }
    }

    #[test]
    fn cost_counts_updates_and_records() {
        let t = tx();
        assert_eq!(t.cost(), (4 + 1) + 2 * 4);
    }

    #[test]
    fn ratio_uses_batch_size() {
        let t = tx();
        assert_eq!(t.batch_len(), 200);
        assert!((t.compression_ratio() - 13.0 / 200.0).abs() < 1e-12);
    }
}
