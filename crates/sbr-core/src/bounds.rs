//! §4.5: strict error bounds and combined error/space targets.
//!
//! Two application contracts beyond the plain bandwidth-budget mode:
//!
//! * **Guaranteed maximum error** — encode under the max-abs metric and ship
//!   the achieved bound with the approximation; every reconstructed value is
//!   then within that bound of the truth.
//! * **Error target with a space cap** — the application is happy with any
//!   approximation at most `target_band` values large whose error meets a
//!   target; `GetIntervals`' recursive splitting simply stops early once the
//!   target is met (implemented via [`SbrConfig::error_target`]).

use crate::config::SbrConfig;
use crate::error::Result;
use crate::metric::ErrorMetric;
use crate::sbr::SbrEncoder;
use crate::transmission::Transmission;

/// An error-target/space-cap contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBoundSpec {
    /// Upper bound on the transmission size, in values (`TargetBand`).
    pub target_band: usize,
    /// Error the application is satisfied with, under the encoder's metric.
    pub error_target: f64,
}

/// Outcome of a bounded encoding.
#[derive(Debug, Clone)]
pub struct BoundedEncoding {
    /// The transmission (already as small as the target allows).
    pub transmission: Transmission,
    /// The error actually achieved, under the encoder's metric. When the
    /// metric is [`ErrorMetric::MaxAbs`] this is a *guarantee*: no
    /// reconstructed value deviates more.
    pub achieved_error: f64,
    /// Whether the error target was met within the space cap.
    pub met_target: bool,
}

impl SbrEncoder {
    /// Encode a batch under an [`ErrorBoundSpec`]: the result uses at most
    /// `spec.target_band` values and stops spending budget as soon as the
    /// error target is met. If the target is unreachable within the cap,
    /// the full cap is spent and `met_target` is `false`.
    pub fn encode_bounded(
        &mut self,
        rows: &[Vec<f64>],
        spec: ErrorBoundSpec,
    ) -> Result<BoundedEncoding> {
        // Temporarily narrow the configuration; restore it even on error.
        let saved = self.config().clone();
        let narrowed = SbrConfig {
            total_band: spec.target_band.min(saved.total_band),
            error_target: Some(spec.error_target),
            ..saved.clone()
        };
        self.set_config_for_bounds(narrowed);
        let out = self.encode(rows);
        self.set_config_for_bounds(saved);
        let transmission = out?;
        let stats = self
            .last_stats()
            .expect("encode just succeeded, stats must exist");
        Ok(BoundedEncoding {
            transmission,
            achieved_error: stats.total_err,
            met_target: stats.total_err <= spec.error_target,
        })
    }
}

/// Verify a max-error guarantee against ground truth (testing/audit
/// helper): returns the worst absolute deviation.
pub fn audit_max_error(original: &[Vec<f64>], reconstructed: &[Vec<f64>]) -> f64 {
    let mut worst = 0.0f64;
    for (o, r) in original.iter().zip(reconstructed) {
        worst = worst.max(ErrorMetric::MaxAbs.score(o, r));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;

    fn rows() -> Vec<Vec<f64>> {
        vec![(0..128)
            .map(|i| (i as f64 * 0.23).sin() * 10.0 + ((i / 16) % 3) as f64 * 5.0)
            .collect()]
    }

    #[test]
    fn loose_target_uses_less_space() {
        let rows = rows();
        let mut enc = SbrEncoder::new(1, 128, SbrConfig::new(96, 64)).unwrap();
        let tight = enc
            .encode_bounded(
                &rows,
                ErrorBoundSpec {
                    target_band: 96,
                    error_target: 0.0,
                },
            )
            .unwrap();
        let mut enc2 = SbrEncoder::new(1, 128, SbrConfig::new(96, 64)).unwrap();
        let loose = enc2
            .encode_bounded(
                &rows,
                ErrorBoundSpec {
                    target_band: 96,
                    error_target: tight.achieved_error * 50.0 + 1.0,
                },
            )
            .unwrap();
        assert!(loose.met_target);
        assert!(loose.transmission.cost() <= tight.transmission.cost());
    }

    #[test]
    fn unreachable_target_reports_false() {
        let rows = rows();
        let mut enc = SbrEncoder::new(1, 128, SbrConfig::new(16, 16)).unwrap();
        let out = enc
            .encode_bounded(
                &rows,
                ErrorBoundSpec {
                    target_band: 16,
                    error_target: 1e-12,
                },
            )
            .unwrap();
        assert!(!out.met_target);
        assert!(out.transmission.cost() <= 16);
    }

    #[test]
    fn maxabs_bound_is_a_real_guarantee() {
        let rows = rows();
        let config = SbrConfig::new(80, 64).with_metric(ErrorMetric::MaxAbs);
        let mut enc = SbrEncoder::new(1, 128, config).unwrap();
        let out = enc
            .encode_bounded(
                &rows,
                ErrorBoundSpec {
                    target_band: 80,
                    error_target: 0.5,
                },
            )
            .unwrap();
        let rec = Decoder::new().decode(&out.transmission).unwrap();
        let worst = audit_max_error(&rows, &rec);
        assert!(
            worst <= out.achieved_error + 1e-9,
            "decoded deviation {worst} exceeds the advertised bound {}",
            out.achieved_error
        );
    }

    #[test]
    fn config_restored_after_bounded_call() {
        let rows = rows();
        let mut enc = SbrEncoder::new(1, 128, SbrConfig::new(96, 64)).unwrap();
        enc.encode_bounded(
            &rows,
            ErrorBoundSpec {
                target_band: 32,
                error_target: 1.0,
            },
        )
        .unwrap();
        assert_eq!(enc.config().total_band, 96);
        assert_eq!(enc.config().error_target, None);
    }
}
