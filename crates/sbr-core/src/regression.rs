//! The `Regression()` subroutine (Algorithm 1) and its §4.5 variants.
//!
//! Given a base segment `x` and a data segment `y` of equal length, compute
//! the line `ŷ = a·x + b` that is optimal under the chosen
//! [`ErrorMetric`], together with the achieved error:
//!
//! * **SSE** — ordinary least squares (the paper's Algorithm 1),
//! * **relative SSE** — weighted least squares with weights
//!   `1 / max(|y_i|, sanity)²`,
//! * **max-abs** — the Chebyshev (minimax) line, computed exactly via the
//!   convex hull of `(x_i, y_i)`: the minimax line is parallel to the hull
//!   edge that minimizes the hull's vertical extent.
//!
//! The SSE path also exposes a *sufficient-statistics* form
//! ([`fit_sse_with_stats`]) so callers that slide a window over the base
//! signal (see [`crate::best_map`]) pay only one `Σ x·y` pass per shift; the
//! window's `Σx`, `Σx²`, `Σy`, `Σy²` come from prefix sums in O(1).

use crate::metric::ErrorMetric;

/// Result of fitting `ŷ = a·x + b` to a `(segment, interval)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope of the projection.
    pub a: f64,
    /// Intercept of the projection.
    pub b: f64,
    /// Error of the fit under the metric that produced it.
    pub err: f64,
}

impl Fit {
    /// A fit that is worse than any real fit; used to seed minimizations.
    pub const WORST: Fit = Fit {
        a: 0.0,
        b: 0.0,
        err: f64::INFINITY,
    };
}

/// Fit `ŷ = a·x + b` under `metric`. `x` and `y` must have equal, nonzero
/// length.
///
/// ```
/// use sbr_core::{regression, ErrorMetric};
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
/// let f = regression::fit(ErrorMetric::Sse, &x, &y);
/// assert!((f.a - 2.0).abs() < 1e-9 && (f.b - 1.0).abs() < 1e-9);
/// assert!(f.err < 1e-12);
/// ```
pub fn fit(metric: ErrorMetric, x: &[f64], y: &[f64]) -> Fit {
    debug_assert_eq!(x.len(), y.len());
    debug_assert!(!x.is_empty());
    match metric {
        ErrorMetric::Sse => fit_sse(x, y),
        ErrorMetric::RelativeSse { sanity } => fit_relative(x, y, sanity),
        ErrorMetric::MaxAbs => fit_maxabs(x, y),
    }
}

/// Fit against the time index (`x_i = i`), the paper's linear-regression
/// fall-back used when no base-signal segment correlates well (the interval
/// is then transmitted with `shift = -1`).
pub fn fit_linear(metric: ErrorMetric, y: &[f64]) -> Fit {
    match metric {
        ErrorMetric::Sse => fit_sse_index(y),
        _ => {
            // The index vector is tiny relative to everything else; build it
            // once per call for the exotic metrics.
            let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
            fit(metric, &x, y)
        }
    }
}

/// Evaluate the line `a·x + b` under `metric` without refitting.
pub fn eval(metric: ErrorMetric, a: f64, b: f64, x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0f64;
    match metric {
        ErrorMetric::Sse => {
            for (xi, yi) in x.iter().zip(y) {
                let d = yi - (a * xi + b);
                acc += d * d;
            }
        }
        ErrorMetric::RelativeSse { sanity } => {
            for (xi, yi) in x.iter().zip(y) {
                let d = (yi - (a * xi + b)) / yi.abs().max(sanity);
                acc += d * d;
            }
        }
        ErrorMetric::MaxAbs => {
            for (xi, yi) in x.iter().zip(y) {
                acc = acc.max((yi - (a * xi + b)).abs());
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// SSE (ordinary least squares)
// ---------------------------------------------------------------------------

/// Ordinary least squares — Algorithm 1 of the paper.
pub fn fit_sse(x: &[f64], y: &[f64]) -> Fit {
    let len = x.len() as f64;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    let mut sum_xy = 0.0;
    let mut sum_x2 = 0.0;
    let mut sum_y2 = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sum_x += xi;
        sum_y += yi;
        sum_xy += xi * yi;
        sum_x2 += xi * xi;
        sum_y2 += yi * yi;
    }
    fit_sse_from_sums(len, sum_x, sum_x2, sum_y, sum_y2, sum_xy)
}

/// OLS from precomputed window statistics.
///
/// `sum_x`, `sum_x2` describe the base window; `sum_y`, `sum_y2` the data
/// interval; `sum_xy` is the cross term for this particular alignment. The
/// returned SSE is closed form and clamped at zero against floating-point
/// cancellation.
#[inline]
pub fn fit_sse_with_stats(
    len: usize,
    sum_x: f64,
    sum_x2: f64,
    sum_y: f64,
    sum_y2: f64,
    sum_xy: f64,
) -> Fit {
    fit_sse_from_sums(len as f64, sum_x, sum_x2, sum_y, sum_y2, sum_xy)
}

#[inline]
fn fit_sse_from_sums(
    len: f64,
    sum_x: f64,
    sum_x2: f64,
    sum_y: f64,
    sum_y2: f64,
    sum_xy: f64,
) -> Fit {
    // Centered (co)variances: numerically far better behaved than the raw
    // normal equations when the data is large in magnitude.
    let s_xx = sum_x2 - sum_x * sum_x / len;
    let s_yy = sum_y2 - sum_y * sum_y / len;
    let s_xy = sum_xy - sum_x * sum_y / len;
    // A (near-)constant base window carries no shape information; the best
    // line is then flat at the data mean.
    if s_xx.abs() <= f64::EPSILON * sum_x2.abs().max(1.0) {
        return Fit {
            a: 0.0,
            b: sum_y / len,
            err: s_yy.max(0.0),
        };
    }
    let a = s_xy / s_xx;
    let b = (sum_y - a * sum_x) / len;
    // Residual sum of squares: S_yy − S_xy²/S_xx, clamped against
    // floating-point cancellation.
    let err = s_yy - a * s_xy;
    Fit {
        a,
        b,
        err: err.max(0.0),
    }
}

/// OLS against the index vector `0, 1, …, len-1` using the closed-form index
/// sums — avoids materializing the index vector in the fall-back hot path.
pub fn fit_sse_index(y: &[f64]) -> Fit {
    let n = y.len() as f64;
    // Σi and Σi² for i in 0..len.
    let sum_x = n * (n - 1.0) / 2.0;
    let sum_x2 = n * (n - 1.0) * (2.0 * n - 1.0) / 6.0;
    let mut sum_y = 0.0;
    let mut sum_y2 = 0.0;
    let mut sum_xy = 0.0;
    for (i, &yi) in y.iter().enumerate() {
        sum_y += yi;
        sum_y2 += yi * yi;
        sum_xy += i as f64 * yi;
    }
    fit_sse_from_sums(n, sum_x, sum_x2, sum_y, sum_y2, sum_xy)
}

// ---------------------------------------------------------------------------
// Relative SSE (weighted least squares)
// ---------------------------------------------------------------------------

/// Weighted least squares minimizing `Σ ((y - ŷ)/max(|y|, sanity))²`.
///
/// Runs in O(len) time and O(1) space, as claimed for the variant in the
/// paper's companion technical report.
pub fn fit_relative(x: &[f64], y: &[f64], sanity: f64) -> Fit {
    let mut sw = 0.0;
    let mut swx = 0.0;
    let mut swy = 0.0;
    let mut swxy = 0.0;
    let mut swx2 = 0.0;
    let mut swy2 = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let d = yi.abs().max(sanity);
        let w = 1.0 / (d * d);
        sw += w;
        swx += w * xi;
        swy += w * yi;
        swxy += w * xi * yi;
        swx2 += w * xi * xi;
        swy2 += w * yi * yi;
    }
    let denom = sw * swx2 - swx * swx;
    let (a, b) = if denom.abs() <= f64::EPSILON * sw * swx2.abs().max(1.0) {
        (0.0, swy / sw)
    } else {
        let a = (sw * swxy - swx * swy) / denom;
        (a, (swy - a * swx) / sw)
    };
    let err = swy2 - 2.0 * a * swxy - 2.0 * b * swy + a * a * swx2 + 2.0 * a * b * swx + b * b * sw;
    Fit {
        a,
        b,
        err: err.max(0.0),
    }
}

// ---------------------------------------------------------------------------
// Max-abs (Chebyshev / minimax line)
// ---------------------------------------------------------------------------

/// Exact minimax line fit: minimizes `max |y_i - (a·x_i + b)|`.
///
/// The optimal line is the center line of the two parallel lines of minimal
/// vertical separation enclosing the point set; its slope equals the slope of
/// some edge of the convex hull. We build both hulls (O(len log len) for the
/// sort) and, for each hull edge, find the farthest point on the opposite
/// hull.
pub fn fit_maxabs(x: &[f64], y: &[f64]) -> Fit {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    if n == 1 {
        return Fit {
            a: 0.0,
            b: y[0],
            err: 0.0,
        };
    }

    let mut pts: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
    pts.sort_by(|p, q| p.0.total_cmp(&q.0).then(p.1.total_cmp(&q.1)));

    // Degenerate: all x identical → vertical stack of points.
    if pts[0].0 == pts[n - 1].0 {
        let (lo, hi) = (pts[0].1, pts[n - 1].1);
        return Fit {
            a: 0.0,
            b: (lo + hi) / 2.0,
            err: (hi - lo) / 2.0,
        };
    }

    let lower = half_hull(&pts, false);
    let upper = half_hull(&pts, true);

    let mut best = Fit::WORST;
    // Candidate slopes: every edge of either hull. For each, the max vertical
    // deviation over *all* hull vertices gives the enclosing-strip width.
    for hull in [&lower, &upper] {
        for e in hull.windows(2) {
            let (x0, y0) = e[0];
            let (x1, y1) = e[1];
            if x1 == x0 {
                continue;
            }
            let a = (y1 - y0) / (x1 - x0);
            // Offsets of all hull vertices from the line through (x0, y0).
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for h in [&lower, &upper] {
                for &(px, py) in h.iter() {
                    let off = py - (y0 + a * (px - x0));
                    lo = lo.min(off);
                    hi = hi.max(off);
                }
            }
            let width = hi - lo;
            if width / 2.0 < best.err {
                best = Fit {
                    a,
                    b: y0 - a * x0 + (lo + hi) / 2.0,
                    err: width / 2.0,
                };
            }
        }
    }
    best
}

/// Monotone-chain half hull over points already sorted by `x` (then `y`).
fn half_hull(pts: &[(f64, f64)], upper: bool) -> Vec<(f64, f64)> {
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(16);
    let sign = if upper { -1.0 } else { 1.0 };
    for &p in pts {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
            if sign * cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

/// Prefix sums of a signal and its squares; gives any window's `Σx`, `Σx²`
/// in O(1). Index convention: `sum(i..j) = pre[j] - pre[i]`.
#[derive(Debug, Clone, Default)]
pub struct PrefixStats {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl PrefixStats {
    /// Build prefix sums over `values`.
    pub fn new(values: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(values.len() + 1);
        let mut sum_sq = Vec::with_capacity(values.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        for &v in values {
            s += v;
            s2 += v * v;
            sum.push(s);
            sum_sq.push(s2);
        }
        PrefixStats { sum, sum_sq }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// True when built over an empty signal.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `Σ x_i` for `i` in `[start, start+len)`.
    #[inline]
    pub fn window_sum(&self, start: usize, len: usize) -> f64 {
        self.sum[start + len] - self.sum[start]
    }

    /// `Σ x_i²` for `i` in `[start, start+len)`.
    #[inline]
    pub fn window_sum_sq(&self, start: usize, len: usize) -> f64 {
        self.sum_sq[start + len] - self.sum_sq[start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn sse_recovers_exact_line() {
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 7.0).collect();
        let f = fit_sse(&x, &y);
        assert_close(f.a, 2.5, 1e-9);
        assert_close(f.b, -7.0, 1e-9);
        assert_close(f.err, 0.0, 1e-6);
    }

    #[test]
    fn sse_constant_x_falls_back_to_mean() {
        let x = [3.0; 8];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let f = fit_sse(&x, &y);
        assert_eq!(f.a, 0.0);
        assert_close(f.b, 4.5, 1e-12);
    }

    #[test]
    fn sse_matches_naive_eval() {
        let x = [1.0, 2.0, 4.0, 8.0, 16.0, 3.0];
        let y = [2.0, 3.0, 9.0, 15.0, 30.0, 8.0];
        let f = fit_sse(&x, &y);
        let direct = eval(ErrorMetric::Sse, f.a, f.b, &x, &y);
        assert_close(f.err, direct, 1e-9);
    }

    #[test]
    fn sse_index_matches_general() {
        let y = [5.0, 4.0, 8.0, 1.0, 0.0, 2.0, 9.0];
        let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
        let f1 = fit_sse_index(&y);
        let f2 = fit_sse(&x, &y);
        assert_close(f1.a, f2.a, 1e-9);
        assert_close(f1.b, f2.b, 1e-9);
        assert_close(f1.err, f2.err, 1e-9);
    }

    #[test]
    fn relative_weights_small_values_more() {
        // One large-magnitude outlier: the relative fit should track the
        // small values more closely than the SSE fit does.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 4.0, 500.0];
        let rel = fit_relative(&x, &y, 1.0);
        let sse = fit_sse(&x, &y);
        let rel_small = (y[0] - (rel.a * x[0] + rel.b)).abs();
        let sse_small = (y[0] - (sse.a * x[0] + sse.b)).abs();
        assert!(rel_small < sse_small);
    }

    #[test]
    fn relative_exact_line_zero_error() {
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -1.5 * v + 100.0).collect();
        let f = fit_relative(&x, &y, 1.0);
        assert_close(f.err, 0.0, 1e-9);
    }

    #[test]
    fn maxabs_exact_line_zero_error() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v + 3.0).collect();
        let f = fit_maxabs(&x, &y);
        assert_close(f.err, 0.0, 1e-9);
        assert_close(f.a, 0.5, 1e-9);
    }

    #[test]
    fn maxabs_symmetric_spikes() {
        // Zig-zag between 0 and 1, symmetric in x: the minimax line is the
        // horizontal mid-line y = 0.5 with error exactly 0.5.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 1.0, 0.0, 1.0, 0.0];
        let f = fit_maxabs(&x, &y);
        assert_close(f.err, 0.5, 1e-9);
        assert_close(f.a, 0.0, 1e-9);
        assert_close(f.b, 0.5, 1e-9);
    }

    #[test]
    fn maxabs_never_worse_than_sse_line_on_max_metric() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let cheb = fit_maxabs(&x, &y);
        let ols = fit_sse(&x, &y);
        let cheb_max = eval(ErrorMetric::MaxAbs, cheb.a, cheb.b, &x, &y);
        let ols_max = eval(ErrorMetric::MaxAbs, ols.a, ols.b, &x, &y);
        assert!(cheb_max <= ols_max + 1e-9);
        assert_close(cheb.err, cheb_max, 1e-9);
    }

    #[test]
    fn maxabs_single_point() {
        let f = fit_maxabs(&[2.0], &[7.0]);
        assert_eq!(f.err, 0.0);
        assert_eq!(f.b, 7.0);
    }

    #[test]
    fn maxabs_vertical_stack() {
        let f = fit_maxabs(&[1.0, 1.0, 1.0], &[0.0, 4.0, 10.0]);
        assert_close(f.err, 5.0, 1e-12);
        assert_close(f.b, 5.0, 1e-12);
    }

    #[test]
    fn prefix_stats_windows() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let p = PrefixStats::new(&v);
        assert_eq!(p.len(), 4);
        assert_close(p.window_sum(1, 2), 5.0, 1e-12);
        assert_close(p.window_sum_sq(0, 4), 30.0, 1e-12);
        assert_close(p.window_sum(4, 0), 0.0, 1e-12);
    }

    #[test]
    fn stats_form_matches_direct_form() {
        let x = [0.5, 1.5, -2.0, 3.0, 0.0, 1.0];
        let y = [1.0, 4.0, -3.0, 7.0, 0.5, 2.0];
        let direct = fit_sse(&x, &y);
        let px = PrefixStats::new(&x);
        let py = PrefixStats::new(&y);
        let sum_xy: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let via_stats = fit_sse_with_stats(
            x.len(),
            px.window_sum(0, x.len()),
            px.window_sum_sq(0, x.len()),
            py.window_sum(0, y.len()),
            py.window_sum_sq(0, y.len()),
            sum_xy,
        );
        assert_close(direct.a, via_stats.a, 1e-9);
        assert_close(direct.b, via_stats.b, 1e-9);
        assert_close(direct.err, via_stats.err, 1e-9);
    }

    #[test]
    fn fit_dispatches_by_metric() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        for m in [
            ErrorMetric::Sse,
            ErrorMetric::relative(),
            ErrorMetric::MaxAbs,
        ] {
            let f = fit(m, &x, &y);
            assert_close(f.err, 0.0, 1e-9);
            assert_close(f.a, 2.0, 1e-9);
            assert_close(f.b, 1.0, 1e-9);
        }
    }
}
