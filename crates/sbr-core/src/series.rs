//! The in-memory batch of measurements a sensor compresses.
//!
//! §3.2 of the paper: the sensor's buffer is a two-dimensional array of `N`
//! rows (one per recorded quantity) × `M` columns (samples). The compression
//! algorithms view it as the concatenated series `Y = Y₁ ∥ … ∥ Y_N` of
//! length `n = N × M`.

use crate::error::{Result, SbrError};

/// A batch of `N` equal-length time series stored contiguously
/// (row-major), exactly as the algorithms consume it.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    data: Vec<f64>,
    n_signals: usize,
    samples_per_signal: usize,
}

impl MultiSeries {
    /// Build from per-signal slices. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(SbrError::InvalidConfig("no input signals".into()));
        }
        let m = rows[0].len();
        if m == 0 {
            return Err(SbrError::InvalidConfig("empty input signals".into()));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.len() != m {
                return Err(SbrError::ShapeMismatch {
                    expected_signals: rows.len(),
                    expected_len: m,
                    got: (i, r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * m);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self::check_finite(&data)?;
        Ok(MultiSeries {
            data,
            n_signals: rows.len(),
            samples_per_signal: m,
        })
    }

    /// Build from an already-concatenated buffer of `n_signals × m` values.
    pub fn from_flat(data: Vec<f64>, n_signals: usize, m: usize) -> Result<Self> {
        if n_signals == 0 || m == 0 {
            return Err(SbrError::InvalidConfig(
                "n_signals and samples_per_signal must be positive".into(),
            ));
        }
        if data.len() != n_signals * m {
            return Err(SbrError::ShapeMismatch {
                expected_signals: n_signals,
                expected_len: m,
                got: (n_signals, data.len()),
            });
        }
        Self::check_finite(&data)?;
        Ok(MultiSeries {
            data,
            n_signals,
            samples_per_signal: m,
        })
    }

    /// Non-finite samples would silently poison every regression fit, so
    /// they are rejected at the boundary.
    fn check_finite(data: &[f64]) -> Result<()> {
        if let Some(i) = data.iter().position(|v| !v.is_finite()) {
            return Err(SbrError::InvalidConfig(format!(
                "input value at flat index {i} is not finite ({})",
                data[i]
            )));
        }
        Ok(())
    }

    /// Number of recorded quantities (`N`).
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }

    /// Samples per quantity (`M`).
    pub fn samples_per_signal(&self) -> usize {
        self.samples_per_signal
    }

    /// Total number of values (`n = N × M`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the batch holds no values (cannot happen for a constructed
    /// instance; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The concatenated series `Y`.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        let s = i * self.samples_per_signal;
        &self.data[s..s + self.samples_per_signal]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.samples_per_signal)
    }

    /// The default base-interval width `W = ⌊√n⌋` (Table 1 of the paper).
    pub fn default_w(&self) -> usize {
        ((self.len() as f64).sqrt().floor() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_concatenates() {
        let ms = MultiSeries::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ms.flat(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ms.n_signals(), 2);
        assert_eq!(ms.samples_per_signal(), 2);
        assert_eq!(ms.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = MultiSeries::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, SbrError::ShapeMismatch { .. }));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(MultiSeries::from_rows(&[]).is_err());
        assert!(MultiSeries::from_rows(&[vec![]]).is_err());
        assert!(MultiSeries::from_flat(vec![], 0, 0).is_err());
    }

    #[test]
    fn from_flat_checks_shape() {
        assert!(MultiSeries::from_flat(vec![0.0; 6], 2, 3).is_ok());
        assert!(MultiSeries::from_flat(vec![0.0; 7], 2, 3).is_err());
    }

    #[test]
    fn non_finite_inputs_rejected() {
        assert!(MultiSeries::from_rows(&[vec![1.0, f64::NAN]]).is_err());
        assert!(MultiSeries::from_rows(&[vec![1.0, f64::INFINITY]]).is_err());
        assert!(MultiSeries::from_flat(vec![0.0, f64::NEG_INFINITY], 1, 2).is_err());
    }

    #[test]
    fn default_w_is_floor_sqrt() {
        let ms = MultiSeries::from_flat(vec![0.0; 20480], 10, 2048).unwrap();
        assert_eq!(ms.default_w(), 143); // ⌊√20480⌋
    }

    #[test]
    fn rows_iterator_matches_row_accessor() {
        let ms = MultiSeries::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let collected: Vec<&[f64]> = ms.rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, r) in collected.iter().enumerate() {
            assert_eq!(*r, ms.row(i));
        }
    }
}
