//! Reduced-precision wire profiles.
//!
//! The paper's bandwidth accounting is in abstract *values*; a real mote
//! radio counts bytes. This module provides lossy-but-bounded byte-level
//! profiles on top of the exact [`crate::codec`] frame:
//!
//! * [`Profile::F64`] — the exact frame (8 bytes/value),
//! * [`Profile::F32`] — regression parameters and base samples as `f32`
//!   (4 bytes/value; relative error ≤ 2⁻²⁴ per value),
//! * [`Profile::Q16`] — base samples and intercepts quantized to 16-bit
//!   fixed point against a per-block affine range (2 bytes/value +
//!   16 bytes of range per block); slopes stay `f32` because their dynamic
//!   range is unbounded.
//!
//! Every profile shares one outer framing (`magic ∥ profile-id ∥ payload`)
//! so a decoder can auto-detect what it received. Quantization error is
//! *bounded and testable*: for a block with range `[lo, hi]`,
//! `|v − v̂| ≤ (hi − lo) / 2 / (2¹⁶ − 1)`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec;
use crate::error::{Result, SbrError};
use crate::interval::IntervalRecord;
use crate::transmission::{BaseUpdate, Transmission};

/// Outer magic for profiled frames ("SBRP").
pub const PROFILE_MAGIC: u32 = 0x5342_5250;

/// Value-precision profile of a wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Exact `f64` payload (wraps the plain codec frame).
    F64,
    /// `f32` payload.
    F32,
    /// 16-bit fixed point for base samples and intercepts.
    Q16,
}

impl Profile {
    fn id(self) -> u8 {
        match self {
            Profile::F64 => 0,
            Profile::F32 => 1,
            Profile::Q16 => 2,
        }
    }

    fn from_id(id: u8) -> Result<Self> {
        match id {
            0 => Ok(Profile::F64),
            1 => Ok(Profile::F32),
            2 => Ok(Profile::Q16),
            other => Err(SbrError::Corrupt(format!("unknown wire profile {other}"))),
        }
    }
}

/// Serialize under the chosen profile.
///
/// ```
/// use sbr_core::wire_profile::{decode, encode, Profile};
/// use sbr_core::{SbrConfig, SbrEncoder};
/// let rows = vec![(0..64).map(|i| (i as f64 * 0.2).sin()).collect::<Vec<_>>()];
/// let mut enc = SbrEncoder::new(1, 64, SbrConfig::new(32, 24)).unwrap();
/// let tx = enc.encode(&rows).unwrap();
/// let exact = encode(&tx, Profile::F64);
/// let small = encode(&tx, Profile::F32);
/// assert!(small.len() < exact.len());
/// assert_eq!(decode(&mut exact.clone()).unwrap(), tx);
/// ```
pub fn encode(tx: &Transmission, profile: Profile) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(PROFILE_MAGIC);
    buf.put_u8(profile.id());
    match profile {
        Profile::F64 => {
            buf.extend_from_slice(&codec::encode(tx));
        }
        Profile::F32 => encode_f32(tx, &mut buf),
        Profile::Q16 => encode_q16(tx, &mut buf),
    }
    buf.freeze()
}

/// Parse a profiled frame (auto-detecting the profile).
pub fn decode(buf: &mut impl Buf) -> Result<Transmission> {
    if buf.remaining() < 5 {
        return Err(SbrError::Corrupt("truncated profiled frame".into()));
    }
    let magic = buf.get_u32_le();
    if magic != PROFILE_MAGIC {
        return Err(SbrError::Corrupt(format!(
            "bad profile magic {magic:#010x}"
        )));
    }
    let profile = Profile::from_id(buf.get_u8())?;
    match profile {
        Profile::F64 => codec::decode(buf),
        Profile::F32 => decode_f32(buf),
        Profile::Q16 => decode_q16(buf),
    }
}

/// Worst-case absolute reconstruction error Q16 introduces for one base
/// sample within a block spanning `[lo, hi]`.
pub fn q16_error_bound(lo: f64, hi: f64) -> f64 {
    (hi - lo) / 2.0 / (u16::MAX as f64)
}

// ---------------------------------------------------------------------------

fn put_header(tx: &Transmission, buf: &mut BytesMut) {
    buf.put_u64_le(tx.seq);
    buf.put_u32_le(tx.n_signals);
    buf.put_u32_le(tx.samples_per_signal);
    buf.put_u32_le(tx.w);
    buf.put_u32_le(tx.base_updates.len() as u32);
    buf.put_u32_le(tx.intervals.len() as u32);
}

struct Header {
    seq: u64,
    n_signals: u32,
    samples_per_signal: u32,
    w: u32,
    nu: usize,
    ni: usize,
}

fn get_header(buf: &mut impl Buf) -> Result<Header> {
    if buf.remaining() < 8 + 4 * 5 {
        return Err(SbrError::Corrupt("truncated profile header".into()));
    }
    let seq = buf.get_u64_le();
    let n_signals = buf.get_u32_le();
    let samples_per_signal = buf.get_u32_le();
    let w = buf.get_u32_le();
    let nu = buf.get_u32_le() as usize;
    let ni = buf.get_u32_le() as usize;
    if w == 0 || n_signals == 0 || samples_per_signal == 0 {
        return Err(SbrError::Corrupt("zero dimension in profile header".into()));
    }
    Ok(Header {
        seq,
        n_signals,
        samples_per_signal,
        w,
        nu,
        ni,
    })
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(SbrError::Corrupt(format!(
            "truncated profiled frame: needed {n} bytes for {what}"
        )))
    } else {
        Ok(())
    }
}

fn encode_f32(tx: &Transmission, buf: &mut BytesMut) {
    put_header(tx, buf);
    for u in &tx.base_updates {
        buf.put_u32_le(u.slot as u32);
        for &v in &u.values {
            buf.put_f32_le(v as f32);
        }
    }
    for r in &tx.intervals {
        buf.put_u32_le(r.start as u32);
        buf.put_i32_le(r.shift as i32);
        buf.put_f32_le(r.a as f32);
        buf.put_f32_le(r.b as f32);
    }
}

fn decode_f32(buf: &mut impl Buf) -> Result<Transmission> {
    let h = get_header(buf)?;
    let declared =
        h.nu.checked_mul(4 + 4 * h.w as usize)
            .and_then(|a| h.ni.checked_mul(16).and_then(|b| a.checked_add(b)))
            .ok_or_else(|| SbrError::Corrupt("declared f32 payload overflows".into()))?;
    need(buf, declared, "f32 payload")?;
    let mut base_updates = Vec::with_capacity(h.nu);
    for _ in 0..h.nu {
        let slot = u64::from(buf.get_u32_le());
        let values = (0..h.w).map(|_| f64::from(buf.get_f32_le())).collect();
        base_updates.push(BaseUpdate { slot, values });
    }
    let mut intervals = Vec::with_capacity(h.ni);
    for _ in 0..h.ni {
        intervals.push(IntervalRecord {
            start: u64::from(buf.get_u32_le()),
            shift: i64::from(buf.get_i32_le()),
            a: f64::from(buf.get_f32_le()),
            b: f64::from(buf.get_f32_le()),
        });
    }
    Ok(Transmission {
        seq: h.seq,
        n_signals: h.n_signals,
        samples_per_signal: h.samples_per_signal,
        w: h.w,
        base_updates,
        intervals,
    })
}

/// Quantize a block of values to u16 against its own range.
fn quantize_block(values: &[f64], buf: &mut BytesMut) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    buf.put_f64_le(lo);
    buf.put_f64_le(hi);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    for &v in values {
        let q = ((v - lo) / span * f64::from(u16::MAX)).round() as u16;
        buf.put_u16_le(q);
    }
}

fn dequantize_block(buf: &mut impl Buf, n: usize) -> Result<Vec<f64>> {
    let declared = n
        .checked_mul(2)
        .and_then(|b| b.checked_add(16))
        .ok_or_else(|| SbrError::Corrupt("declared q16 block overflows".into()))?;
    need(buf, declared, "q16 block")?;
    let lo = buf.get_f64_le();
    let hi = buf.get_f64_le();
    if !lo.is_finite() || !hi.is_finite() || hi < lo {
        return Err(SbrError::Corrupt(format!("invalid q16 range [{lo}, {hi}]")));
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    Ok((0..n)
        .map(|_| lo + f64::from(buf.get_u16_le()) / f64::from(u16::MAX) * span)
        .collect())
}

fn encode_q16(tx: &Transmission, buf: &mut BytesMut) {
    put_header(tx, buf);
    for u in &tx.base_updates {
        buf.put_u32_le(u.slot as u32);
        quantize_block(&u.values, buf);
    }
    // Intercepts quantized as one block; slopes as f32; starts/shifts exact.
    let intercepts: Vec<f64> = tx.intervals.iter().map(|r| r.b).collect();
    quantize_block(&intercepts, buf);
    for r in &tx.intervals {
        buf.put_u32_le(r.start as u32);
        buf.put_i32_le(r.shift as i32);
        buf.put_f32_le(r.a as f32);
    }
}

fn decode_q16(buf: &mut impl Buf) -> Result<Transmission> {
    let h = get_header(buf)?;
    // Upfront bound before any allocation: each update needs at least
    // slot + range + 2·W bytes, each record 12, plus the intercept block.
    let declared =
        h.nu.checked_mul(4 + 16 + 2 * h.w as usize)
            .and_then(|a| h.ni.checked_mul(12 + 2).and_then(|b| a.checked_add(b)))
            .and_then(|a| a.checked_add(16))
            .ok_or_else(|| SbrError::Corrupt("declared q16 payload overflows".into()))?;
    need(buf, declared, "q16 payload")?;
    let mut base_updates = Vec::with_capacity(h.nu);
    for _ in 0..h.nu {
        need(buf, 4, "q16 slot")?;
        let slot = u64::from(buf.get_u32_le());
        let values = dequantize_block(buf, h.w as usize)?;
        base_updates.push(BaseUpdate { slot, values });
    }
    let intercepts = dequantize_block(buf, h.ni)?;
    let declared =
        h.ni.checked_mul(12)
            .ok_or_else(|| SbrError::Corrupt("declared q16 records overflow".into()))?;
    need(buf, declared, "q16 interval records")?;
    let mut intervals = Vec::with_capacity(h.ni);
    for b in intercepts {
        intervals.push(IntervalRecord {
            start: u64::from(buf.get_u32_le()),
            shift: i64::from(buf.get_i32_le()),
            a: f64::from(buf.get_f32_le()),
            b,
        });
    }
    Ok(Transmission {
        seq: h.seq,
        n_signals: h.n_signals,
        samples_per_signal: h.samples_per_signal,
        w: h.w,
        base_updates,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;
    use crate::decoder::Decoder;
    use crate::metric::ErrorMetric;
    use crate::sbr::SbrEncoder;

    fn sample_tx() -> Transmission {
        let rows: Vec<Vec<f64>> = (0..2)
            .map(|r| {
                (0..128)
                    .map(|i| ((i as f64 * 0.23) + r as f64).sin() * 20.0 + 5.0)
                    .collect()
            })
            .collect();
        let mut enc = SbrEncoder::new(2, 128, SbrConfig::new(100, 64)).unwrap();
        enc.encode(&rows).unwrap()
    }

    #[test]
    fn f64_profile_is_lossless() {
        let tx = sample_tx();
        let frame = encode(&tx, Profile::F64);
        let back = decode(&mut frame.clone()).unwrap();
        assert_eq!(back, tx);
    }

    #[test]
    fn f32_profile_is_half_size_and_close() {
        let tx = sample_tx();
        let f64_frame = encode(&tx, Profile::F64);
        let f32_frame = encode(&tx, Profile::F32);
        assert!(f32_frame.len() * 10 < f64_frame.len() * 6, "roughly half");
        let back = decode(&mut f32_frame.clone()).unwrap();
        assert_eq!(back.seq, tx.seq);
        for (a, b) in back.intervals.iter().zip(&tx.intervals) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.shift, b.shift);
            assert!((a.a - b.a).abs() <= b.a.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn q16_base_samples_within_bound() {
        let tx = sample_tx();
        let frame = encode(&tx, Profile::Q16);
        let back = decode(&mut frame.clone()).unwrap();
        for (u, v) in back.base_updates.iter().zip(&tx.base_updates) {
            let lo = v.values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bound = q16_error_bound(lo, hi) + 1e-12;
            for (a, b) in u.values.iter().zip(&v.values) {
                assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
            }
        }
    }

    #[test]
    fn q16_end_to_end_reconstruction_stays_accurate() {
        // A full stream through the Q16 profile: the reconstruction error
        // must stay within a few percent of the exact-profile error.
        let mut enc = SbrEncoder::new(2, 128, SbrConfig::new(100, 64)).unwrap();
        let mut exact_dec = Decoder::new();
        let mut q_dec = Decoder::new();
        for t in 0..4 {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..128)
                        .map(|i| ((i + t * 13) as f64 * 0.19 + r as f64).sin() * 9.0)
                        .collect()
                })
                .collect();
            let tx = enc.encode(&rows).unwrap();
            let exact = exact_dec.decode(&tx).unwrap();
            let q_tx = decode(&mut encode(&tx, Profile::Q16).clone()).unwrap();
            let quant = q_dec.decode(&q_tx).unwrap();
            let mut exact_err = 0.0;
            let mut quant_err = 0.0;
            for ((o, e), q) in rows.iter().zip(&exact).zip(&quant) {
                exact_err += ErrorMetric::Sse.score(o, e);
                quant_err += ErrorMetric::Sse.score(o, q);
            }
            assert!(
                quant_err <= exact_err * 1.10 + 1e-6,
                "tx {t}: quantized {quant_err} vs exact {exact_err}"
            );
        }
    }

    #[test]
    fn profiles_autodetect() {
        let tx = sample_tx();
        for p in [Profile::F64, Profile::F32, Profile::Q16] {
            let frame = encode(&tx, p);
            let back = decode(&mut frame.clone()).unwrap();
            assert_eq!(back.seq, tx.seq);
            assert_eq!(back.intervals.len(), tx.intervals.len());
        }
    }

    #[test]
    fn bad_profile_id_rejected() {
        let tx = sample_tx();
        let mut frame = encode(&tx, Profile::F32).to_vec();
        frame[4] = 99;
        assert!(decode(&mut &frame[..]).is_err());
    }

    #[test]
    fn q16_rejects_corrupt_range() {
        let tx = sample_tx();
        let mut frame = encode(&tx, Profile::Q16).to_vec();
        // Overwrite the first block's `lo` with NaN (offset: outer 5 +
        // header 28 + slot 4).
        let off = 5 + 28 + 4;
        frame[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        if tx.base_updates.is_empty() {
            // No base update → the corrupt offset lands in the intercept
            // block instead; either way decode must fail.
        }
        assert!(decode(&mut &frame[..]).is_err());
    }
}
