//! `Search` (Algorithm 7) + `CalculateError` (Algorithm 6): binary search on
//! the number of candidate base intervals to actually insert.
//!
//! Inserting a candidate costs `W + 1` values of bandwidth that are no
//! longer available for approximation intervals, so the batch error as a
//! function of the insertion count is (assumed) unimodal: richer dictionary
//! vs. fewer intervals. The search probes `O(log maxIns)` counts, each probe
//! running a full `GetIntervals` against the would-be dictionary, and
//! memoizes results.

use crate::base_signal::BaseSignal;
use crate::config::SbrConfig;
use crate::get_intervals::{get_intervals, get_intervals_with};
use crate::interval::IntervalRecord;
use crate::probe_cache::ProbeCache;
use crate::series::MultiSeries;

/// Memoizing probe driver for one transmission's insertion-count decision.
pub struct SearchContext<'a> {
    base: &'a BaseSignal,
    candidates: &'a [Vec<f64>],
    data: &'a MultiSeries,
    w: usize,
    config: &'a SbrConfig,
    errors: Vec<Option<f64>>,
    scratch: Vec<f64>,
    probes: usize,
}

impl<'a> SearchContext<'a> {
    /// Set up a search over inserting `0..=candidates.len()` of the ranked
    /// candidates into `base`.
    pub fn new(
        base: &'a BaseSignal,
        candidates: &'a [Vec<f64>],
        data: &'a MultiSeries,
        w: usize,
        config: &'a SbrConfig,
    ) -> Self {
        SearchContext {
            base,
            candidates,
            data,
            w,
            config,
            errors: vec![None; candidates.len() + 1],
            scratch: Vec::new(),
            probes: 0,
        }
    }

    /// Run the search; returns `Ins`, the number of candidates to insert
    /// (0 ..= candidates.len()). Binary search by default (Algorithm 7);
    /// exhaustive probing under
    /// [`SbrConfig::exhaustive_search`](crate::SbrConfig).
    ///
    /// Under [`SbrConfig::probe_cache`] (the default) the probes share fit
    /// work through an incremental [`ProbeCache`]; the selected count and
    /// the memoized errors are bit-identical to the legacy re-fit path.
    pub fn run(&mut self) -> usize {
        if self.candidates.is_empty() {
            return 0;
        }
        if !self.config.probe_cache {
            return if self.config.exhaustive_search {
                self.run_exhaustive(None)
            } else {
                self.search(0, self.candidates.len(), None)
            };
        }
        // Concatenate the full dictionary once into the recycled scratch
        // buffer; the cache borrows it for the whole search.
        let mut buf = std::mem::take(&mut self.scratch);
        {
            let cands: Vec<&[f64]> = self.candidates.iter().map(Vec::as_slice).collect();
            self.base.flat_with_appended(&cands, &mut buf);
        }
        let ins = {
            let cache = ProbeCache::new(&buf, self.data, self.config, self.w, self.base.len());
            let ins = if self.config.exhaustive_search {
                self.run_exhaustive(Some(&cache))
            } else {
                self.search(0, self.candidates.len(), Some(&cache))
            };
            cache.publish();
            ins
        };
        self.scratch = buf;
        ins
    }

    /// Probe every insertion count; ground truth for the unimodality
    /// assumption behind Algorithm 7.
    fn run_exhaustive(&mut self, cache: Option<&ProbeCache<'_>>) -> usize {
        let all: Vec<usize> = (0..=self.candidates.len()).collect();
        self.prefetch(cache, &all);
        let mut best = 0;
        let mut best_err = self.probe(cache, 0);
        for pos in 1..=self.candidates.len() {
            let e = self.probe(cache, pos);
            if e < best_err {
                best = pos;
                best_err = e;
            }
        }
        best
    }

    /// How many `GetIntervals` probes the search performed (memoized probes
    /// are not re-counted) — exposed for the complexity tests.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Memoized batch error after inserting the first `pos` candidates.
    /// (Probes after [`SearchContext::run`] use the legacy path; the values
    /// are bit-identical to cached ones either way.)
    pub fn error_at(&mut self, pos: usize) -> f64 {
        self.probe(None, pos)
    }

    /// Memoized probe, optionally served through the probe cache.
    fn probe(&mut self, cache: Option<&ProbeCache<'_>>, pos: usize) -> f64 {
        if let Some(e) = self.errors[pos] {
            return e;
        }
        self.probes += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        let e = self.compute_error(cache, pos, &mut scratch);
        self.scratch = scratch;
        self.errors[pos] = Some(e);
        e
    }

    /// The probe itself, memo-free: one full `GetIntervals` run against the
    /// would-be dictionary (or `∞` when `pos` insertions exhaust the
    /// budget). Shared by the serial memoized path and the parallel
    /// prefetch. With a cache the split-tree evaluation pulls its fits from
    /// the cache's probe-`pos` oracle instead of re-sweeping the dictionary;
    /// `scratch` is only used by the legacy path.
    fn compute_error(
        &self,
        cache: Option<&ProbeCache<'_>>,
        pos: usize,
        scratch: &mut Vec<f64>,
    ) -> f64 {
        let _span = self
            .config
            .obs
            .span("sbr_core.search.probe_ns", &self.config.obs.probe_ns);
        let budget = self.config.total_band.saturating_sub(pos * (self.w + 1));
        if budget / IntervalRecord::COST < self.data.n_signals() {
            // Insertions ate the whole budget; this count is infeasible.
            return f64::INFINITY;
        }
        let result = match cache {
            Some(cache) => get_intervals_with(&cache.oracle(pos), self.data, budget, self.config),
            None => {
                let cands: Vec<&[f64]> = self.candidates[..pos].iter().map(Vec::as_slice).collect();
                let x = self.base.flat_with_appended(&cands, scratch);
                get_intervals(x, self.data, budget, self.w, self.config)
            }
        };
        match result {
            Ok(a) => a.total_err,
            Err(_) => f64::INFINITY,
        }
    }

    /// Evaluate any not-yet-memoized probes among `positions` concurrently
    /// and store them in the memo (counted by [`SearchContext::probes`]).
    ///
    /// With one worker thread this is a no-op: the serial search then
    /// probes lazily, exactly as before. With more threads the search
    /// speculatively evaluates the at-most-four positions a recursion level
    /// *might* need; the selected insertion count is unaffected (the memo
    /// holds identical values either way), the search merely trades at most
    /// one extra probe per level for running them all in parallel.
    fn prefetch(&mut self, cache: Option<&ProbeCache<'_>>, positions: &[usize]) {
        let threads = self.config.resolved_threads();
        if threads <= 1 {
            return;
        }
        let mut missing: Vec<usize> = positions
            .iter()
            .copied()
            .filter(|&p| p < self.errors.len() && self.errors[p].is_none())
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.len() < 2 {
            return;
        }
        // One scratch buffer per worker thread, reused across every probe
        // that worker claims — mirrors the serial path's `self.scratch`
        // recycling instead of allocating a fresh dictionary buffer per
        // probe.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let values = crate::par::par_map(missing.len(), threads, &self.config.obs.par, |i| {
            SCRATCH.with(|s| self.compute_error(cache, missing[i], &mut s.borrow_mut()))
        });
        for (&pos, e) in missing.iter().zip(values) {
            self.errors[pos] = Some(e);
            self.probes += 1;
        }
    }

    /// Algorithm 7, verbatim (plus a speculative parallel prefetch of the
    /// level's probe positions when threading is enabled).
    fn search(&mut self, start: usize, end: usize, cache: Option<&ProbeCache<'_>>) -> usize {
        if end == start {
            return start;
        }
        let middle = (start + end) / 2;
        self.prefetch(cache, &[start, middle, middle + 1, end]);
        let e_mid = self.probe(cache, middle);
        let e_start = self.probe(cache, start);
        if e_mid > e_start {
            let e_end = self.probe(cache, end);
            if e_end > e_start {
                self.search(start, middle, cache)
            } else {
                self.search(middle, end, cache)
            }
        } else {
            let e_next = self.probe(cache, middle + 1);
            if e_next < e_mid {
                self.search(middle + 1, end, cache)
            } else {
                self.search(start, middle, cache)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::ErrorMetric;

    fn wiggle(seed: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 1.1 + seed).sin() * 4.0 + (i as f64 * 0.31 + seed).cos() * 2.0)
            .collect()
    }

    /// Data made of affine images of `n_patterns` distinct wiggles, so the
    /// optimal dictionary size is discoverable.
    fn patterned_series(n_patterns: usize, w: usize, reps: usize) -> MultiSeries {
        let patterns: Vec<Vec<f64>> = (0..n_patterns).map(|p| wiggle(p as f64 * 9.7, w)).collect();
        let mut row = Vec::new();
        for rep in 0..reps {
            for (pi, p) in patterns.iter().enumerate() {
                let a = 1.0 + 0.3 * rep as f64 + pi as f64;
                let b = rep as f64 - pi as f64;
                row.extend(p.iter().map(|v| a * v + b));
            }
        }
        MultiSeries::from_rows(&[row]).unwrap()
    }

    #[test]
    fn empty_candidates_insert_nothing() {
        let data = patterned_series(1, 8, 4);
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(64, 64).with_w(8);
        let mut s = SearchContext::new(&base, &[], &data, 8, &config);
        assert_eq!(s.run(), 0);
    }

    #[test]
    fn inserts_help_on_patterned_data() {
        let data = patterned_series(2, 8, 6);
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(80, 80).with_w(8);
        let cands = crate::get_base::get_base(&data, 8, 4, ErrorMetric::Sse);
        let mut s = SearchContext::new(&base, &cands, &data, 8, &config);
        let ins = s.run();
        assert!(ins >= 1, "patterned data must trigger insertions");
        // The chosen count is no worse than its neighbours.
        let e = s.error_at(ins);
        if ins > 0 {
            assert!(e <= s.error_at(ins - 1) + 1e-9);
        }
        if ins < cands.len() {
            assert!(e <= s.error_at(ins + 1) + 1e-9);
        }
    }

    #[test]
    fn linear_data_inserts_nothing() {
        // Pure lines are handled perfectly by the fall-back; paying W+1
        // values for dictionary entries can only hurt.
        let row: Vec<f64> = (0..64).map(|i| 2.0 * i as f64).collect();
        let data = MultiSeries::from_rows(&[row]).unwrap();
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(48, 48).with_w(8);
        let cands = crate::get_base::get_base(&data, 8, 4, ErrorMetric::Sse);
        let mut s = SearchContext::new(&base, &cands, &data, 8, &config);
        let ins = s.run();
        assert_eq!(s.error_at(ins), 0.0);
        assert_eq!(ins, 0, "no reason to pay for base intervals");
    }

    #[test]
    fn infeasible_counts_probe_to_infinity() {
        let data = patterned_series(1, 8, 4);
        let base = BaseSignal::new(8);
        // Budget fits one interval and nothing else.
        let config = SbrConfig::new(8, 800).with_w(8);
        let cands = vec![vec![0.0; 8], vec![1.0; 8]];
        let mut s = SearchContext::new(&base, &cands, &data, 8, &config);
        assert!(s.error_at(1).is_infinite());
        assert!(s.error_at(2).is_infinite());
        let ins = s.run();
        assert_eq!(ins, 0);
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let data = patterned_series(2, 8, 6);
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(200, 800).with_w(8);
        let cands = crate::get_base::get_base(&data, 8, 12, ErrorMetric::Sse);
        let n = cands.len();
        let mut s = SearchContext::new(&base, &cands, &data, 8, &config);
        s.run();
        // Each of the O(log n) recursion levels probes at most 3 new
        // positions.
        let bound = 3 * ((n as f64).log2().ceil() as usize + 2);
        assert!(
            s.probes() <= bound,
            "probes {} exceeds O(log n) bound {}",
            s.probes(),
            bound
        );
    }

    #[test]
    fn binary_search_matches_exhaustive_on_real_data() {
        // The unimodality assumption, validated: on patterned data the
        // O(log) search must land within a whisker of the true optimum.
        let data = patterned_series(3, 8, 8);
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(300, 900).with_w(8);
        let cands = crate::get_base::get_base(&data, 8, 10, ErrorMetric::Sse);
        let mut fast = SearchContext::new(&base, &cands, &data, 8, &config);
        let ins_fast = fast.run();
        let mut cfg_ex = config.clone();
        cfg_ex.exhaustive_search = true;
        let mut slow = SearchContext::new(&base, &cands, &data, 8, &cfg_ex);
        let ins_slow = slow.run();
        let e_fast = fast.error_at(ins_fast);
        let e_slow = slow.error_at(ins_slow);
        assert!(
            e_fast <= e_slow * 1.10 + 1e-9,
            "binary {ins_fast} (err {e_fast}) vs exhaustive {ins_slow} (err {e_slow})"
        );
        assert!(slow.probes() >= cands.len(), "exhaustive probes everything");
    }

    #[test]
    fn memoization_prevents_duplicate_probes() {
        let data = patterned_series(1, 8, 4);
        let base = BaseSignal::new(8);
        let config = SbrConfig::new(64, 64).with_w(8);
        let cands = vec![wiggle(0.0, 8)];
        let mut s = SearchContext::new(&base, &cands, &data, 8, &config);
        let a = s.error_at(0);
        let before = s.probes();
        let b = s.error_at(0);
        assert_eq!(a, b);
        assert_eq!(s.probes(), before);
    }
}
