//! Deterministic scoped-thread fan-out for the encoder's independent
//! subproblems (per-slot `BestMap` fits, `GetBase` error-matrix rows,
//! `Search` probes).
//!
//! Work is identified by index; each worker grabs indices from a shared
//! atomic counter, computes results locally, and the results are merged
//! *by index* after all workers join. The scheduling order therefore never
//! influences the output — every thread count (including 1) produces
//! byte-identical results, which the `determinism` integration tests pin
//! down.

// lint:allow(atomics): work-stealing chunk counter for scoped threads, not a metrics channel
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluate `f(0), f(1), …, f(n-1)` and return the results in index order,
/// using up to `threads` scoped worker threads.
///
/// With `threads <= 1` (or trivially small `n`) this is a plain serial map
/// with zero overhead — exactly the pre-threading behaviour. Worker panics
/// propagate to the caller.
///
/// `obs` reports per-thread utilization (items and busy time per worker)
/// when a live recorder is attached; the clock is never read otherwise,
/// and instrumentation never influences scheduling or results.
pub(crate) fn par_map<T, F>(n: usize, threads: usize, obs: &crate::obs::ParObs, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    obs.fanouts.inc();
    let workers = threads.min(n);
    // lint:allow(atomics): shared cursor for the scoped-thread fan-out, not observability state
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // lint:allow(determinism): obs-gated latency probe — timing never feeds encoded output
                    let t0 = obs.enabled().then(std::time::Instant::now);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    if let Some(t0) = t0 {
                        obs.worker_busy_ns.record(t0.elapsed().as_nanos() as u64);
                        obs.worker_items.record(local.len() as u64);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-reachability): join only fails if a worker panicked — propagate, don't mask
            for (i, v) in h.join().expect("sbr worker thread panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        // lint:allow(panic-reachability): the atomic cursor hands each index to exactly one worker
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ParObs;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map(100, threads, &ParObs::default(), |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(
            par_map(0, 4, &ParObs::default(), |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(par_map(1, 4, &ParObs::default(), |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(3, 64, &ParObs::default(), |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "sbr worker thread panicked")]
    fn worker_panic_propagates() {
        par_map(8, 2, &ParObs::default(), |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[cfg(feature = "obs")]
    #[test]
    fn worker_utilization_is_recorded() {
        use crate::obs::{EncodeObs, MetricsRecorder, Recorder as _};
        use std::sync::Arc;
        let rec = Arc::new(MetricsRecorder::new());
        let obs = EncodeObs::new(rec.clone());
        let out = par_map(32, 4, &obs.par, |i| i);
        assert_eq!(out.len(), 32);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("sbr_core.par.fanouts"), Some(1));
        let items = snap.histogram("sbr_core.par.worker_items").unwrap();
        assert_eq!(items.count, 4, "one sample per worker");
        assert_eq!(items.sum, 32, "every item claimed exactly once");
    }
}
