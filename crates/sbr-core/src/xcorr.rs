//! All-shift sliding dot products via FFT cross-correlation.
//!
//! `BestMap` (Algorithm 2) needs `Σ x[s+i]·y[i]` for **every** admissible
//! shift `s` of a data window over the base signal. The direct loop costs
//! `O(B·len)` per interval (`B` = base-signal length); this module computes
//! all shifts at once as a cross-correlation,
//!
//! ```text
//! c[s] = Σ_i x[s+i]·y[i]  =  IFFT( FFT(x) · conj(FFT(y)) )[s],
//! ```
//!
//! in `O((B + len) log (B + len))` using the real-input FFT from `sbr-dsp`.
//! Zero-padding both signals to `m = next_pow2(B)` makes the circular
//! correlation equal the linear one for every shift `s ≤ B − len` (the
//! largest index touched is `s + len − 1 ≤ B − 1 < m`, so nothing wraps).
//!
//! The base signal is fixed across the thousands of `BestMap` calls of one
//! encode, so its spectrum is computed once in an [`XcorrPlan`] and each
//! call pays only one forward and one inverse half-size transform.
//!
//! FFT results carry `~1e-13` relative rounding error, so the kernel is
//! used as a *filter*, not an oracle: `best_map` re-verifies every shift
//! whose approximate error is within a generous band of the approximate
//! minimum using the exact direct summation (see
//! `MapContext::shift_loop_sse_fft`), which keeps the selected
//! `(shift, a, b)` bit-identical to the direct path.

use sbr_dsp::fft::{Complex, RealFftPlan};

/// Reusable cross-correlation plan: the padded FFT length, the precomputed
/// twiddle tables for that length, and the spectrum of the (zero-padded)
/// base signal.
#[derive(Debug, Clone)]
pub struct XcorrPlan {
    /// Padded transform length (`next_pow2(x_len)`, at least 2).
    m: usize,
    /// Unpadded base-signal length.
    x_len: usize,
    /// Twiddle tables shared by every transform of this plan.
    fft: RealFftPlan,
    /// Half spectrum of the zero-padded base signal (`m/2 + 1` bins).
    x_rfft: Vec<Complex>,
}

impl XcorrPlan {
    /// Build a plan for base signal `x` (the twiddle tables plus one
    /// `O(m log m)` transform).
    pub fn new(x: &[f64]) -> Self {
        let x_len = x.len();
        let m = x_len.next_power_of_two().max(2);
        let fft = RealFftPlan::new(m);
        let mut padded = vec![0.0; m];
        padded[..x_len].copy_from_slice(x);
        let x_rfft = fft.rfft(&padded);
        XcorrPlan {
            m,
            x_len,
            fft,
            x_rfft,
        }
    }

    /// Length of the base signal the plan was built for.
    pub fn x_len(&self) -> usize {
        self.x_len
    }

    /// Padded transform length used internally.
    pub fn fft_len(&self) -> usize {
        self.m
    }

    /// `c[s] = Σ_i x[s+i]·y[i]` for every shift `s` in
    /// `0..=x_len − y.len()`. Requires `1 ≤ y.len() ≤ x_len`.
    ///
    /// Accurate to FFT roundoff (`~1e-13` relative); callers that need
    /// exact selection must re-verify near-minimal shifts with
    /// [`sliding_dot_direct`] or an inline loop.
    pub fn sliding_dot(&self, y: &[f64]) -> Vec<f64> {
        let len = y.len();
        assert!(
            len >= 1 && len <= self.x_len,
            "window length {len} out of range for base of length {}",
            self.x_len
        );
        let n_shifts = self.x_len - len + 1;
        let mut padded = vec![0.0; self.m];
        padded[..len].copy_from_slice(y);
        let mut spec = self.fft.rfft(&padded);
        for (c, &xk) in spec.iter_mut().zip(&self.x_rfft) {
            *c = xk * c.conj();
        }
        let mut corr = self.fft.irfft(&spec);
        corr.truncate(n_shifts);
        corr
    }
}

/// Reference direct evaluation of the same all-shift dot products,
/// `O(B·len)`. Used below the crossover size and to re-verify FFT picks.
pub fn sliding_dot_direct(x: &[f64], y: &[f64]) -> Vec<f64> {
    let len = y.len();
    assert!(len >= 1 && len <= x.len());
    (0..=x.len() - len)
        .map(|s| dot(&x[s..s + len], y))
        .collect()
}

/// `Σ x_i·y_i` over two equal-length slices (the exact summation order the
/// pre-FFT direct loop used — re-verification must reproduce it).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Shifts evaluated per block by [`dot_block`] — sized so the straight-line
/// inner loop fills the host's SIMD lanes (8 f64 = one AVX-512 register,
/// two AVX2 registers) while the working set of `x` stays register-resident.
pub const DOT_BLOCK: usize = 8;

/// Evaluate [`DOT_BLOCK`] *consecutive* shifts of `y` over `x` at once:
/// `out[b] = Σ_i x[b + i]·y[i]` for `b` in `0..DOT_BLOCK`.
///
/// Requires `x.len() == y.len() + DOT_BLOCK - 1` (the block's last shift
/// ends exactly at `x`'s end). Each accumulator `out[b]` adds the products
/// `x[b+i]·y[i]` in ascending `i` — the summation order of [`dot`] — so
/// every lane is **bit-identical** to the scalar `dot(&x[b..b+len], y)`.
/// The win is instruction-level: one serial dot is a latency-bound chain of
/// dependent adds, while eight interleaved chains give the autovectorizer
/// straight-line mul-adds over contiguous `x` loads with a broadcast `y`.
#[inline]
pub fn dot_block(x: &[f64], y: &[f64], out: &mut [f64; DOT_BLOCK]) {
    debug_assert_eq!(x.len(), y.len() + DOT_BLOCK - 1);
    *out = [0.0; DOT_BLOCK];
    for (i, &yi) in y.iter().enumerate() {
        let xw = &x[i..i + DOT_BLOCK];
        for b in 0..DOT_BLOCK {
            out[b] += xw[b] * yi;
        }
    }
}

/// Cost-model crossover: `true` when the FFT path is expected to beat the
/// direct loop for a window of `len` samples against a base of `x_len`.
///
/// The direct loop does `(x_len − len + 1)·len` multiply-adds; the FFT path
/// does one forward and one inverse half-size real transform on
/// `m = next_pow2(x_len)` points plus `O(m)` pointwise work, modeled as
/// `FFT_COST_FACTOR · m·log2(m)` flops (the base spectrum is amortized by
/// the plan). The factor was calibrated with `cargo bench -p sbr-bench`
/// (see `benches/kernels.rs`, `xcorr` group): the direct loop vectorizes
/// well, so the break-even sits higher than a naive flop count suggests —
/// measured crossovers land at `direct ≈ 5–6 · m·log2(m)` for
/// `x_len ∈ {512, 1024, 2048}` with the table-driven `RealFftPlan`.
pub fn fft_beats_direct(x_len: usize, len: usize) -> bool {
    if len == 0 || len > x_len {
        return false;
    }
    let m = x_len.next_power_of_two().max(2);
    fft_beats_direct_span(x_len - len + 1, len, m)
}

/// The same cost model for a *region-restricted* sweep: `n_shifts` shifts
/// of a `len`-sample window, evaluated against a plan whose padded
/// transform length is `fft_len`. The direct loop's cost shrinks with the
/// region, the FFT's does not (it always transforms the full padded base),
/// so narrow regions — the probe cache's candidate regions in particular —
/// resolve to the direct loop.
pub fn fft_beats_direct_span(n_shifts: usize, len: usize, fft_len: usize) -> bool {
    if len == 0 || n_shifts == 0 {
        return false;
    }
    const FFT_COST_FACTOR: usize = 6;
    let log2m = fft_len.trailing_zeros() as usize;
    n_shifts * len > FFT_COST_FACTOR * fft_len * log2m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic pseudo-noise, no RNG dependency.
        (0..n)
            .map(|i| {
                let t = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((t >> 33) as f64 / (1u64 << 31) as f64) - 0.5 + (i as f64 * 0.13).sin()
            })
            .collect()
    }

    #[test]
    fn fft_matches_direct_all_shifts() {
        for (b, len) in [(16, 4), (100, 7), (256, 256), (300, 128), (1024, 143)] {
            let x = signal(b, 1);
            let y = signal(len, 2);
            let plan = XcorrPlan::new(&x);
            let fast = plan.sliding_dot(&y);
            let slow = sliding_dot_direct(&x, &y);
            assert_eq!(fast.len(), slow.len());
            let scale: f64 = slow.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (s, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-9 * scale, "shift {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn window_equal_to_base_gives_single_shift() {
        let x = signal(64, 3);
        let plan = XcorrPlan::new(&x);
        let c = plan.sliding_dot(&x);
        assert_eq!(c.len(), 1);
        let exact: f64 = x.iter().map(|v| v * v).sum();
        assert!((c[0] - exact).abs() < 1e-9 * exact.abs().max(1.0));
    }

    #[test]
    fn tiny_base() {
        let x = [2.0];
        let plan = XcorrPlan::new(&x);
        let c = plan.sliding_dot(&[3.0]);
        assert_eq!(c, vec![6.0]);
    }

    #[test]
    #[should_panic]
    fn window_longer_than_base_panics() {
        XcorrPlan::new(&[1.0, 2.0]).sliding_dot(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_block_lanes_are_bit_identical_to_scalar_dot() {
        // The blocked sweep replaces per-shift scalar dots; every lane must
        // reproduce the scalar accumulation bit for bit, including awkward
        // magnitudes where a different summation order would round away.
        for (len, seed) in [(1usize, 5u64), (7, 6), (64, 7), (143, 8)] {
            let x = signal(len + DOT_BLOCK - 1, seed);
            let y: Vec<f64> = signal(len, seed + 100)
                .into_iter()
                .enumerate()
                .map(|(i, v)| v * 10f64.powi((i % 7) as i32 - 3))
                .collect();
            let mut out = [0.0; DOT_BLOCK];
            dot_block(&x, &y, &mut out);
            for (b, &v) in out.iter().enumerate() {
                let exact = dot(&x[b..b + len], &y);
                assert_eq!(
                    v.to_bits(),
                    exact.to_bits(),
                    "lane {b} of len {len} diverged from scalar dot"
                );
            }
        }
    }

    #[test]
    fn crossover_prefers_direct_for_short_windows() {
        assert!(!fft_beats_direct(1024, 8));
        assert!(fft_beats_direct(1024, 256));
        assert!(!fft_beats_direct(16, 20)); // len > x_len
        assert!(!fft_beats_direct(16, 0));
    }
}
