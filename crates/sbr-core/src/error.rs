//! Error type for the SBR library.

use std::fmt;

/// Errors returned by SBR encoding, decoding and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbrError {
    /// The configured bandwidth budget cannot hold even one interval per
    /// input signal (`TotalBand < 4 × N`).
    BudgetTooSmall {
        /// Configured budget in values.
        total_band: usize,
        /// Minimum budget required for the given number of signals.
        required: usize,
    },
    /// The input batch shape does not match what the encoder was built for.
    ShapeMismatch {
        /// Expected number of signals.
        expected_signals: usize,
        /// Expected samples per signal.
        expected_len: usize,
        /// What was actually provided (signals, first mismatching length).
        got: (usize, usize),
    },
    /// A configuration parameter is invalid (zero sizes, `W` larger than the
    /// data, …). The message describes the offending parameter.
    InvalidConfig(String),
    /// A serialized transmission could not be parsed.
    Corrupt(String),
    /// A transmission references base-signal slots the decoder has never
    /// seen, or was applied out of order.
    InconsistentState(String),
}

impl fmt::Display for SbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbrError::BudgetTooSmall {
                total_band,
                required,
            } => write!(
                f,
                "bandwidth budget {total_band} is below the minimum {required} \
                 (4 values per input signal)"
            ),
            SbrError::ShapeMismatch {
                expected_signals,
                expected_len,
                got,
            } => write!(
                f,
                "batch shape mismatch: encoder expects {expected_signals} signals of \
                 {expected_len} samples, got {} signals / length {}",
                got.0, got.1
            ),
            SbrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SbrError::Corrupt(msg) => write!(f, "corrupt transmission: {msg}"),
            SbrError::InconsistentState(msg) => write!(f, "inconsistent decoder state: {msg}"),
        }
    }
}

impl std::error::Error for SbrError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SbrError>;
