//! Error type for the SBR library.

use std::fmt;

/// Errors returned by SBR encoding, decoding and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbrError {
    /// The configured bandwidth budget cannot hold even one interval per
    /// input signal (`TotalBand < 4 × N`).
    BudgetTooSmall {
        /// Configured budget in values.
        total_band: usize,
        /// Minimum budget required for the given number of signals.
        required: usize,
    },
    /// The input batch shape does not match what the encoder was built for.
    ShapeMismatch {
        /// Expected number of signals.
        expected_signals: usize,
        /// Expected samples per signal.
        expected_len: usize,
        /// What was actually provided (signals, first mismatching length).
        got: (usize, usize),
    },
    /// A configuration parameter is invalid (zero sizes, `W` larger than the
    /// data, …). The message describes the offending parameter.
    InvalidConfig(String),
    /// A serialized transmission could not be parsed.
    Corrupt(String),
    /// A transmission references base-signal slots the decoder has never
    /// seen, or was applied out of order.
    InconsistentState(String),
    /// A frame arrived out of order or after a loss: the receiver expected
    /// sequence `expected` from `node` but saw `got`. Applying it against the
    /// current (stale) base-signal replica would silently corrupt every later
    /// chunk, so the frame is rejected instead.
    Gap {
        /// The sensor node the stream belongs to (0 when the decoder is not
        /// bound to a node).
        node: u64,
        /// Sequence number the receiver expected next.
        expected: u64,
        /// Sequence number the frame actually carried.
        got: u64,
    },
}

impl fmt::Display for SbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbrError::BudgetTooSmall {
                total_band,
                required,
            } => write!(
                f,
                "bandwidth budget {total_band} is below the minimum {required} \
                 (4 values per input signal)"
            ),
            SbrError::ShapeMismatch {
                expected_signals,
                expected_len,
                got,
            } => write!(
                f,
                "batch shape mismatch: encoder expects {expected_signals} signals of \
                 {expected_len} samples, got {} signals / length {}",
                got.0, got.1
            ),
            SbrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SbrError::Corrupt(msg) => write!(f, "corrupt transmission: {msg}"),
            SbrError::InconsistentState(msg) => write!(f, "inconsistent decoder state: {msg}"),
            SbrError::Gap {
                node,
                expected,
                got,
            } => write!(
                f,
                "sequence gap on node {node}: expected frame {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for SbrError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SbrError>;
