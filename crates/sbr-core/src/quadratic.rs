//! Quadratic (non-linear) encodings — the future-work direction of §6:
//! *"to what extent non-linear encodings over the base signal values would
//! benefit the approximations obtained"*.
//!
//! Fits `ŷ = a·x² + b·x + c` by least squares (3×3 normal equations via
//! Gaussian elimination with partial pivoting). A quadratic record costs
//! **5** values against the base signal (`start, shift, a, b, c`) or **4**
//! under the time-index fall-back (no `shift`), so whether the extra
//! parameter pays for itself is an empirical question — the `ablations`
//! bench answers it.

use crate::metric::ErrorMetric;

/// Result of a quadratic fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadFit {
    /// Coefficient of `x²`.
    pub a: f64,
    /// Coefficient of `x`.
    pub b: f64,
    /// Constant term.
    pub c: f64,
    /// SSE of the fit.
    pub err: f64,
}

impl QuadFit {
    /// A fit worse than any real fit.
    pub const WORST: QuadFit = QuadFit {
        a: 0.0,
        b: 0.0,
        c: 0.0,
        err: f64::INFINITY,
    };

    /// Evaluate the parabola at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        (self.a * x + self.b) * x + self.c
    }
}

/// Solve the 3×3 system `m · sol = rhs` in place. Returns `None` when the
/// matrix is (numerically) singular.
fn solve3(mut m: [[f64; 3]; 3], mut rhs: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Partial pivoting.
        let pivot = (col..3).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 * (1.0 + m[0][0].abs()) {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = m[row][col] / m[col][col];
            let (pivot_row, rest) = m.split_at_mut(col + 1);
            let _ = rest;
            let pivot = pivot_row[col];
            m[row]
                .iter_mut()
                .zip(pivot.iter())
                .skip(col)
                .for_each(|(a, &p)| *a -= f * p);
            rhs[row] -= f * rhs[col];
        }
    }
    let mut sol = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..3 {
            acc -= m[row][k] * sol[k];
        }
        sol[row] = acc / m[row][row];
    }
    Some(sol)
}

/// Least-squares quadratic fit of `y` against `x`. Falls back to the
/// linear fit when the normal equations are singular (e.g. constant `x`).
pub fn fit_quadratic(x: &[f64], y: &[f64]) -> QuadFit {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    // Center x for conditioning: fit in u = x − mean(x).
    let mean_x = x.iter().sum::<f64>() / n;
    let (mut s1, mut s2, mut s3, mut s4) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut sy, mut suy, mut su2y, mut syy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (&xi, &yi) in x.iter().zip(y) {
        let u = xi - mean_x;
        let u2 = u * u;
        s1 += u;
        s2 += u2;
        s3 += u2 * u;
        s4 += u2 * u2;
        sy += yi;
        suy += u * yi;
        su2y += u2 * yi;
        syy += yi * yi;
    }
    let m = [[s4, s3, s2], [s3, s2, s1], [s2, s1, n]];
    let rhs = [su2y, suy, sy];
    let Some([a, bu, cu]) = solve3(m, rhs) else {
        let f = crate::regression::fit_sse(x, y);
        return QuadFit {
            a: 0.0,
            b: f.a,
            c: f.b,
            err: f.err,
        };
    };
    // Un-center: y = a(x−μ)² + bu(x−μ) + cu.
    let b = bu - 2.0 * a * mean_x;
    let c = a * mean_x * mean_x - bu * mean_x + cu;
    // Residual via the centered sums (numerically stable):
    // err = Σy² − a·Σu²y − bu·Σuy − cu·Σy.
    let err = (syy - a * su2y - bu * suy - cu * sy).max(0.0);
    QuadFit { a, b, c, err }
}

/// Quadratic fit against the time index `0..len`.
pub fn fit_quadratic_index(y: &[f64]) -> QuadFit {
    let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
    fit_quadratic(&x, y)
}

/// Evaluate a quadratic fit's error under an arbitrary metric (used by the
/// ablation harness to compare encodings fairly).
pub fn eval_quadratic(metric: ErrorMetric, f: &QuadFit, x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    match metric {
        ErrorMetric::Sse => {
            for (&xi, &yi) in x.iter().zip(y) {
                let d = yi - f.eval(xi);
                acc += d * d;
            }
        }
        ErrorMetric::RelativeSse { sanity } => {
            for (&xi, &yi) in x.iter().zip(y) {
                let d = (yi - f.eval(xi)) / yi.abs().max(sanity);
                acc += d * d;
            }
        }
        ErrorMetric::MaxAbs => {
            for (&xi, &yi) in x.iter().zip(y) {
                acc = acc.max((yi - f.eval(xi)).abs());
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn recovers_exact_parabola() {
        let x: Vec<f64> = (0..32).map(|i| i as f64 * 0.5 - 4.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v * v - 3.0 * v + 1.0).collect();
        let f = fit_quadratic(&x, &y);
        assert_close(f.a, 2.0, 1e-8);
        assert_close(f.b, -3.0, 1e-8);
        assert_close(f.c, 1.0, 1e-8);
        assert_close(f.err, 0.0, 1e-6);
    }

    #[test]
    fn never_worse_than_linear() {
        let x: Vec<f64> = (0..24).map(|i| ((i * 13) % 7) as f64).collect();
        let y: Vec<f64> = (0..24).map(|i| ((i * 5) % 11) as f64 - 3.0).collect();
        let quad = fit_quadratic(&x, &y);
        let lin = crate::regression::fit_sse(&x, &y);
        assert!(quad.err <= lin.err + 1e-9);
    }

    #[test]
    fn constant_x_falls_back_to_linear_path() {
        let x = vec![2.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let f = fit_quadratic(&x, &y);
        assert!(f.err.is_finite());
        assert_close(f.eval(2.0), 4.5, 1e-9); // the mean
    }

    #[test]
    fn err_matches_direct_evaluation() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos() * 5.0).collect();
        let f = fit_quadratic(&x, &y);
        let direct = eval_quadratic(ErrorMetric::Sse, &f, &x, &y);
        assert_close(f.err, direct, 1e-7 * (1.0 + direct));
    }

    #[test]
    fn index_variant_fits_trajectories() {
        // A projectile-like arc over time.
        let y: Vec<f64> = (0..50)
            .map(|t| {
                let t = t as f64;
                -0.5 * t * t + 20.0 * t + 3.0
            })
            .collect();
        let f = fit_quadratic_index(&y);
        assert_close(f.err, 0.0, 1e-5);
        let lin = crate::regression::fit_sse_index(&y);
        assert!(lin.err > 1e3, "a line cannot track an arc");
    }

    #[test]
    fn solve3_rejects_singular() {
        let m = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert!(solve3(m, [1.0, 2.0, 1.0]).is_none());
    }
}
