//! Wire codec: a compact, self-describing binary framing for
//! [`Transmission`]s, suitable for the radio link of the sensor-network
//! substrate and for the base station's append-only log files.
//!
//! v1 layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x53_42_52_31 ("SBR1")
//! seq    u64
//! n      u32   signals
//! m      u32   samples per signal
//! w      u32   base-interval width
//! nu     u32   base updates
//! ni     u32   interval records
//! nu × { slot u64, w × f64 }
//! ni × { start u64, shift i64, a f64, b f64 }
//! ```
//!
//! v2 layout (little-endian) wraps the same payload in a loss-tolerant
//! envelope: a frame kind, a resync epoch, an optional base-signal
//! snapshot, and a trailing CRC-32 over every preceding byte so any
//! single-byte corruption is detected instead of decoding to garbage:
//!
//! ```text
//! magic  u32  = 0x53_42_52_32 ("SBR2")
//! kind   u8    0 = data, 1 = resync
//! epoch  u32   resync generation
//! seq    u64
//! n      u32   signals
//! m      u32   samples per signal
//! w      u32   base-interval width
//! ns     u32   snapshot slots (resync only, else 0)
//! nu     u32   base updates
//! ni     u32   interval records
//! ns × ( w × f64 )                          base-signal snapshot
//! nu × { slot u64, w × f64 }
//! ni × { start u64, shift i64, a f64, b f64 }
//! crc    u32   CRC-32 (IEEE) of all preceding bytes
//! ```
//!
//! [`decode_any`] sniffs the magic and accepts both: v1 frames surface as
//! epoch-0 data [`Frame`]s, keeping pre-v2 logs replayable forever.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, SbrError};
use crate::interval::IntervalRecord;
use crate::transmission::{BaseUpdate, Frame, FrameKind, Transmission};

/// Frame magic: "SBR1".
pub const MAGIC: u32 = 0x5342_5231;

/// v2 frame magic: "SBR2".
pub const MAGIC_V2: u32 = 0x5342_5232;

/// v2 header size in bytes (magic through `ni`).
const V2_HEADER: usize = 4 + 1 + 4 + 8 + 4 * 6;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time — the stack stays std-only.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // lint:allow(index): const-eval loop, i < 256 by the while bound
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 hasher used while reading fields off a generic
/// [`Buf`]; [`crc32`] is the one-shot convenience over a slice.
#[derive(Debug, Clone)]
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            // lint:allow(index): subscript is masked with & 0xFF into a [u32; 256] table
            self.state = CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC-32 (IEEE) of a byte slice. `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Serialized size of a transmission in bytes.
pub fn encoded_len(tx: &Transmission) -> usize {
    4 + 8
        + 4 * 4
        + 4
        + tx.base_updates
            .iter()
            .map(|u| 8 + 8 * u.values.len())
            .sum::<usize>()
        + tx.intervals.len() * (8 + 8 + 8 + 8)
}

/// Serialize a transmission into a byte frame.
pub fn encode(tx: &Transmission) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(tx));
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(tx.seq);
    buf.put_u32_le(tx.n_signals);
    buf.put_u32_le(tx.samples_per_signal);
    buf.put_u32_le(tx.w);
    // lint:allow(cast-truncation): counts are memory-bounded far below u32::MAX; encode is infallible by contract
    buf.put_u32_le(tx.base_updates.len() as u32);
    buf.put_u32_le(tx.intervals.len() as u32); // lint:allow(cast-truncation): same bound as the update count above
    for u in &tx.base_updates {
        buf.put_u64_le(u.slot);
        for &v in &u.values {
            buf.put_f64_le(v);
        }
    }
    for r in &tx.intervals {
        buf.put_u64_le(r.start);
        buf.put_i64_le(r.shift);
        buf.put_f64_le(r.a);
        buf.put_f64_le(r.b);
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(SbrError::Corrupt(format!(
            "truncated frame: needed {n} bytes for {what}, {} left",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Parse one transmission from a byte frame, consuming exactly its bytes.
pub fn decode(buf: &mut impl Buf) -> Result<Transmission> {
    need(buf, 4 + 8 + 4 * 4 + 4, "header")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SbrError::Corrupt(format!("bad magic {magic:#010x}")));
    }
    decode_v1_body(buf)
}

/// Parse the v1 frame remainder after the magic has been consumed.
fn decode_v1_body(buf: &mut impl Buf) -> Result<Transmission> {
    need(buf, 8 + 4 * 4 + 4, "header")?;
    let seq = buf.get_u64_le();
    let n_signals = buf.get_u32_le();
    let samples_per_signal = buf.get_u32_le();
    let w = buf.get_u32_le();
    let nu = buf.get_u32_le() as usize;
    let ni = buf.get_u32_le() as usize;
    if w == 0 || n_signals == 0 || samples_per_signal == 0 {
        return Err(SbrError::Corrupt("zero dimension in header".into()));
    }
    let w_us = usize::try_from(w).map_err(|_| SbrError::Corrupt("W overflows usize".into()))?;
    // Sanity: refuse frames whose declared sizes exceed the buffer (guards
    // against allocating on attacker-controlled lengths). All arithmetic is
    // checked — these counts come straight off the wire.
    let declared = nu
        .checked_mul(8 + 8 * w_us)
        .and_then(|a| ni.checked_mul(32).and_then(|b| a.checked_add(b)))
        .ok_or_else(|| SbrError::Corrupt("declared payload size overflows".into()))?;
    need(buf, declared, "payload")?;

    let mut base_updates = Vec::with_capacity(nu);
    for _ in 0..nu {
        let slot = buf.get_u64_le();
        let mut values = Vec::with_capacity(w_us);
        for _ in 0..w {
            values.push(buf.get_f64_le());
        }
        base_updates.push(BaseUpdate { slot, values });
    }
    let mut intervals = Vec::with_capacity(ni);
    for _ in 0..ni {
        intervals.push(IntervalRecord {
            start: buf.get_u64_le(),
            shift: buf.get_i64_le(),
            a: buf.get_f64_le(),
            b: buf.get_f64_le(),
        });
    }
    Ok(Transmission {
        seq,
        n_signals,
        samples_per_signal,
        w,
        base_updates,
        intervals,
    })
}

/// Serialized size of a v2 frame in bytes (header + snapshot + payload +
/// CRC trailer).
pub fn encoded_len_v2(frame: &Frame) -> usize {
    V2_HEADER
        + 8 * frame.snapshot.len()
        + frame
            .tx
            .base_updates
            .iter()
            .map(|u| 8 + 8 * u.values.len())
            .sum::<usize>()
        + frame.tx.intervals.len() * 32
        + 4
}

/// Serialize a v2 frame, appending a CRC-32 of everything written.
///
/// # Panics
///
/// If the snapshot length is not a multiple of `tx.w`, or a data frame
/// carries a snapshot — both are programmer errors, not wire conditions.
pub fn encode_v2(frame: &Frame) -> Bytes {
    // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
    let w = frame.tx.w as usize;
    assert!(
        w > 0 && frame.snapshot.len().is_multiple_of(w),
        "snapshot length {} is not a multiple of W = {w}",
        frame.snapshot.len()
    );
    assert!(
        frame.kind == FrameKind::Resync || frame.snapshot.is_empty(),
        "data frames must not carry a base-signal snapshot"
    );
    let mut buf = BytesMut::with_capacity(encoded_len_v2(frame));
    buf.put_u32_le(MAGIC_V2);
    buf.put_u8(match frame.kind {
        FrameKind::Data => 0,
        FrameKind::Resync => 1,
    });
    buf.put_u32_le(frame.epoch);
    buf.put_u64_le(frame.tx.seq);
    buf.put_u32_le(frame.tx.n_signals);
    buf.put_u32_le(frame.tx.samples_per_signal);
    buf.put_u32_le(frame.tx.w);
    // lint:allow(panic-reachability): w asserted positive at function entry
    buf.put_u32_le((frame.snapshot.len() / w) as u32); // lint:allow(cast-truncation): snapshot rows are memory-bounded below u32::MAX
                                                       // lint:allow(cast-truncation): counts are memory-bounded far below u32::MAX; encode is infallible by contract
    buf.put_u32_le(frame.tx.base_updates.len() as u32);
    buf.put_u32_le(frame.tx.intervals.len() as u32); // lint:allow(cast-truncation): same bound as the update count above
    for &v in &frame.snapshot {
        buf.put_f64_le(v);
    }
    for u in &frame.tx.base_updates {
        buf.put_u64_le(u.slot);
        for &v in &u.values {
            buf.put_f64_le(v);
        }
    }
    for r in &frame.tx.intervals {
        buf.put_u64_le(r.start);
        buf.put_i64_le(r.shift);
        buf.put_f64_le(r.a);
        buf.put_f64_le(r.b);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Peek a v2 frame's trace identity — `(is_resync, epoch, seq)` — from
/// its first 17 header bytes, without a full parse or CRC check. Returns
/// `None` for short buffers or a non-v2 magic. Observability layers use
/// this to attribute lifecycle events to a `(node, epoch, seq)` frame id
/// without paying for a decode; a corrupted frame may yield a garbled
/// identity, which is exactly what a corruption event should report.
pub fn peek_v2_identity(bytes: &[u8]) -> Option<(bool, u32, u64)> {
    let magic = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?);
    if magic != MAGIC_V2 {
        return None;
    }
    let kind = *bytes.get(4)?;
    let epoch = u32::from_le_bytes(bytes.get(5..9)?.try_into().ok()?);
    let seq = u64::from_le_bytes(bytes.get(9..17)?.try_into().ok()?);
    Some((kind == 1, epoch, seq))
}

/// Read `N` bytes off the buffer, feeding them through the CRC hasher.
fn take<const N: usize>(buf: &mut impl Buf, crc: &mut Crc32) -> [u8; N] {
    let mut bytes = [0u8; N];
    buf.copy_to_slice(&mut bytes);
    crc.update(&bytes);
    bytes
}

fn take_u32(buf: &mut impl Buf, crc: &mut Crc32) -> u32 {
    u32::from_le_bytes(take(buf, crc))
}

fn take_u64(buf: &mut impl Buf, crc: &mut Crc32) -> u64 {
    u64::from_le_bytes(take(buf, crc))
}

fn take_i64(buf: &mut impl Buf, crc: &mut Crc32) -> i64 {
    i64::from_le_bytes(take(buf, crc))
}

fn take_f64(buf: &mut impl Buf, crc: &mut Crc32) -> f64 {
    f64::from_le_bytes(take(buf, crc))
}

/// Parse one v2 frame, consuming exactly its bytes and verifying the
/// trailing CRC-32 before anything is returned.
pub fn decode_v2(buf: &mut impl Buf) -> Result<Frame> {
    need(buf, 4, "magic")?;
    let mut crc = Crc32::new();
    let magic = take_u32(buf, &mut crc);
    if magic != MAGIC_V2 {
        return Err(SbrError::Corrupt(format!("bad magic {magic:#010x}")));
    }
    decode_v2_body(buf, crc)
}

/// Parse the v2 frame remainder after the magic (already hashed into
/// `crc`) has been consumed.
fn decode_v2_body(buf: &mut impl Buf, mut crc: Crc32) -> Result<Frame> {
    need(buf, V2_HEADER - 4, "header")?;
    // lint:allow(index): take::<1> returns [u8; 1], index 0 always exists
    let kind = match take::<1>(buf, &mut crc)[0] {
        0 => FrameKind::Data,
        1 => FrameKind::Resync,
        k => return Err(SbrError::Corrupt(format!("unknown frame kind {k}"))),
    };
    let epoch = take_u32(buf, &mut crc);
    let seq = take_u64(buf, &mut crc);
    let n_signals = take_u32(buf, &mut crc);
    let samples_per_signal = take_u32(buf, &mut crc);
    let w = take_u32(buf, &mut crc);
    let ns = take_u32(buf, &mut crc) as usize;
    let nu = take_u32(buf, &mut crc) as usize;
    let ni = take_u32(buf, &mut crc) as usize;
    if w == 0 || n_signals == 0 || samples_per_signal == 0 {
        return Err(SbrError::Corrupt("zero dimension in header".into()));
    }
    if kind == FrameKind::Data && ns != 0 {
        return Err(SbrError::Corrupt(
            "data frame declares a base-signal snapshot".into(),
        ));
    }
    let w_us = usize::try_from(w).map_err(|_| SbrError::Corrupt("W overflows usize".into()))?;
    // Declared sizes come straight off the wire — checked arithmetic, and
    // the whole payload (incl. the CRC trailer) must fit the buffer before
    // any allocation happens.
    let declared = ns
        .checked_mul(8 * w_us)
        .and_then(|s| nu.checked_mul(8 + 8 * w_us).and_then(|u| s.checked_add(u)))
        .and_then(|su| ni.checked_mul(32).and_then(|i| su.checked_add(i)))
        .and_then(|p| p.checked_add(4))
        .ok_or_else(|| SbrError::Corrupt("declared payload size overflows".into()))?;
    need(buf, declared, "payload")?;

    // `declared` fitting the buffer bounds ns * w_us without overflow.
    let mut snapshot = Vec::with_capacity(ns * w_us);
    for _ in 0..ns * w_us {
        snapshot.push(take_f64(buf, &mut crc));
    }
    let mut base_updates = Vec::with_capacity(nu);
    for _ in 0..nu {
        let slot = take_u64(buf, &mut crc);
        let mut values = Vec::with_capacity(w_us);
        for _ in 0..w {
            values.push(take_f64(buf, &mut crc));
        }
        base_updates.push(BaseUpdate { slot, values });
    }
    let mut intervals = Vec::with_capacity(ni);
    for _ in 0..ni {
        intervals.push(IntervalRecord {
            start: take_u64(buf, &mut crc),
            shift: take_i64(buf, &mut crc),
            a: take_f64(buf, &mut crc),
            b: take_f64(buf, &mut crc),
        });
    }
    let computed = crc.finish();
    let stored = buf.get_u32_le();
    if computed != stored {
        return Err(SbrError::Corrupt(format!(
            "crc mismatch: computed {computed:#010x}, frame carries {stored:#010x}"
        )));
    }
    Ok(Frame {
        epoch,
        kind,
        snapshot,
        tx: Transmission {
            seq,
            n_signals,
            samples_per_signal,
            w,
            base_updates,
            intervals,
        },
    })
}

/// Parse either wire version by sniffing the magic: v1 frames surface as
/// epoch-0 [`FrameKind::Data`] frames, v2 frames decode in full (CRC
/// verified). This is the compat entry point every receiver should use.
pub fn decode_any(buf: &mut impl Buf) -> Result<Frame> {
    need(buf, 4, "magic")?;
    let mut crc = Crc32::new();
    let magic = take_u32(buf, &mut crc);
    match magic {
        MAGIC => Ok(Frame::data(0, decode_v1_body(buf)?)),
        MAGIC_V2 => decode_v2_body(buf, crc),
        _ => Err(SbrError::Corrupt(format!("bad magic {magic:#010x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transmission {
        Transmission {
            seq: 42,
            n_signals: 3,
            samples_per_signal: 64,
            w: 4,
            base_updates: vec![
                BaseUpdate {
                    slot: 0,
                    values: vec![1.0, -2.5, 3.25, 0.0],
                },
                BaseUpdate {
                    slot: 7,
                    values: vec![f64::MIN_POSITIVE, 1e300, -1e-300, 0.5],
                },
            ],
            intervals: vec![
                IntervalRecord {
                    start: 0,
                    shift: -1,
                    a: 1.5,
                    b: -0.25,
                },
                IntervalRecord {
                    start: 64,
                    shift: 3,
                    a: 0.0,
                    b: 9.75,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let tx = sample();
        let bytes = encode(&tx);
        assert_eq!(bytes.len(), encoded_len(&tx));
        let mut buf = bytes.clone();
        let back = decode(&mut buf).unwrap();
        assert_eq!(back, tx);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let tx = sample();
        let mut bytes = encode(&tx).to_vec();
        bytes[0] ^= 0xff;
        assert!(decode(&mut &bytes[..]).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let tx = sample();
        let bytes = encode(&tx);
        for cut in 0..bytes.len() {
            let mut short = &bytes[..cut];
            assert!(decode(&mut short).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn zero_dims_rejected() {
        let mut tx = sample();
        tx.w = 0;
        let bytes = encode(&tx);
        assert!(decode(&mut bytes.clone()).is_err());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let tx = Transmission {
            seq: 0,
            n_signals: 1,
            samples_per_signal: 1,
            w: 1,
            base_updates: vec![],
            intervals: vec![],
        };
        let bytes = encode(&tx);
        assert_eq!(decode(&mut bytes.clone()).unwrap(), tx);
    }

    #[test]
    fn back_to_back_frames_parse() {
        let t0 = sample();
        let mut t1 = sample();
        t1.seq = 43;
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode(&t0));
        stream.extend_from_slice(&encode(&t1));
        let mut buf = stream.freeze();
        assert_eq!(decode(&mut buf).unwrap().seq, 42);
        assert_eq!(decode(&mut buf).unwrap().seq, 43);
        assert_eq!(buf.remaining(), 0);
    }

    // ---------------- v2 ----------------

    fn sample_frame() -> Frame {
        Frame::resync(3, vec![0.5, -1.5, 2.0, 0.25, 9.0, -3.0, 1.0, 4.0], sample())
    }

    #[test]
    fn crc32_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v2_roundtrip_data_and_resync() {
        for frame in [Frame::data(7, sample()), sample_frame()] {
            let bytes = encode_v2(&frame);
            assert_eq!(bytes.len(), encoded_len_v2(&frame));
            let mut buf = bytes.clone();
            assert_eq!(decode_v2(&mut buf).unwrap(), frame);
            assert_eq!(buf.remaining(), 0);
            // decode_any takes the same bytes.
            assert_eq!(decode_any(&mut bytes.clone()).unwrap(), frame);
        }
    }

    #[test]
    fn v2_truncation_rejected_everywhere() {
        let bytes = encode_v2(&sample_frame());
        for cut in 0..bytes.len() {
            let mut short = &bytes[..cut];
            assert!(decode_v2(&mut short).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn v2_every_byte_is_crc_protected() {
        let bytes = encode_v2(&sample_frame()).to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_v2(&mut &bad[..]).is_err(),
                "flip at byte {i} decoded silently"
            );
        }
    }

    #[test]
    fn v2_data_frame_with_snapshot_rejected() {
        // Hand-corrupt the kind byte of a resync frame to Data and re-seal
        // the CRC: the parser must still reject the snapshot.
        let mut bytes = encode_v2(&sample_frame()).to_vec();
        bytes[4] = 0;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]).to_le_bytes();
        bytes[n - 4..].copy_from_slice(&crc);
        let err = decode_v2(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, SbrError::Corrupt(m) if m.contains("snapshot")));
    }

    #[test]
    fn v2_unknown_kind_rejected() {
        let mut bytes = encode_v2(&Frame::data(0, sample())).to_vec();
        bytes[4] = 2;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]).to_le_bytes();
        bytes[n - 4..].copy_from_slice(&crc);
        assert!(decode_v2(&mut &bytes[..]).is_err());
    }

    #[test]
    fn peek_identity_matches_full_decode() {
        let data = encode_v2(&Frame::data(7, sample()));
        let seq = sample().seq;
        assert_eq!(peek_v2_identity(&data), Some((false, 7, seq)));
        let resync = encode_v2(&sample_frame());
        let parsed = decode_v2(&mut resync.clone()).unwrap();
        assert_eq!(
            peek_v2_identity(&resync),
            Some((true, parsed.epoch, parsed.tx.seq))
        );
        // Short buffers and foreign magics peek as None, never panic.
        assert_eq!(peek_v2_identity(&data[..10]), None);
        assert_eq!(peek_v2_identity(&[]), None);
        assert_eq!(peek_v2_identity(&encode(&sample())), None); // v1 frame
    }

    #[test]
    fn decode_any_wraps_v1_as_epoch_zero_data() {
        let tx = sample();
        let frame = decode_any(&mut encode(&tx).clone()).unwrap();
        assert_eq!(frame, Frame::data(0, tx));
    }

    #[test]
    fn mixed_version_frames_parse_back_to_back() {
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode(&sample()));
        stream.extend_from_slice(&encode_v2(&sample_frame()));
        stream.extend_from_slice(&encode_v2(&Frame::data(4, sample())));
        let mut buf = stream.freeze();
        assert_eq!(decode_any(&mut buf).unwrap().epoch, 0);
        assert_eq!(decode_any(&mut buf).unwrap().kind, FrameKind::Resync);
        assert_eq!(decode_any(&mut buf).unwrap().epoch, 4);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn v2_hostile_declared_lengths_rejected() {
        // A v2 header declaring huge counts over a tiny buffer must fail
        // the size guard, not allocate.
        let mut raw = BytesMut::new();
        raw.put_u32_le(MAGIC_V2);
        raw.put_u8(1);
        raw.put_u32_le(1); // epoch
        raw.put_u64_le(0); // seq
        raw.put_u32_le(1); // n
        raw.put_u32_le(1); // m
        raw.put_u32_le(u32::MAX); // w
        raw.put_u32_le(u32::MAX); // ns
        raw.put_u32_le(u32::MAX); // nu
        raw.put_u32_le(u32::MAX); // ni
        assert!(decode_v2(&mut raw.freeze()).is_err());
    }
}
