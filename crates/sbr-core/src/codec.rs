//! Wire codec: a compact, self-describing binary framing for
//! [`Transmission`]s, suitable for the radio link of the sensor-network
//! substrate and for the base station's append-only log files.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x53_42_52_31 ("SBR1")
//! seq    u64
//! n      u32   signals
//! m      u32   samples per signal
//! w      u32   base-interval width
//! nu     u32   base updates
//! ni     u32   interval records
//! nu × { slot u64, w × f64 }
//! ni × { start u64, shift i64, a f64, b f64 }
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, SbrError};
use crate::interval::IntervalRecord;
use crate::transmission::{BaseUpdate, Transmission};

/// Frame magic: "SBR1".
pub const MAGIC: u32 = 0x5342_5231;

/// Serialized size of a transmission in bytes.
pub fn encoded_len(tx: &Transmission) -> usize {
    4 + 8
        + 4 * 4
        + 4
        + tx.base_updates
            .iter()
            .map(|u| 8 + 8 * u.values.len())
            .sum::<usize>()
        + tx.intervals.len() * (8 + 8 + 8 + 8)
}

/// Serialize a transmission into a byte frame.
pub fn encode(tx: &Transmission) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(tx));
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(tx.seq);
    buf.put_u32_le(tx.n_signals);
    buf.put_u32_le(tx.samples_per_signal);
    buf.put_u32_le(tx.w);
    buf.put_u32_le(tx.base_updates.len() as u32);
    buf.put_u32_le(tx.intervals.len() as u32);
    for u in &tx.base_updates {
        buf.put_u64_le(u.slot);
        for &v in &u.values {
            buf.put_f64_le(v);
        }
    }
    for r in &tx.intervals {
        buf.put_u64_le(r.start);
        buf.put_i64_le(r.shift);
        buf.put_f64_le(r.a);
        buf.put_f64_le(r.b);
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(SbrError::Corrupt(format!(
            "truncated frame: needed {n} bytes for {what}, {} left",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Parse one transmission from a byte frame, consuming exactly its bytes.
pub fn decode(buf: &mut impl Buf) -> Result<Transmission> {
    need(buf, 4 + 8 + 4 * 4 + 4, "header")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SbrError::Corrupt(format!("bad magic {magic:#010x}")));
    }
    let seq = buf.get_u64_le();
    let n_signals = buf.get_u32_le();
    let samples_per_signal = buf.get_u32_le();
    let w = buf.get_u32_le();
    let nu = buf.get_u32_le() as usize;
    let ni = buf.get_u32_le() as usize;
    if w == 0 || n_signals == 0 || samples_per_signal == 0 {
        return Err(SbrError::Corrupt("zero dimension in header".into()));
    }
    // Sanity: refuse frames whose declared sizes exceed the buffer (guards
    // against allocating on attacker-controlled lengths). All arithmetic is
    // checked — these counts come straight off the wire.
    let declared = nu
        .checked_mul(8 + 8 * w as usize)
        .and_then(|a| ni.checked_mul(32).and_then(|b| a.checked_add(b)))
        .ok_or_else(|| SbrError::Corrupt("declared payload size overflows".into()))?;
    need(buf, declared, "payload")?;

    let mut base_updates = Vec::with_capacity(nu);
    for _ in 0..nu {
        let slot = buf.get_u64_le();
        let mut values = Vec::with_capacity(w as usize);
        for _ in 0..w {
            values.push(buf.get_f64_le());
        }
        base_updates.push(BaseUpdate { slot, values });
    }
    let mut intervals = Vec::with_capacity(ni);
    for _ in 0..ni {
        intervals.push(IntervalRecord {
            start: buf.get_u64_le(),
            shift: buf.get_i64_le(),
            a: buf.get_f64_le(),
            b: buf.get_f64_le(),
        });
    }
    Ok(Transmission {
        seq,
        n_signals,
        samples_per_signal,
        w,
        base_updates,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transmission {
        Transmission {
            seq: 42,
            n_signals: 3,
            samples_per_signal: 64,
            w: 4,
            base_updates: vec![
                BaseUpdate {
                    slot: 0,
                    values: vec![1.0, -2.5, 3.25, 0.0],
                },
                BaseUpdate {
                    slot: 7,
                    values: vec![f64::MIN_POSITIVE, 1e300, -1e-300, 0.5],
                },
            ],
            intervals: vec![
                IntervalRecord {
                    start: 0,
                    shift: -1,
                    a: 1.5,
                    b: -0.25,
                },
                IntervalRecord {
                    start: 64,
                    shift: 3,
                    a: 0.0,
                    b: 9.75,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let tx = sample();
        let bytes = encode(&tx);
        assert_eq!(bytes.len(), encoded_len(&tx));
        let mut buf = bytes.clone();
        let back = decode(&mut buf).unwrap();
        assert_eq!(back, tx);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let tx = sample();
        let mut bytes = encode(&tx).to_vec();
        bytes[0] ^= 0xff;
        assert!(decode(&mut &bytes[..]).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let tx = sample();
        let bytes = encode(&tx);
        for cut in 0..bytes.len() {
            let mut short = &bytes[..cut];
            assert!(decode(&mut short).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn zero_dims_rejected() {
        let mut tx = sample();
        tx.w = 0;
        let bytes = encode(&tx);
        assert!(decode(&mut bytes.clone()).is_err());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let tx = Transmission {
            seq: 0,
            n_signals: 1,
            samples_per_signal: 1,
            w: 1,
            base_updates: vec![],
            intervals: vec![],
        };
        let bytes = encode(&tx);
        assert_eq!(decode(&mut bytes.clone()).unwrap(), tx);
    }

    #[test]
    fn back_to_back_frames_parse() {
        let t0 = sample();
        let mut t1 = sample();
        t1.seq = 43;
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode(&t0));
        stream.extend_from_slice(&encode(&t1));
        let mut buf = stream.freeze();
        assert_eq!(decode(&mut buf).unwrap().seq, 42);
        assert_eq!(decode(&mut buf).unwrap().seq, 43);
        assert_eq!(buf.remaining(), 0);
    }
}
