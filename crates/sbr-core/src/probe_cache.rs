//! Transmission-scoped incremental probe cache for `Search`.
//!
//! Every `Search` probe `pos` evaluates a full `GetIntervals` against the
//! dictionary `X_pos = base ∥ c₁ ∥ … ∥ c_pos`. Consecutive probes share the
//! entire base prefix and differ in one appended `W`-wide candidate, yet
//! the legacy path re-sweeps the whole dictionary for every interval of
//! every probe. This module decomposes the per-interval fit as
//!
//! ```text
//! best(pos) = min(fallback, best_vs_base_prefix, min_{k ≤ pos} best_vs_candidate_k)
//! ```
//!
//! and caches the pieces per `(start, len)`: the base-prefix sweep is paid
//! once and shared by *all* probes, each candidate region is swept once
//! (when the first probe that includes it asks) and reused by every probe
//! with a larger `pos`, and a probe's answer is a running prefix-min over
//! those folds — `O(1)` per already-folded position.
//!
//! ## Why the prefix-min is exact
//!
//! Probe `pos` admits shifts `0..=L_pos − len` (`L_k = L_base + k·W`).
//! That range partitions exactly into the base region `[0, L_base − len]`
//! (present iff `len ≤ L_base`) and, for each candidate `k ≤ pos`, the
//! region `[max(0, L_{k−1} + 1 − len), L_k − len]` (present iff
//! `len ≤ L_k`) — the shifts whose window ends inside candidate `k`. The
//! regions are disjoint, their union is the full range, and they are
//! folded in ascending shift order with the same strict `<` as the
//! continuous sweep, seeded from the same fall-back fit (or an `∞` seed
//! when the fall-back is disabled). The prefix sums and dot products over
//! `X_full` are bit-identical to those over any prefix `X_pos`, so the
//! selected `(shift, a, b, err)` — including the earliest-shift tie-break
//! and the `shift = −1` fall-back tie floor — matches the legacy sweep bit
//! for bit. The differential suite in `tests/probe_cache_diff.rs` pins
//! byte-identical transmission streams on top of this argument.
//!
//! The cache lives for one `Search` (one transmission); entries are keyed
//! by `(start, len)` because the split tree visits the same intervals in
//! every probe (splitting depends only on `(start, len)` and the data).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::best_map::{MapContext, SweepRegion};
use crate::config::SbrConfig;
use crate::get_intervals::FitOracle;
use crate::interval::Interval;
use crate::series::MultiSeries;

/// One cached fit outcome — the `(shift, a, b, err)` state of an interval
/// after some prefix of the fold.
#[derive(Debug, Clone, Copy)]
struct FitState {
    shift: i64,
    a: f64,
    b: f64,
    err: f64,
}

impl FitState {
    fn capture(iv: &Interval) -> Self {
        FitState {
            shift: iv.shift,
            a: iv.a,
            b: iv.b,
            err: iv.err,
        }
    }

    fn apply(&self, iv: &mut Interval) {
        iv.shift = self.shift;
        iv.a = self.a;
        iv.b = self.b;
        iv.err = self.err;
    }
}

/// Cached folds for one `(start, len)` interval.
struct Entry {
    /// The linear fall-back fit (probes where the interval is not
    /// shiftable use it directly, shiftable probes seed the fold with it).
    fallback: FitState,
    /// `folded[k]` = best fit over the seed, the base prefix, and
    /// candidates `1..=k` — i.e. the answer for probe `pos = k`. Extended
    /// lazily to the largest probe that asked so far.
    folded: Vec<FitState>,
}

/// Aggregate size of a [`ProbeCache`] — entries, cached folds, and an
/// approximate heap footprint in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCacheFootprint {
    /// Distinct `(start, len)` intervals cached.
    pub entries: usize,
    /// Total folded positions across all entries (one per region sweep
    /// actually paid, plus carried seeds).
    pub folded: usize,
    /// Approximate heap bytes held by the cache.
    pub bytes: usize,
}

/// The probe cache: fit state shared across every probe of one `Search`.
///
/// Thread-safe — `Search` prefetches probes concurrently and each probe's
/// `GetIntervals` fans its fits out over worker threads, so an entry may be
/// demanded from several threads at once. The map lock is held only for
/// the lookup; the per-entry lock serializes fold extension, so two probes
/// asking for the same interval never duplicate a sweep.
pub struct ProbeCache<'a> {
    /// Fit context over the *longest* dictionary `X_full = base ∥ all
    /// candidates`; every region sweep is evaluated against it (prefix
    /// sums over `X_full` agree bit for bit with any probe's `X_pos`).
    ctx: MapContext<'a>,
    base_len: usize,
    w: usize,
    #[allow(clippy::type_complexity)]
    entries: Mutex<HashMap<(usize, usize), Arc<Mutex<Entry>>>>,
}

impl<'a> ProbeCache<'a> {
    /// Build a cache for one `Search` over `x_full = base ∥ all
    /// candidates` (`base_len` values of base prefix, then `W`-wide
    /// candidates).
    pub fn new(
        x_full: &'a [f64],
        data: &'a MultiSeries,
        config: &SbrConfig,
        w: usize,
        base_len: usize,
    ) -> Self {
        debug_assert!(
            x_full.len() >= base_len && (x_full.len() - base_len).is_multiple_of(w.max(1))
        );
        ProbeCache {
            ctx: MapContext::new(x_full, data.flat(), config, w),
            base_len,
            w,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// A [`FitOracle`] view of the cache for probe `pos`: fits behave
    /// exactly like `MapContext::best_map` against `X_pos`.
    pub fn oracle(&self, pos: usize) -> ProbeOracle<'_, 'a> {
        ProbeOracle { cache: self, pos }
    }

    /// Fit `interval` as probe `pos` would: serve from the cache, paying
    /// only the folds not yet computed.
    fn fit_probe(&self, pos: usize, interval: &mut Interval) {
        let obs = &self.ctx.obs;
        obs.best_map_calls.inc();
        let (start, len) = (interval.start, interval.length);
        debug_assert!(len > 0 && start + len <= self.ctx.y.len());
        let l_pos = self.base_len + pos * self.w;
        let shiftable = len <= self.ctx.max_shift_len && len <= l_pos;

        let cell = {
            // lint:allow(panic-reachability): poisoning requires a prior worker panic that already failed the run
            let mut map = self.entries.lock().expect("probe cache map poisoned");
            match map.get(&(start, len)) {
                Some(cell) => {
                    obs.cache_hits.inc();
                    Arc::clone(cell)
                }
                None => {
                    obs.cache_misses.inc();
                    let mut iv = Interval::unfitted(start, len);
                    self.ctx.fallback_fit(&mut iv);
                    let cell = Arc::new(Mutex::new(Entry {
                        fallback: FitState::capture(&iv),
                        folded: Vec::new(),
                    }));
                    map.insert((start, len), Arc::clone(&cell));
                    cell
                }
            }
        };
        // lint:allow(panic-reachability): poisoning requires a prior worker panic that already failed the run
        let mut entry = cell.lock().expect("probe cache entry poisoned");
        if !shiftable {
            // Matches the legacy `allow_linear_fallback || !shiftable`
            // branch: a non-shiftable interval always takes the fall-back.
            entry.fallback.apply(interval);
        } else {
            self.extend(&mut entry, start, len, pos);
            entry.folded[pos].apply(interval);
        }
        if interval.is_fallback() {
            obs.fallback_wins.inc();
        } else {
            obs.base_wins.inc();
        }
    }

    /// Grow `entry.folded` up to position `pos`, sweeping each missing
    /// region once. Region bounds partition the continuous shift range —
    /// see the module docs for the exactness argument.
    fn extend(&self, entry: &mut Entry, start: usize, len: usize, pos: usize) {
        while entry.folded.len() <= pos {
            let k = entry.folded.len();
            let mut iv = Interval::unfitted(start, len);
            if k == 0 {
                if self.ctx.allow_linear_fallback {
                    entry.fallback.apply(&mut iv);
                }
                // else: the `∞`-error unfitted seed, exactly the legacy
                // sweep's seed when the fall-back is disabled.
            } else {
                entry.folded[k - 1].apply(&mut iv);
            }
            let l_k = self.base_len + k * self.w;
            if len <= l_k {
                let (lo, region) = if k == 0 {
                    (0, SweepRegion::Base)
                } else {
                    (
                        (l_k - self.w + 1).saturating_sub(len),
                        SweepRegion::Candidate,
                    )
                };
                self.ctx.fold_region(&mut iv, lo, l_k - len, region);
            }
            entry.folded.push(FitState::capture(&iv));
        }
    }

    /// Current cache size. `bytes` is an estimate (map and `Vec` growth
    /// slack is approximated by capacities), exported to the
    /// `sbr_core.probe_cache.bytes` gauge by [`ProbeCache::publish`].
    pub fn footprint(&self) -> ProbeCacheFootprint {
        // lint:allow(panic-reachability): poisoning requires a prior worker panic that already failed the run
        let map = self.entries.lock().expect("probe cache map poisoned");
        let mut folded = 0usize;
        let mut bytes = std::mem::size_of::<Self>();
        for cell in map.values() {
            // lint:allow(panic-reachability): poisoning requires a prior worker panic that already failed the run
            let entry = cell.lock().expect("probe cache entry poisoned");
            folded += entry.folded.len();
            bytes += std::mem::size_of::<(usize, usize)>()
                + std::mem::size_of::<Arc<Mutex<Entry>>>()
                + std::mem::size_of::<Entry>()
                + entry.folded.capacity() * std::mem::size_of::<FitState>();
        }
        ProbeCacheFootprint {
            entries: map.len(),
            folded,
            bytes,
        }
    }

    /// Record the cache footprint into the observability gauge; called by
    /// `Search` once after the probing finishes.
    pub fn publish(&self) {
        if self.ctx.obs.enabled() {
            self.ctx.obs.cache_bytes.set(self.footprint().bytes as f64);
        }
    }
}

/// [`FitOracle`] adapter: the cache viewed as probe `pos`'s dictionary.
pub struct ProbeOracle<'c, 'a> {
    cache: &'c ProbeCache<'a>,
    pos: usize,
}

impl FitOracle for ProbeOracle<'_, '_> {
    fn fit(&self, interval: &mut Interval) {
        self.cache.fit_probe(self.pos, interval);
    }

    fn x_len(&self) -> usize {
        self.cache.base_len + self.pos * self.cache.w
    }

    fn max_shift_len(&self) -> usize {
        self.cache.ctx.max_shift_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_signal::BaseSignal;
    use crate::config::ShiftStrategy;
    use crate::metric::ErrorMetric;

    fn wiggle(seed: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.9 + seed).sin() * 3.0 + (i as f64 * 0.23 + seed).cos())
            .collect()
    }

    /// Exhaustively compare cached fits against fresh `MapContext` fits on
    /// every probe's dictionary prefix, for every `(start, len)` split-tree
    /// node shape and several metrics/strategies.
    #[test]
    fn cached_fits_match_legacy_bit_for_bit() {
        let w = 8;
        let base: Vec<f64> = wiggle(0.0, 3 * w);
        let cands: Vec<Vec<f64>> = (1..=3).map(|k| wiggle(k as f64 * 7.3, w)).collect();
        let y: Vec<f64> = wiggle(11.1, 64);
        let data = MultiSeries::from_rows(&[y]).unwrap();

        let mut bs = BaseSignal::new(w);
        for (slot, chunk) in base.chunks(w).enumerate() {
            bs.apply_insert(slot, chunk, 0).unwrap();
        }

        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::relative(),
            ErrorMetric::MaxAbs,
        ] {
            for strategy in [
                ShiftStrategy::Auto,
                ShiftStrategy::Direct,
                ShiftStrategy::Fft,
            ] {
                for allow_fallback in [true, false] {
                    let mut config = SbrConfig::new(1_000, 1_000)
                        .with_w(w)
                        .with_metric(metric)
                        .with_shift_strategy(strategy);
                    config.allow_linear_fallback = allow_fallback;

                    let mut buf = Vec::new();
                    let refs: Vec<&[f64]> = cands.iter().map(Vec::as_slice).collect();
                    let x_full = bs.flat_with_appended(&refs, &mut buf).to_vec();
                    let cache = ProbeCache::new(&x_full, &data, &config, w, bs.len());

                    for pos in 0..=cands.len() {
                        let x_pos = &x_full[..bs.len() + pos * w];
                        let legacy_ctx = MapContext::new(x_pos, data.flat(), &config, w);
                        for (start, len) in [
                            (0usize, 64usize),
                            (0, 32),
                            (32, 32),
                            (48, 16),
                            (5, 7),
                            (63, 1),
                        ] {
                            let mut want = Interval::unfitted(start, len);
                            legacy_ctx.best_map(&mut want);
                            let mut got = Interval::unfitted(start, len);
                            cache.oracle(pos).fit(&mut got);
                            assert_eq!(
                                (
                                    want.shift,
                                    want.a.to_bits(),
                                    want.b.to_bits(),
                                    want.err.to_bits()
                                ),
                                (
                                    got.shift,
                                    got.a.to_bits(),
                                    got.b.to_bits(),
                                    got.err.to_bits()
                                ),
                                "mismatch at pos={pos} start={start} len={len} \
                                 metric={metric:?} strategy={strategy:?} fallback={allow_fallback}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn base_region_swept_once_across_probes() {
        let w = 8;
        let base = wiggle(1.0, 2 * w);
        let cands: Vec<Vec<f64>> = (1..=4).map(|k| wiggle(k as f64 * 3.1, w)).collect();
        let y = wiggle(5.0, 48);
        let data = MultiSeries::from_rows(&[y]).unwrap();
        let mut bs = BaseSignal::new(w);
        for (slot, chunk) in base.chunks(w).enumerate() {
            bs.apply_insert(slot, chunk, 0).unwrap();
        }
        let config = SbrConfig::new(1_000, 1_000).with_w(w);
        let mut buf = Vec::new();
        let refs: Vec<&[f64]> = cands.iter().map(Vec::as_slice).collect();
        let x_full = bs.flat_with_appended(&refs, &mut buf).to_vec();
        let cache = ProbeCache::new(&x_full, &data, &config, w, bs.len());

        // The same interval across every probe: one entry, folds extended
        // lazily, never recomputed.
        for pos in 0..=cands.len() {
            let mut iv = Interval::unfitted(0, 12);
            cache.oracle(pos).fit(&mut iv);
        }
        // And asked again in reverse: pure prefix-min lookups.
        for pos in (0..=cands.len()).rev() {
            let mut iv = Interval::unfitted(0, 12);
            cache.oracle(pos).fit(&mut iv);
        }
        let fp = cache.footprint();
        assert_eq!(fp.entries, 1, "one (start, len) entry");
        assert_eq!(
            fp.folded,
            cands.len() + 1,
            "one fold per probe position, no duplicates"
        );
        assert!(fp.bytes > 0);
    }
}
