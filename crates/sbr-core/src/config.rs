//! Encoder configuration (Table 1 of the paper) and the pluggable
//! base-signal construction hook.

use crate::error::{Result, SbrError};
use crate::metric::ErrorMetric;
use crate::series::MultiSeries;

/// How `BestMap` evaluates the `Σ x·y` shift sweep under the SSE metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShiftStrategy {
    /// Per-interval cost-model choice between the direct loop and the FFT
    /// cross-correlation kernel (the default; see
    /// [`crate::xcorr::fft_beats_direct`]).
    #[default]
    Auto,
    /// Always use the `O(B·len)` direct loop (the paper's Algorithm 2 as
    /// written).
    Direct,
    /// Always use the FFT kernel (mainly for benchmarking it in isolation;
    /// results are still exact — winning shifts are re-verified with the
    /// direct summation).
    Fft,
}

/// Configuration of an [`SbrEncoder`](crate::SbrEncoder).
///
/// The paper stresses that the user/application supplies only two knobs —
/// the per-transmission bandwidth budget `TotalBand` and the base-signal
/// buffer size `M_base`; everything else is derived. The extra fields here
/// default to the paper's choices and exist for the ablation experiments.
#[derive(Debug, Clone)]
pub struct SbrConfig {
    /// Bandwidth budget per transmission, in values (`TotalBand`).
    pub total_band: usize,
    /// Base-signal buffer size, in values (`M_base`).
    pub m_base: usize,
    /// The error metric to minimize.
    pub metric: ErrorMetric,
    /// Whether `BestMap` may fall back to plain linear regression when the
    /// base signal correlates poorly (on in the paper's main algorithm; off
    /// in the Table 5 base-signal comparison).
    pub allow_linear_fallback: bool,
    /// Override the derived base-interval width `W = ⌊√n⌋`.
    pub w_override: Option<usize>,
    /// `BestMap` only shifts intervals no longer than this multiple of `W`
    /// over the base signal (2 in the paper).
    pub max_shift_len_factor: usize,
    /// When set, `GetIntervals` stops splitting as soon as the batch error
    /// drops to this target, even if budget remains (§4.5 combined
    /// error/space bounds).
    pub error_target: Option<f64>,
    /// Probe every candidate insertion count instead of binary-searching
    /// (Algorithm 7 assumes the error-vs-insertions curve is unimodal;
    /// exhaustive probing is the ground truth the ablation compares
    /// against). Costs `O(maxIns)` `GetIntervals` runs instead of
    /// `O(log maxIns)`.
    pub exhaustive_search: bool,
    /// When false, skip base-signal construction and updating entirely and
    /// only run `GetIntervals` against the current dictionary — the
    /// shortcut §4.4 recommends for constrained deployments once the
    /// dictionary has converged.
    pub update_base: bool,
    /// How the `BestMap` SSE shift sweep is evaluated (direct loop, FFT
    /// cross-correlation, or an automatic cost-model choice). Every
    /// strategy produces identical output; this only affects speed.
    pub shift_strategy: ShiftStrategy,
    /// Share fit work across the insertion-count probes of `Search` through
    /// the incremental [`ProbeCache`](crate::probe_cache::ProbeCache)
    /// (on by default). Probe `pos` and probe `pos − 1` differ only in one
    /// appended `W`-wide candidate, so the fit against the shared base
    /// prefix is computed once per interval and each candidate's region is
    /// swept once, instead of re-fitting everything on every probe. The
    /// encoded stream is byte-identical either way; `false` selects the
    /// legacy re-fit-everything path, kept as the differential-testing
    /// oracle.
    pub probe_cache: bool,
    /// Memoize per-pair `fit(cbi_i, cbi_j).err` values in `GetBase` through
    /// the incremental [`FitCache`](crate::fit_cache::FitCache) (on by
    /// default). Within one batch the greedy loop re-reads memoized rows
    /// instead of re-fitting them; across transmission batches fits for
    /// unchanged candidate content are carried over via content hashes. The
    /// encoded stream is byte-identical either way; `false` selects the
    /// legacy re-fit-everything path, kept as the differential-testing
    /// oracle.
    pub get_base_fit_cache: bool,
    /// Rank `BestMap` shift sweeps with a reduced-precision `f32` Σx·y
    /// pre-screen before re-verifying the candidates exactly in `f64` (the
    /// same filter-and-reverify pattern as the FFT kernel, so the output is
    /// still bit-identical). Off by default; requires the `wire_profile`
    /// feature — without it the knob is inert. Only the SSE metric has the
    /// factored sufficient-statistics sweep, so other metrics ignore it.
    pub f32_prescreen: bool,
    /// Worker threads for the independent `BestMap`/`GetBase` fan-out.
    /// `0` (the default) means one thread per available CPU; `1` disables
    /// threading. Results are deterministic and identical for every value —
    /// work is sharded by index and reduced in index order.
    pub num_threads: usize,
    /// Observability handles for the encode pipeline. Defaults to fully
    /// disabled (every hook a single branch); attach a live recorder with
    /// [`SbrConfig::with_recorder`]. Never affects the output — only what
    /// is measured.
    pub obs: crate::obs::EncodeObs,
}

impl SbrConfig {
    /// A configuration with the paper's defaults for the given budgets.
    pub fn new(total_band: usize, m_base: usize) -> Self {
        SbrConfig {
            total_band,
            m_base,
            metric: ErrorMetric::Sse,
            allow_linear_fallback: true,
            w_override: None,
            max_shift_len_factor: 2,
            error_target: None,
            exhaustive_search: false,
            update_base: true,
            shift_strategy: ShiftStrategy::default(),
            probe_cache: true,
            get_base_fit_cache: true,
            f32_prescreen: false,
            num_threads: 0,
            obs: crate::obs::EncodeObs::default(),
        }
    }

    /// Attach a live metrics recorder (builder style): every pipeline
    /// stage records per-phase timings, strategy decisions and
    /// base-signal churn into it, and spans are traced when the recorder
    /// has a trace sink. Only available with the `obs` feature (on by
    /// default).
    #[cfg(feature = "obs")]
    pub fn with_recorder(mut self, recorder: std::sync::Arc<dyn sbr_obs::Recorder>) -> Self {
        self.obs = crate::obs::EncodeObs::new(recorder);
        self
    }

    /// Share a frame-lifecycle timeline with the encode pipeline (builder
    /// style), so encode-side events land in the same bounded ring as the
    /// network layer's. Call after [`SbrConfig::with_recorder`] —
    /// attaching a recorder rebuilds the handle bundle. Never affects the
    /// output — only what is observed. Only available with the `obs`
    /// feature (on by default).
    #[cfg(feature = "obs")]
    pub fn with_timeline(mut self, timeline: sbr_obs::Timeline) -> Self {
        self.obs.set_timeline(timeline);
        self
    }

    /// Set the error metric (builder style).
    pub fn with_metric(mut self, metric: ErrorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Disable the linear-regression fall-back (builder style).
    pub fn without_fallback(mut self) -> Self {
        self.allow_linear_fallback = false;
        self
    }

    /// Force a base-interval width (builder style).
    pub fn with_w(mut self, w: usize) -> Self {
        self.w_override = Some(w);
        self
    }

    /// Freeze the base signal (builder style); see
    /// [`SbrConfig::update_base`].
    pub fn frozen_base(mut self) -> Self {
        self.update_base = false;
        self
    }

    /// Set the shift-sweep evaluation strategy (builder style).
    pub fn with_shift_strategy(mut self, strategy: ShiftStrategy) -> Self {
        self.shift_strategy = strategy;
        self
    }

    /// Enable or disable the incremental `Search` probe cache (builder
    /// style); see [`SbrConfig::probe_cache`].
    pub fn with_probe_cache(mut self, probe_cache: bool) -> Self {
        self.probe_cache = probe_cache;
        self
    }

    /// Select the legacy `Search` probe path (builder style); shorthand for
    /// [`SbrConfig::with_probe_cache`]`(false)`.
    pub fn without_probe_cache(self) -> Self {
        self.with_probe_cache(false)
    }

    /// Enable or disable the incremental `GetBase` fit cache (builder
    /// style); see [`SbrConfig::get_base_fit_cache`].
    pub fn with_fit_cache(mut self, fit_cache: bool) -> Self {
        self.get_base_fit_cache = fit_cache;
        self
    }

    /// Select the legacy `GetBase` re-fit-everything path (builder style);
    /// shorthand for [`SbrConfig::with_fit_cache`]`(false)`.
    pub fn without_fit_cache(self) -> Self {
        self.with_fit_cache(false)
    }

    /// Enable or disable the `f32` shift-sweep pre-screen (builder style);
    /// see [`SbrConfig::f32_prescreen`].
    pub fn with_f32_prescreen(mut self, f32_prescreen: bool) -> Self {
        self.f32_prescreen = f32_prescreen;
        self
    }

    /// Set the worker-thread count (builder style); `0` = auto, `1` =
    /// serial. See [`SbrConfig::num_threads`].
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// The effective worker count: `num_threads`, with `0` resolved to the
    /// number of available CPUs (at least 1).
    pub fn resolved_threads(&self) -> usize {
        match self.num_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t,
        }
    }

    /// Derived base-interval width for a batch of `n` values.
    pub fn w_for(&self, n: usize) -> usize {
        self.w_override
            .unwrap_or_else(|| ((n as f64).sqrt().floor() as usize).max(1))
    }

    /// `maxIns = min(M_base, TotalBand) / W` (Table 1).
    pub fn max_ins(&self, w: usize) -> usize {
        self.m_base.min(self.total_band) / w.max(1)
    }

    /// Validate against a batch shape; returns the derived `W`.
    pub fn validate(&self, n_signals: usize, m: usize) -> Result<usize> {
        let n = n_signals * m;
        if self.total_band < 4 * n_signals {
            return Err(SbrError::BudgetTooSmall {
                total_band: self.total_band,
                required: 4 * n_signals,
            });
        }
        let w = self.w_for(n);
        if w == 0 || w > n {
            return Err(SbrError::InvalidConfig(format!(
                "base interval width {w} invalid for batch of {n} values"
            )));
        }
        if self.max_shift_len_factor == 0 {
            return Err(SbrError::InvalidConfig(
                "max_shift_len_factor must be at least 1".into(),
            ));
        }
        Ok(w)
    }
}

/// Strategy for proposing candidate base intervals from a batch.
///
/// The paper's `GetBase()` greedy selection is the default
/// ([`crate::GetBaseBuilder`]); the appendix's SVD and DCT constructions are
/// provided by the `sbr-baselines` crate through this same hook.
pub trait BaseBuilder {
    /// Propose up to `max_ins` candidate base intervals of width `w`,
    /// ordered by decreasing priority. The SBR driver decides how many of
    /// them are actually inserted.
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
    ) -> Vec<Vec<f64>>;

    /// Like [`BaseBuilder::build`] but allowed to use up to `threads`
    /// worker threads. Implementations must return the same output for
    /// every thread count; the default ignores `threads` and runs
    /// [`BaseBuilder::build`] serially, so existing builders keep working
    /// unchanged.
    fn build_threaded(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let _ = threads;
        self.build(data, w, max_ins, metric)
    }

    /// Like [`BaseBuilder::build_threaded`] but handed the encoder's
    /// observability bundle, so builders that fan out can report worker
    /// utilization. The default ignores it — external builders keep
    /// working unchanged, and instrumentation never changes the output.
    fn build_with_obs(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &crate::obs::EncodeObs,
    ) -> Vec<Vec<f64>> {
        let _ = obs;
        self.build_threaded(data, w, max_ins, metric, threads)
    }

    /// Like [`BaseBuilder::build_with_obs`] but handed the encoder's
    /// cross-batch [`FitCache`](crate::fit_cache::FitCache), so builders
    /// that fit candidate pairs can memoize those fits within the batch and
    /// carry them to the next one. Implementations must return the same
    /// output with and without the cache; the default ignores it, so
    /// external builders keep working unchanged.
    #[allow(clippy::too_many_arguments)]
    fn build_cached(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        metric: ErrorMetric,
        threads: usize,
        obs: &crate::obs::EncodeObs,
        cache: Option<&mut crate::fit_cache::FitCache>,
    ) -> Vec<Vec<f64>> {
        let _ = cache;
        self.build_with_obs(data, w, max_ins, metric, threads, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SbrConfig::new(100, 50);
        assert!(c.allow_linear_fallback);
        assert!(c.update_base);
        assert!(c.probe_cache, "probe cache defaults on");
        assert_eq!(c.max_shift_len_factor, 2);
        assert_eq!(c.metric, ErrorMetric::Sse);
    }

    #[test]
    fn w_defaults_to_floor_sqrt() {
        let c = SbrConfig::new(100, 50);
        assert_eq!(c.w_for(20480), 143);
        assert_eq!(c.with_w(64).w_for(20480), 64);
    }

    #[test]
    fn max_ins_uses_min_of_budgets() {
        let c = SbrConfig::new(100, 50);
        assert_eq!(c.max_ins(10), 5); // min(50, 100)/10
        let c2 = SbrConfig::new(30, 50);
        assert_eq!(c2.max_ins(10), 3);
    }

    #[test]
    fn validate_rejects_tiny_budget() {
        let c = SbrConfig::new(10, 50);
        assert!(matches!(
            c.validate(4, 100),
            Err(SbrError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn validate_rejects_oversized_w() {
        let c = SbrConfig::new(100, 50).with_w(1000);
        assert!(c.validate(2, 10).is_err());
    }

    #[test]
    fn validate_returns_derived_w() {
        let c = SbrConfig::new(1000, 500);
        assert_eq!(c.validate(10, 100).unwrap(), 31); // ⌊√1000⌋
    }
}
