//! `BestMap` (Algorithm 2): find the best approximation for one data
//! interval — either a shifted base-signal segment or the linear fall-back.

use crate::config::{SbrConfig, ShiftStrategy};
use crate::interval::{Interval, LINEAR_FALLBACK_SHIFT};
use crate::metric::ErrorMetric;
use crate::obs::EncodeObs;
use crate::regression::{self, PrefixStats};
use crate::xcorr::{self, XcorrPlan};

/// Shortest span (in shifts) the `f32` pre-screen will take over from the
/// blocked f64 sweep: two passes (rank + re-verify survivors) only pay for
/// themselves when there are enough shifts for the ranking to prune.
const F32_PRESCREEN_MIN_SHIFTS: usize = 32;

/// Which stretch of the concatenated dictionary a region-restricted sweep
/// covers — only used to attribute the direct-vs-FFT decision to the right
/// observability counters (the fit itself is region-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepRegion {
    /// Shifts landing fully inside the shared base prefix.
    Base,
    /// Shifts whose window touches one appended candidate.
    Candidate,
}

/// Shared read-only context for repeated `BestMap` calls against one base
/// signal and one data batch: the prefix statistics that make the SSE shift
/// loop cost a single `Σ x·y` pass per position.
pub struct MapContext<'a> {
    /// Flat base signal `X`.
    pub x: &'a [f64],
    /// Prefix sums over `X`.
    pub x_stats: PrefixStats,
    /// Concatenated data `Y`.
    pub y: &'a [f64],
    /// Prefix sums over `Y`.
    pub y_stats: PrefixStats,
    /// Effective configuration.
    pub metric: ErrorMetric,
    /// Whether the linear-regression fall-back competes with base mappings.
    pub allow_linear_fallback: bool,
    /// Intervals longer than `max_shift_len` are never shifted over `X`
    /// (the paper uses `2 × W`).
    pub max_shift_len: usize,
    /// How the SSE shift sweep is evaluated.
    pub shift_strategy: ShiftStrategy,
    /// Cached base-signal spectrum for the FFT kernel; `None` when the
    /// strategy is [`ShiftStrategy::Direct`], the metric is not SSE, or the
    /// base signal is empty.
    pub xcorr: Option<XcorrPlan>,
    /// `X` converted to `f32` once per context for the reduced-precision
    /// pre-screening sweep; `None` unless the `wire_profile` feature is
    /// compiled in **and** [`SbrConfig::f32_prescreen`] is set (off by
    /// default). The prescreen only *ranks* shifts — winners are always
    /// re-verified with the exact f64 summation, so enabling it never
    /// changes the selected fit.
    pub x_f32: Option<Vec<f32>>,
    /// Observability handles (cloned from the configuration); counts
    /// fits, strategy decisions and FFT re-verifications. Never affects
    /// the fit itself.
    pub obs: EncodeObs,
}

impl<'a> MapContext<'a> {
    /// Build a context from the configuration and the derived width `w`.
    pub fn new(x: &'a [f64], y: &'a [f64], config: &SbrConfig, w: usize) -> Self {
        let xcorr = if config.shift_strategy != ShiftStrategy::Direct
            && config.metric == ErrorMetric::Sse
            && !x.is_empty()
        {
            Some(XcorrPlan::new(x))
        } else {
            None
        };
        let x_f32 = if cfg!(feature = "wire_profile")
            && config.f32_prescreen
            && config.metric == ErrorMetric::Sse
            && !x.is_empty()
        {
            Some(x.iter().map(|&v| v as f32).collect())
        } else {
            None
        };
        MapContext {
            x,
            x_stats: PrefixStats::new(x),
            y,
            y_stats: PrefixStats::new(y),
            metric: config.metric,
            allow_linear_fallback: config.allow_linear_fallback,
            max_shift_len: config.max_shift_len_factor.saturating_mul(w),
            shift_strategy: config.shift_strategy,
            xcorr,
            x_f32,
            obs: config.obs.clone(),
        }
    }

    /// Fit `interval` (its `start`/`length` must already be set): try the
    /// linear fall-back (if enabled) and every admissible shift over `X`,
    /// keeping whichever minimizes the metric error. Ties favour the
    /// earliest shift, matching the strict `<` of Algorithm 2.
    pub fn best_map(&self, interval: &mut Interval) {
        self.obs.best_map_calls.inc();
        let start = interval.start;
        let len = interval.length;
        debug_assert!(len > 0 && start + len <= self.y.len());
        let yw = &self.y[start..start + len];

        let shiftable = len <= self.max_shift_len && len <= self.x.len();

        // Fall-back fit. Also used unconditionally when no base segment is
        // admissible, so every interval always gets *some* finite fit.
        if self.allow_linear_fallback || !shiftable {
            let f = regression::fit_linear(self.metric, yw);
            interval.shift = LINEAR_FALLBACK_SHIFT;
            interval.a = f.a;
            interval.b = f.b;
            interval.err = f.err;
        } else {
            interval.err = f64::INFINITY;
        }

        if shiftable {
            match self.metric {
                ErrorMetric::Sse => self.shift_loop_sse(interval, yw),
                _ => self.shift_loop_general(interval, yw, 0, self.x.len() - len),
            }
        }

        if interval.is_fallback() {
            self.obs.fallback_wins.inc();
        } else {
            self.obs.base_wins.inc();
        }
    }

    /// Write the linear fall-back fit into `interval` unconditionally —
    /// the probe cache computes it once per `(start, len)` and seeds every
    /// probe's prefix-min fold with it, exactly as [`Self::best_map`] seeds
    /// its own sweep.
    pub fn fallback_fit(&self, interval: &mut Interval) {
        let yw = &self.y[interval.start..interval.start + interval.length];
        let f = regression::fit_linear(self.metric, yw);
        interval.shift = LINEAR_FALLBACK_SHIFT;
        interval.a = f.a;
        interval.b = f.b;
        interval.err = f.err;
    }

    /// Fold the shifts `lo..=hi` into `interval` with the same strict `<`
    /// (earliest shift wins ties) as the full sweep of [`Self::best_map`].
    ///
    /// This is the region-restricted primitive behind the `Search` probe
    /// cache: a probe's admissible shift range over `base ∥ c₁ ∥ … ∥ c_pos`
    /// partitions into the base-prefix region plus one region per appended
    /// candidate, and folding those regions in ascending order reproduces
    /// the continuous sweep bit for bit. `region` only selects which
    /// observability counters record the direct-vs-FFT decision.
    ///
    /// The caller guarantees `hi + interval.length <= self.x.len()`.
    pub fn fold_region(&self, interval: &mut Interval, lo: usize, hi: usize, region: SweepRegion) {
        debug_assert!(lo <= hi && hi + interval.length <= self.x.len());
        let yw = &self.y[interval.start..interval.start + interval.length];
        if self.metric != ErrorMetric::Sse {
            return self.shift_loop_general(interval, yw, lo, hi);
        }
        // Candidate regions span at most `W` shifts; a transform over the
        // padded *full* dictionary can never amortize there, so only the
        // base-prefix region consults the strategy. The evaluators are
        // bit-identical either way — this is purely a cost decision.
        let use_fft = region == SweepRegion::Base
            && match self.shift_strategy {
                ShiftStrategy::Direct => false,
                ShiftStrategy::Fft => self.xcorr.is_some(),
                ShiftStrategy::Auto => {
                    self.xcorr.is_some() && {
                        // lint:allow(panic-reachability): use_fft is only true when the FFT plan exists
                        let plan = self.xcorr.as_ref().expect("checked above");
                        xcorr::fft_beats_direct_span(hi - lo + 1, interval.length, plan.fft_len())
                    }
                }
            };
        let (direct_ctr, fft_ctr) = match region {
            SweepRegion::Base => (&self.obs.base_direct_sweeps, &self.obs.base_fft_sweeps),
            SweepRegion::Candidate => (&self.obs.cand_direct_sweeps, &self.obs.cand_fft_sweeps),
        };
        if use_fft {
            fft_ctr.inc();
            // lint:allow(panic-reachability): use_fft is only true when the FFT plan exists
            let plan = self.xcorr.as_ref().expect("checked above");
            self.shift_loop_sse_fft(interval, yw, plan, lo, hi);
        } else {
            direct_ctr.inc();
            self.shift_loop_sse_direct(interval, yw, lo, hi);
        }
    }

    /// SSE fast path: window sums of `X` and `Y` come from prefix stats;
    /// only `Σ x·y` varies per shift. Dispatches between the direct
    /// `O(B·len)` sweep and the `O((B+len) log (B+len))` FFT kernel
    /// according to the configured [`ShiftStrategy`]; both produce
    /// bit-identical results.
    fn shift_loop_sse(&self, interval: &mut Interval, yw: &[f64]) {
        let use_fft = match self.shift_strategy {
            ShiftStrategy::Direct => false,
            ShiftStrategy::Fft => self.xcorr.is_some(),
            ShiftStrategy::Auto => {
                self.xcorr.is_some() && xcorr::fft_beats_direct(self.x.len(), interval.length)
            }
        };
        let hi = self.x.len() - interval.length;
        if use_fft {
            self.obs.fft_sweeps.inc();
            // lint:allow(panic-reachability): use_fft is only true when the FFT plan exists
            let plan = self.xcorr.as_ref().expect("checked above");
            self.shift_loop_sse_fft(interval, yw, plan, 0, hi);
        } else {
            self.obs.direct_sweeps.inc();
            self.shift_loop_sse_direct(interval, yw, 0, hi);
        }
    }

    /// Direct SSE sweep over shifts `lo..=hi`, evaluated in blocks of
    /// [`xcorr::DOT_BLOCK`] consecutive shifts.
    ///
    /// The window statistics `Σy`, `Σy²` are hoisted once per sweep and
    /// `Σx`, `Σx²` come from prefix sums, so only `Σ x·y` varies per shift;
    /// [`xcorr::dot_block`] evaluates eight of those at once as
    /// straight-line f64 mul-adds over one contiguous stretch of `X`. Each
    /// block lane accumulates in the exact index order of the scalar
    /// [`xcorr::dot`], and lanes are folded into `interval` in ascending
    /// shift order with the same strict `<`, so the selected
    /// `(shift, a, b, err)` is bit-identical to the one-shift-at-a-time
    /// loop this replaces. Trailing shifts that do not fill a block use the
    /// scalar dot.
    ///
    /// When the reduced-precision prescreen is armed (see
    /// [`MapContext::x_f32`]) and the span is long enough to amortize two
    /// passes, the sweep first ranks all shifts in f32 and exactly
    /// re-verifies the survivors — same result, fewer f64 passes.
    fn shift_loop_sse_direct(&self, interval: &mut Interval, yw: &[f64], lo: usize, hi: usize) {
        if let Some(x32) = &self.x_f32 {
            if hi - lo + 1 >= F32_PRESCREEN_MIN_SHIFTS {
                return self.shift_loop_sse_f32(interval, yw, x32, lo, hi);
            }
        }
        let len = interval.length;
        let sum_y = self.y_stats.window_sum(interval.start, len);
        let sum_y2 = self.y_stats.window_sum_sq(interval.start, len);
        let mut shift = lo;
        let mut dots = [0.0; xcorr::DOT_BLOCK];
        while shift + xcorr::DOT_BLOCK - 1 <= hi {
            xcorr::dot_block(
                &self.x[shift..shift + len + xcorr::DOT_BLOCK - 1],
                yw,
                &mut dots,
            );
            for (b, &sum_xy) in dots.iter().enumerate() {
                let f = self.fit_at(shift + b, len, sum_y, sum_y2, sum_xy);
                if f.err < interval.err {
                    interval.shift = (shift + b) as i64;
                    interval.a = f.a;
                    interval.b = f.b;
                    interval.err = f.err;
                }
            }
            shift += xcorr::DOT_BLOCK;
        }
        for shift in shift..=hi {
            let sum_xy = xcorr::dot(&self.x[shift..shift + len], yw);
            let f = self.fit_at(shift, len, sum_y, sum_y2, sum_xy);
            if f.err < interval.err {
                interval.shift = shift as i64;
                interval.a = f.a;
                interval.b = f.b;
                interval.err = f.err;
            }
        }
    }

    /// FFT SSE sweep: all `Σ x·y` values at once via cross-correlation,
    /// then the exact re-verification pass of [`Self::filter_and_reverify`].
    ///
    /// The per-shift error bound is the classic `O(ε·log m·‖x‖₂·‖y‖₂)` FFT
    /// convolution bound, inflated by ~1e4 for slack (ε ≈ 2.2e-16, so the
    /// 1e-12 head already includes the log factor's constant many times
    /// over). In non-degenerate cases the brackets are ~`1e-9` relative and
    /// the re-verified set is a handful of genuine near-ties; a
    /// pathological base (near-constant windows amplifying `s_xy/s_xx`)
    /// only widens the set, degrading speed, never correctness.
    fn shift_loop_sse_fft(
        &self,
        interval: &mut Interval,
        yw: &[f64],
        plan: &XcorrPlan,
        lo: usize,
        hi: usize,
    ) {
        let len = interval.length;
        let sum_y2 = self.y_stats.window_sum_sq(interval.start, len);
        let approx_xy = plan.sliding_dot(yw);
        let norm_x2 = self.x_stats.window_sum_sq(0, self.x.len());
        let log_m = (usize::BITS - plan.fft_len().leading_zeros()) as f64;
        let d_xy = 1e-12 * log_m * (norm_x2 * sum_y2).sqrt();
        self.filter_and_reverify(
            interval,
            yw,
            lo,
            &approx_xy[lo..=hi],
            d_xy,
            &self.obs.fft_reverified,
        );
    }

    /// Reduced-precision prescreen sweep: rank every shift with a blocked
    /// f32 `Σ x·y`, then exactly re-verify the candidates that could win.
    ///
    /// Ships behind the `wire_profile` feature (the f32 lane of the wire
    /// profiles) and the off-by-default [`SbrConfig::f32_prescreen`] knob.
    /// `d_xy` bounds the conversion-plus-summation error of an f32 dot of
    /// `len` products via Cauchy–Schwarz (`Σ|x·y| ≤ ‖x‖₂·‖y‖₂`, with the
    /// whole-dictionary `‖x‖₂` as a uniform upper bound over windows):
    /// each converted product is off by at most ~3ε₃₂ relative and the
    /// naive summation adds at most `len·ε₃₂` more, inflated 8× for slack.
    /// Non-finite f32 sums (overflow on extreme data) produce NaN/∞ errors
    /// whose brackets never exclude a shift, so every shift is then
    /// re-verified exactly — slower, never wrong.
    fn shift_loop_sse_f32(
        &self,
        interval: &mut Interval,
        yw: &[f64],
        x32: &[f32],
        lo: usize,
        hi: usize,
    ) {
        thread_local! {
            static Y32: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        self.obs.f32_prescreens.inc();
        let len = interval.length;
        let sum_y2 = self.y_stats.window_sum_sq(interval.start, len);
        let approx_xy: Vec<f64> = Y32.with(|cell| {
            let mut y32 = cell.borrow_mut();
            y32.clear();
            y32.extend(yw.iter().map(|&v| v as f32));
            (lo..=hi)
                .map(|shift| {
                    let xw = &x32[shift..shift + len];
                    let mut acc = 0.0f32;
                    for (xi, yi) in xw.iter().zip(y32.iter()) {
                        acc += xi * yi;
                    }
                    acc as f64
                })
                .collect()
        });
        const EPS32: f64 = 5.960_464_477_539_063e-8; // 2⁻²⁴
        let norm_x2 = self.x_stats.window_sum_sq(0, self.x.len());
        let d_xy = 8.0 * (len as f64 + 4.0) * EPS32 * (norm_x2 * sum_y2).sqrt();
        self.filter_and_reverify(interval, yw, lo, &approx_xy, d_xy, &self.obs.f32_reverified);
    }

    /// Shared filter-and-reverify core of the approximate sweeps (FFT and
    /// f32 prescreen): bracket each shift's approximate error, then
    /// re-evaluate the possible winners with the exact direct summation.
    ///
    /// `approx_xy[off]` approximates `Σ x·y` at shift `lo + off` with
    /// absolute error at most `d_xy`. Selecting directly on approximations
    /// could flip near-ties against the direct path, so they only *filter*:
    /// pass 1 brackets each shift's error by a per-shift uncertainty
    /// interval, pass 2 re-evaluates every shift whose lower bracket
    /// reaches the smallest upper bracket, in ascending shift order with
    /// the same strict `<` as the direct sweep. The exact winner always
    /// survives the filter (its interval contains its exact error, which is
    /// the minimum), so the selected `(shift, a, b, err)` is bit-identical
    /// to [`Self::shift_loop_sse_direct`].
    fn filter_and_reverify(
        &self,
        interval: &mut Interval,
        yw: &[f64],
        lo: usize,
        approx_xy: &[f64],
        d_xy: f64,
        reverified_ctr: &crate::obs::Counter,
    ) {
        let len = interval.length;
        let sum_y = self.y_stats.window_sum(interval.start, len);
        let sum_y2 = self.y_stats.window_sum_sq(interval.start, len);

        // Pass 1: approximate error + uncertainty bracket per shift.
        // The fit's constant-base branch triggers on s_xx alone, which is
        // exact (prefix sums) — both passes take the same branch, and that
        // branch ignores Σx·y entirely, so its uncertainty is zero.
        // Otherwise err = s_yy − (s_xy)²/s_xx, so a perturbation δ of Σx·y
        // moves it by at most (2·|s_xy|·δ + δ²)/s_xx.
        let mut approx = Vec::with_capacity(approx_xy.len());
        let mut min_upper = f64::INFINITY;
        for (off, &sum_xy) in approx_xy.iter().enumerate() {
            let shift = lo + off;
            let f = self.fit_at(shift, len, sum_y, sum_y2, sum_xy);
            let sum_x = self.x_stats.window_sum(shift, len);
            let sum_x2 = self.x_stats.window_sum_sq(shift, len);
            let s_xx = sum_x2 - sum_x * sum_x / len as f64;
            let u = if s_xx.abs() <= f64::EPSILON * sum_x2.abs().max(1.0) {
                0.0
            } else {
                let s_xy = sum_xy - sum_x * sum_y / len as f64;
                (2.0 * s_xy.abs() * d_xy + d_xy * d_xy) / s_xx
            };
            min_upper = min_upper.min(f.err + u);
            approx.push((f.err, u));
        }

        // Pass 2: exact re-evaluation of every shift that could be the true
        // minimum. NaN brackets (non-finite approximations) compare false
        // here and are therefore always re-verified.
        let mut reverified = 0u64;
        for (shift, &(err, u)) in approx.iter().enumerate().map(|(i, v)| (lo + i, v)) {
            if err - u > min_upper {
                continue;
            }
            reverified += 1;
            let sum_xy = xcorr::dot(&self.x[shift..shift + len], yw);
            let f = self.fit_at(shift, len, sum_y, sum_y2, sum_xy);
            if f.err < interval.err {
                interval.shift = shift as i64;
                interval.a = f.a;
                interval.b = f.b;
                interval.err = f.err;
            }
        }
        reverified_ctr.add(reverified);
    }

    /// Closed-form SSE fit for one shift from the window statistics.
    #[inline]
    fn fit_at(
        &self,
        shift: usize,
        len: usize,
        sum_y: f64,
        sum_y2: f64,
        sum_xy: f64,
    ) -> regression::Fit {
        regression::fit_sse_with_stats(
            len,
            self.x_stats.window_sum(shift, len),
            self.x_stats.window_sum_sq(shift, len),
            sum_y,
            sum_y2,
            sum_xy,
        )
    }

    /// General path for the relative-SSE and max-abs metrics: full refit per
    /// shift (still `O(len)` each) over shifts `lo..=hi`.
    fn shift_loop_general(&self, interval: &mut Interval, yw: &[f64], lo: usize, hi: usize) {
        let len = interval.length;
        for shift in lo..=hi {
            let xw = &self.x[shift..shift + len];
            let f = regression::fit(self.metric, xw, yw);
            if f.err < interval.err {
                interval.shift = shift as i64;
                interval.a = f.a;
                interval.b = f.b;
                interval.err = f.err;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(x: &'a [f64], y: &'a [f64], w: usize) -> MapContext<'a> {
        let config = SbrConfig::new(1_000, 1_000);
        MapContext::new(x, y, &config, w)
    }

    #[test]
    fn finds_exact_projection() {
        // Y is an affine image of X[4..12].
        let x: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin()).collect();
        let y: Vec<f64> = x[4..12].iter().map(|v| 2.0 * v - 1.0).collect();
        let c = ctx(&x, &y, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert_eq!(i.shift, 4);
        assert!((i.a - 2.0).abs() < 1e-9);
        assert!((i.b + 1.0).abs() < 1e-9);
        assert!(i.err < 1e-12);
    }

    #[test]
    fn falls_back_when_base_uncorrelated() {
        // Y is a perfect line over its index; X is hostile noise-free but
        // uncorrelated (constant), so the fall-back must win.
        let x = vec![5.0; 16];
        let y: Vec<f64> = (0..8).map(|i| 3.0 * i as f64 + 1.0).collect();
        let c = ctx(&x, &y, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert!(i.is_fallback());
        assert!(i.err < 1e-9);
    }

    #[test]
    fn long_intervals_are_not_shifted() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let config = SbrConfig::new(1_000, 1_000);
        let mut c = MapContext::new(&x, &y, &config, 8);
        c.max_shift_len = 16; // 2 × W
        let mut i = Interval::unfitted(0, 50);
        c.best_map(&mut i);
        assert!(i.is_fallback(), "len 50 > 2W = 16 must use the fall-back");
    }

    #[test]
    fn empty_base_signal_uses_fallback_even_when_disabled() {
        let x: Vec<f64> = vec![];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let config = SbrConfig::new(1_000, 1_000).without_fallback();
        let c = MapContext::new(&x, &y, &config, 2);
        let mut i = Interval::unfitted(0, 4);
        c.best_map(&mut i);
        assert!(i.is_fallback());
        assert!(i.err.is_finite());
    }

    #[test]
    fn disabled_fallback_forces_base_mapping() {
        let x = vec![5.0; 16]; // constant base: poor but usable
        let y: Vec<f64> = (0..8).map(|i| 3.0 * i as f64 + 1.0).collect();
        let config = SbrConfig::new(1_000, 1_000).without_fallback();
        let c = MapContext::new(&x, &y, &config, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert!(!i.is_fallback());
        assert!(i.err > 1.0, "constant base cannot capture a ramp");
    }

    #[test]
    fn sse_path_agrees_with_general_path() {
        let x: Vec<f64> = (0..32).map(|i| ((i * i % 17) as f64) - 8.0).collect();
        let y: Vec<f64> = (0..10).map(|i| ((i * 3 % 11) as f64) * 1.5).collect();
        let c = ctx(&x, &y, 8);
        let mut fast = Interval::unfitted(0, 10);
        c.best_map(&mut fast);
        // Re-run with the general loop by pretending the metric is exotic.
        let mut slow = Interval::unfitted(0, 10);
        let f = regression::fit_linear(ErrorMetric::Sse, &y);
        slow.a = f.a;
        slow.b = f.b;
        slow.err = f.err;
        for shift in 0..=(x.len() - 10) {
            let f = regression::fit_sse(&x[shift..shift + 10], &y);
            if f.err < slow.err {
                slow.shift = shift as i64;
                slow.a = f.a;
                slow.b = f.b;
                slow.err = f.err;
            }
        }
        assert_eq!(fast.shift, slow.shift);
        assert!((fast.err - slow.err).abs() < 1e-9);
    }

    #[test]
    fn fft_strategy_is_bit_identical_to_direct() {
        // Cover short, crossover-sized, and base-length windows, plus a
        // constant-X stretch that produces exact error ties across shifts.
        let mut x: Vec<f64> = (0..512)
            .map(|i| ((i * i % 97) as f64) * 0.3 - 11.0 + (i as f64 * 0.05).sin())
            .collect();
        for v in x[100..160].iter_mut() {
            *v = 4.0;
        }
        let y: Vec<f64> = (0..512)
            .map(|i| ((i * 7 % 31) as f64) - 15.0 + (i as f64 * 0.11).cos())
            .collect();
        for (start, len) in [(0usize, 5usize), (37, 64), (100, 143), (256, 256), (0, 512)] {
            let direct_cfg = SbrConfig::new(10_000, 1_000)
                .with_w(256)
                .with_shift_strategy(ShiftStrategy::Direct);
            let fft_cfg = SbrConfig::new(10_000, 1_000)
                .with_w(256)
                .with_shift_strategy(ShiftStrategy::Fft);
            let cd = MapContext::new(&x, &y, &direct_cfg, 256);
            let cf = MapContext::new(&x, &y, &fft_cfg, 256);
            let mut id = Interval::unfitted(start, len);
            let mut if_ = Interval::unfitted(start, len);
            cd.best_map(&mut id);
            cf.best_map(&mut if_);
            assert_eq!(id.shift, if_.shift, "shift mismatch at ({start}, {len})");
            assert_eq!(
                id.a.to_bits(),
                if_.a.to_bits(),
                "a mismatch at ({start}, {len})"
            );
            assert_eq!(
                id.b.to_bits(),
                if_.b.to_bits(),
                "b mismatch at ({start}, {len})"
            );
            assert_eq!(
                id.err.to_bits(),
                if_.err.to_bits(),
                "err mismatch at ({start}, {len})"
            );
        }
    }

    #[test]
    fn maxabs_metric_shift_loop() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = x[5..13].iter().map(|v| -v + 0.5).collect();
        let config = SbrConfig::new(1_000, 1_000).with_metric(ErrorMetric::MaxAbs);
        let c = MapContext::new(&x, &y, &config, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert_eq!(i.shift, 5);
        assert!(i.err < 1e-9);
    }
}
