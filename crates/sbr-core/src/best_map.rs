//! `BestMap` (Algorithm 2): find the best approximation for one data
//! interval — either a shifted base-signal segment or the linear fall-back.

use crate::config::SbrConfig;
use crate::interval::{Interval, LINEAR_FALLBACK_SHIFT};
use crate::metric::ErrorMetric;
use crate::regression::{self, PrefixStats};

/// Shared read-only context for repeated `BestMap` calls against one base
/// signal and one data batch: the prefix statistics that make the SSE shift
/// loop cost a single `Σ x·y` pass per position.
pub struct MapContext<'a> {
    /// Flat base signal `X`.
    pub x: &'a [f64],
    /// Prefix sums over `X`.
    pub x_stats: PrefixStats,
    /// Concatenated data `Y`.
    pub y: &'a [f64],
    /// Prefix sums over `Y`.
    pub y_stats: PrefixStats,
    /// Effective configuration.
    pub metric: ErrorMetric,
    /// Whether the linear-regression fall-back competes with base mappings.
    pub allow_linear_fallback: bool,
    /// Intervals longer than `max_shift_len` are never shifted over `X`
    /// (the paper uses `2 × W`).
    pub max_shift_len: usize,
}

impl<'a> MapContext<'a> {
    /// Build a context from the configuration and the derived width `w`.
    pub fn new(x: &'a [f64], y: &'a [f64], config: &SbrConfig, w: usize) -> Self {
        MapContext {
            x,
            x_stats: PrefixStats::new(x),
            y,
            y_stats: PrefixStats::new(y),
            metric: config.metric,
            allow_linear_fallback: config.allow_linear_fallback,
            max_shift_len: config.max_shift_len_factor.saturating_mul(w),
        }
    }

    /// Fit `interval` (its `start`/`length` must already be set): try the
    /// linear fall-back (if enabled) and every admissible shift over `X`,
    /// keeping whichever minimizes the metric error. Ties favour the
    /// earliest shift, matching the strict `<` of Algorithm 2.
    pub fn best_map(&self, interval: &mut Interval) {
        let start = interval.start;
        let len = interval.length;
        debug_assert!(len > 0 && start + len <= self.y.len());
        let yw = &self.y[start..start + len];

        let shiftable = len <= self.max_shift_len && len <= self.x.len();

        // Fall-back fit. Also used unconditionally when no base segment is
        // admissible, so every interval always gets *some* finite fit.
        if self.allow_linear_fallback || !shiftable {
            let f = regression::fit_linear(self.metric, yw);
            interval.shift = LINEAR_FALLBACK_SHIFT;
            interval.a = f.a;
            interval.b = f.b;
            interval.err = f.err;
        } else {
            interval.err = f64::INFINITY;
        }

        if !shiftable {
            return;
        }

        match self.metric {
            ErrorMetric::Sse => self.shift_loop_sse(interval, yw),
            _ => self.shift_loop_general(interval, yw),
        }
    }

    /// SSE fast path: window sums of `X` and `Y` come from prefix stats;
    /// only `Σ x·y` is recomputed per shift.
    fn shift_loop_sse(&self, interval: &mut Interval, yw: &[f64]) {
        let len = interval.length;
        let sum_y = self.y_stats.window_sum(interval.start, len);
        let sum_y2 = self.y_stats.window_sum_sq(interval.start, len);
        for shift in 0..=(self.x.len() - len) {
            let xw = &self.x[shift..shift + len];
            let mut sum_xy = 0.0;
            for (xi, yi) in xw.iter().zip(yw) {
                sum_xy += xi * yi;
            }
            let f = regression::fit_sse_with_stats(
                len,
                self.x_stats.window_sum(shift, len),
                self.x_stats.window_sum_sq(shift, len),
                sum_y,
                sum_y2,
                sum_xy,
            );
            if f.err < interval.err {
                interval.shift = shift as i64;
                interval.a = f.a;
                interval.b = f.b;
                interval.err = f.err;
            }
        }
    }

    /// General path for the relative-SSE and max-abs metrics: full refit per
    /// shift (still `O(len)` each).
    fn shift_loop_general(&self, interval: &mut Interval, yw: &[f64]) {
        let len = interval.length;
        for shift in 0..=(self.x.len() - len) {
            let xw = &self.x[shift..shift + len];
            let f = regression::fit(self.metric, xw, yw);
            if f.err < interval.err {
                interval.shift = shift as i64;
                interval.a = f.a;
                interval.b = f.b;
                interval.err = f.err;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(x: &'a [f64], y: &'a [f64], w: usize) -> MapContext<'a> {
        let config = SbrConfig::new(1_000, 1_000);
        MapContext::new(x, y, &config, w)
    }

    #[test]
    fn finds_exact_projection() {
        // Y is an affine image of X[4..12].
        let x: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin()).collect();
        let y: Vec<f64> = x[4..12].iter().map(|v| 2.0 * v - 1.0).collect();
        let c = ctx(&x, &y, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert_eq!(i.shift, 4);
        assert!((i.a - 2.0).abs() < 1e-9);
        assert!((i.b + 1.0).abs() < 1e-9);
        assert!(i.err < 1e-12);
    }

    #[test]
    fn falls_back_when_base_uncorrelated() {
        // Y is a perfect line over its index; X is hostile noise-free but
        // uncorrelated (constant), so the fall-back must win.
        let x = vec![5.0; 16];
        let y: Vec<f64> = (0..8).map(|i| 3.0 * i as f64 + 1.0).collect();
        let c = ctx(&x, &y, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert!(i.is_fallback());
        assert!(i.err < 1e-9);
    }

    #[test]
    fn long_intervals_are_not_shifted() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let config = SbrConfig::new(1_000, 1_000);
        let mut c = MapContext::new(&x, &y, &config, 8);
        c.max_shift_len = 16; // 2 × W
        let mut i = Interval::unfitted(0, 50);
        c.best_map(&mut i);
        assert!(i.is_fallback(), "len 50 > 2W = 16 must use the fall-back");
    }

    #[test]
    fn empty_base_signal_uses_fallback_even_when_disabled() {
        let x: Vec<f64> = vec![];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let config = SbrConfig::new(1_000, 1_000).without_fallback();
        let c = MapContext::new(&x, &y, &config, 2);
        let mut i = Interval::unfitted(0, 4);
        c.best_map(&mut i);
        assert!(i.is_fallback());
        assert!(i.err.is_finite());
    }

    #[test]
    fn disabled_fallback_forces_base_mapping() {
        let x = vec![5.0; 16]; // constant base: poor but usable
        let y: Vec<f64> = (0..8).map(|i| 3.0 * i as f64 + 1.0).collect();
        let config = SbrConfig::new(1_000, 1_000).without_fallback();
        let c = MapContext::new(&x, &y, &config, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert!(!i.is_fallback());
        assert!(i.err > 1.0, "constant base cannot capture a ramp");
    }

    #[test]
    fn sse_path_agrees_with_general_path() {
        let x: Vec<f64> = (0..32).map(|i| ((i * i % 17) as f64) - 8.0).collect();
        let y: Vec<f64> = (0..10).map(|i| ((i * 3 % 11) as f64) * 1.5).collect();
        let c = ctx(&x, &y, 8);
        let mut fast = Interval::unfitted(0, 10);
        c.best_map(&mut fast);
        // Re-run with the general loop by pretending the metric is exotic.
        let mut slow = Interval::unfitted(0, 10);
        let f = regression::fit_linear(ErrorMetric::Sse, &y);
        slow.a = f.a;
        slow.b = f.b;
        slow.err = f.err;
        for shift in 0..=(x.len() - 10) {
            let f = regression::fit_sse(&x[shift..shift + 10], &y);
            if f.err < slow.err {
                slow.shift = shift as i64;
                slow.a = f.a;
                slow.b = f.b;
                slow.err = f.err;
            }
        }
        assert_eq!(fast.shift, slow.shift);
        assert!((fast.err - slow.err).abs() < 1e-9);
    }

    #[test]
    fn maxabs_metric_shift_loop() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = x[5..13].iter().map(|v| -v + 0.5).collect();
        let config = SbrConfig::new(1_000, 1_000).with_metric(ErrorMetric::MaxAbs);
        let c = MapContext::new(&x, &y, &config, 8);
        let mut i = Interval::unfitted(0, 8);
        c.best_map(&mut i);
        assert_eq!(i.shift, 5);
        assert!(i.err < 1e-9);
    }
}
