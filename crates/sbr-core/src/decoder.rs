//! Base-station side: replay transmissions into reconstructed batches while
//! mirroring the sensor's base-signal buffer.

use crate::base_signal::BaseSignal;
use crate::error::{Result, SbrError};
use crate::get_intervals::reconstruct_flat;
use crate::transmission::Transmission;

/// Stateful decoder for one sensor's transmission stream.
///
/// Transmissions must be fed in sequence order; each call returns the
/// reconstructed batch (one `Vec` per input signal). The decoder's
/// base-signal buffer evolves exactly as the sensor's did, driven purely by
/// the slot indices carried in the stream — it never runs LFU itself.
#[derive(Debug, Default)]
pub struct Decoder {
    base: Option<BaseSignal>,
    next_seq: u64,
}

impl Decoder {
    /// A decoder expecting a stream that starts at sequence 0.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Resume from a snapshot: the mirrored base signal (if any chunks were
    /// already applied) and the next expected sequence number. Used by
    /// checkpointed base-station logs to avoid replaying from zero.
    pub fn resume(base: Option<BaseSignal>, next_seq: u64) -> Self {
        Decoder { base, next_seq }
    }

    /// The candidate layout `X_new = X ∥ updates` a transmission's interval
    /// records reference, *without* advancing the decoder. Fails on the
    /// same inconsistencies `decode` would reject.
    pub fn peek_x_new(&self, tx: &Transmission) -> Result<Vec<f64>> {
        if tx.seq != self.next_seq {
            return Err(SbrError::InconsistentState(format!(
                "expected transmission {} but received {}",
                self.next_seq, tx.seq
            )));
        }
        let w = tx.w as usize;
        let mut x_new = self
            .base
            .as_ref()
            .map(|b| b.values().to_vec())
            .unwrap_or_default();
        for (k, u) in tx.base_updates.iter().enumerate() {
            if u.values.len() != w {
                return Err(SbrError::Corrupt(format!(
                    "base update {k} has width {} ≠ W = {w}",
                    u.values.len()
                )));
            }
            x_new.extend_from_slice(&u.values);
        }
        Ok(x_new)
    }

    /// The mirrored base signal (empty before the first transmission).
    pub fn base(&self) -> Option<&BaseSignal> {
        self.base.as_ref()
    }

    /// Sequence number the decoder expects next.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Decode the next transmission, returning per-signal reconstructions.
    pub fn decode(&mut self, tx: &Transmission) -> Result<Vec<Vec<f64>>> {
        if tx.seq != self.next_seq {
            return Err(SbrError::InconsistentState(format!(
                "expected transmission {} but received {}",
                self.next_seq, tx.seq
            )));
        }
        let w = tx.w as usize;
        if w == 0 {
            return Err(SbrError::Corrupt("zero base-interval width".into()));
        }
        let base = self.base.get_or_insert_with(|| BaseSignal::new(w));
        if base.w() != w {
            return Err(SbrError::InconsistentState(format!(
                "stream changed base-interval width from {} to {w}",
                base.w()
            )));
        }
        Self::validate_updates(tx, base.num_slots(), w)?;

        // Decode against the candidate layout X_new = X ∥ updates …
        let mut x_new = base.values().to_vec();
        for u in &tx.base_updates {
            x_new.extend_from_slice(&u.values);
        }
        let n_total = tx.batch_len();
        if n_total == 0 {
            return Err(SbrError::Corrupt("empty batch shape".into()));
        }
        if tx.intervals.is_empty() {
            return Err(SbrError::Corrupt(
                "transmission carries no intervals".into(),
            ));
        }
        let flat = reconstruct_flat(&x_new, &tx.intervals, n_total)?;

        // … then land the updates in their final slots for the next batch.
        for u in &tx.base_updates {
            base.apply_insert(u.slot as usize, &u.values, tx.seq)?;
        }

        self.next_seq += 1;
        let m = tx.samples_per_signal as usize;
        Ok(flat.chunks_exact(m).map(<[f64]>::to_vec).collect())
    }

    /// Advance the mirrored base-signal state over a transmission *without*
    /// reconstructing its data — the cheap path a checkpointing log uses on
    /// ingest. Performs the same validation as [`Decoder::decode`].
    pub fn apply_updates_only(&mut self, tx: &Transmission) -> Result<()> {
        if tx.seq != self.next_seq {
            return Err(SbrError::InconsistentState(format!(
                "expected transmission {} but received {}",
                self.next_seq, tx.seq
            )));
        }
        let w = tx.w as usize;
        if w == 0 {
            return Err(SbrError::Corrupt("zero base-interval width".into()));
        }
        let base = self.base.get_or_insert_with(|| BaseSignal::new(w));
        if base.w() != w {
            return Err(SbrError::InconsistentState(format!(
                "stream changed base-interval width from {} to {w}",
                base.w()
            )));
        }
        Self::validate_updates(tx, base.num_slots(), w)?;
        for u in &tx.base_updates {
            base.apply_insert(u.slot as usize, &u.values, tx.seq)?;
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Validate every update (width and slot) *before* any mutation, so a
    /// malformed transmission can never leave the replica partially
    /// updated. Slots must hit existing slots or extend the buffer
    /// contiguously, mirroring what `apply_insert` will accept.
    fn validate_updates(tx: &Transmission, mut slots: usize, w: usize) -> Result<()> {
        for (k, u) in tx.base_updates.iter().enumerate() {
            if u.values.len() != w {
                return Err(SbrError::Corrupt(format!(
                    "base update {k} has width {} ≠ W = {w}",
                    u.values.len()
                )));
            }
            let slot = u.slot as usize;
            if slot > slots {
                return Err(SbrError::InconsistentState(format!(
                    "base update {k} targets slot {slot} but only {slots} slots exist"
                )));
            }
            if slot == slots {
                slots += 1;
            }
        }
        Ok(())
    }

    /// Snapshot the decoder state for later [`Decoder::resume`].
    pub fn snapshot(&self) -> (Option<BaseSignal>, u64) {
        (self.base.clone(), self.next_seq)
    }

    /// Decode a full stream from scratch (replay helper for historical
    /// queries): returns the reconstruction of every batch.
    pub fn replay(stream: &[Transmission]) -> Result<Vec<Vec<Vec<f64>>>> {
        let mut d = Decoder::new();
        stream.iter().map(|tx| d.decode(tx)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;
    use crate::sbr::SbrEncoder;

    fn rows(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..m)
                    .map(|i| {
                        let t = (i as f64) + (seed as f64) * 31.0;
                        (t * 0.37 + r as f64).sin() * 4.0 + t * 0.02 * (r + 1) as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn decoder_mirrors_encoder_base_signal() {
        let config = SbrConfig::new(120, 96);
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        let mut dec = Decoder::new();
        for s in 0..5 {
            let tx = enc.encode(&rows(2, 128, s)).unwrap();
            dec.decode(&tx).unwrap();
            assert_eq!(
                dec.base().unwrap().values(),
                enc.base().values(),
                "replica diverged at transmission {s}"
            );
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(1, 64, config).unwrap();
        let t0 = enc.encode(&rows(1, 64, 0)).unwrap();
        let t1 = enc.encode(&rows(1, 64, 1)).unwrap();
        let mut dec = Decoder::new();
        assert!(dec.decode(&t1).is_err());
        dec.decode(&t0).unwrap();
        assert!(dec.decode(&t0).is_err()); // replayed duplicate
        dec.decode(&t1).unwrap();
    }

    #[test]
    fn corrupt_update_width_rejected() {
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(1, 64, config).unwrap();
        let mut tx = enc.encode(&rows(1, 64, 0)).unwrap();
        if tx.base_updates.is_empty() {
            tx.base_updates.push(crate::transmission::BaseUpdate {
                slot: 0,
                values: vec![0.0; 3],
            });
        } else {
            tx.base_updates[0].values.pop();
        }
        assert!(Decoder::new().decode(&tx).is_err());
    }

    #[test]
    fn replay_matches_incremental() {
        let config = SbrConfig::new(100, 80);
        let mut enc = SbrEncoder::new(2, 96, config).unwrap();
        let txs: Vec<_> = (0..4)
            .map(|s| enc.encode(&rows(2, 96, s)).unwrap())
            .collect();
        let replayed = Decoder::replay(&txs).unwrap();
        let mut dec = Decoder::new();
        for (i, tx) in txs.iter().enumerate() {
            assert_eq!(replayed[i], dec.decode(tx).unwrap());
        }
    }

    #[test]
    fn empty_transmission_rejected() {
        let tx = Transmission {
            seq: 0,
            n_signals: 1,
            samples_per_signal: 8,
            w: 2,
            base_updates: vec![],
            intervals: vec![],
        };
        assert!(Decoder::new().decode(&tx).is_err());
    }
}
