//! Base-station side: replay transmissions into reconstructed batches while
//! mirroring the sensor's base-signal buffer.

use crate::base_signal::BaseSignal;
use crate::error::{Result, SbrError};
use crate::get_intervals::reconstruct_flat;
use crate::transmission::{Frame, FrameKind, Transmission};

/// Stateful decoder for one sensor's transmission stream.
///
/// Transmissions must be fed in sequence order; each call returns the
/// reconstructed batch (one `Vec` per input signal). The decoder's
/// base-signal buffer evolves exactly as the sensor's did, driven purely by
/// the slot indices carried in the stream — it never runs LFU itself.
///
/// Out-of-order or gapped sequence numbers are rejected with
/// [`SbrError::Gap`]; [`Decoder::decode_frame`] additionally understands v2
/// resync frames, which re-anchor the replica at a new epoch after
/// unrecoverable loss.
#[derive(Debug, Default)]
pub struct Decoder {
    base: Option<BaseSignal>,
    next_seq: u64,
    epoch: u32,
    node: u64,
}

impl Decoder {
    /// A decoder expecting a stream that starts at sequence 0, epoch 0.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// A fresh decoder labelled with the sensor node it tracks, so
    /// [`SbrError::Gap`] errors identify the stream.
    pub fn for_node(node: u64) -> Self {
        Decoder {
            node,
            ..Decoder::default()
        }
    }

    /// Resume from a snapshot: the mirrored base signal (if any chunks were
    /// already applied) and the next expected sequence number. Used by
    /// checkpointed base-station logs to avoid replaying from zero.
    pub fn resume(base: Option<BaseSignal>, next_seq: u64) -> Self {
        Decoder {
            base,
            next_seq,
            epoch: 0,
            node: 0,
        }
    }

    /// [`Decoder::resume`] for epoch-aware (v2) streams: also restores the
    /// resync epoch and the node label.
    pub fn resume_v2(base: Option<BaseSignal>, next_seq: u64, epoch: u32, node: u64) -> Self {
        Decoder {
            base,
            next_seq,
            epoch,
            node,
        }
    }

    fn gap(&self, got: u64) -> SbrError {
        SbrError::Gap {
            node: self.node,
            expected: self.next_seq,
            got,
        }
    }

    /// The candidate layout `X_new = X ∥ updates` a transmission's interval
    /// records reference, *without* advancing the decoder. Fails on the
    /// same inconsistencies `decode` would reject.
    pub fn peek_x_new(&self, tx: &Transmission) -> Result<Vec<f64>> {
        if tx.seq != self.next_seq {
            return Err(self.gap(tx.seq));
        }
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let w = tx.w as usize;
        let mut x_new = self
            .base
            .as_ref()
            .map(|b| b.values().to_vec())
            .unwrap_or_default();
        for (k, u) in tx.base_updates.iter().enumerate() {
            if u.values.len() != w {
                return Err(SbrError::Corrupt(format!(
                    "base update {k} has width {} ≠ W = {w}",
                    u.values.len()
                )));
            }
            x_new.extend_from_slice(&u.values);
        }
        Ok(x_new)
    }

    /// The mirrored base signal (empty before the first transmission).
    pub fn base(&self) -> Option<&BaseSignal> {
        self.base.as_ref()
    }

    /// Sequence number the decoder expects next.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Resync epoch the decoder is currently anchored to (0 until the
    /// stream's first resync frame).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The node label carried into [`SbrError::Gap`] errors.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Decode the next transmission, returning per-signal reconstructions.
    pub fn decode(&mut self, tx: &Transmission) -> Result<Vec<Vec<f64>>> {
        if tx.seq != self.next_seq {
            return Err(self.gap(tx.seq));
        }
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let w = tx.w as usize;
        if w == 0 {
            return Err(SbrError::Corrupt("zero base-interval width".into()));
        }
        let base = self.base.get_or_insert_with(|| BaseSignal::new(w));
        if base.w() != w {
            return Err(SbrError::InconsistentState(format!(
                "stream changed base-interval width from {} to {w}",
                base.w()
            )));
        }
        Self::validate_updates(tx, base.num_slots(), w)?;

        // Decode against the candidate layout X_new = X ∥ updates …
        let mut x_new = base.values().to_vec();
        for u in &tx.base_updates {
            x_new.extend_from_slice(&u.values);
        }
        let n_total = tx.batch_len();
        if n_total == 0 {
            return Err(SbrError::Corrupt("empty batch shape".into()));
        }
        if tx.intervals.is_empty() {
            return Err(SbrError::Corrupt(
                "transmission carries no intervals".into(),
            ));
        }
        let flat = reconstruct_flat(&x_new, &tx.intervals, n_total)?;

        // … then land the updates in their final slots for the next batch.
        for u in &tx.base_updates {
            // lint:allow(cast-truncation): slot range-checked by validate_updates above
            base.apply_insert(u.slot as usize, &u.values, tx.seq)?;
        }

        self.next_seq += 1;
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let m = tx.samples_per_signal as usize;
        Ok(flat.chunks_exact(m).map(<[f64]>::to_vec).collect())
    }

    /// Advance the mirrored base-signal state over a transmission *without*
    /// reconstructing its data — the cheap path a checkpointing log uses on
    /// ingest. Performs the same validation as [`Decoder::decode`].
    pub fn apply_updates_only(&mut self, tx: &Transmission) -> Result<()> {
        if tx.seq != self.next_seq {
            return Err(self.gap(tx.seq));
        }
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let w = tx.w as usize;
        if w == 0 {
            return Err(SbrError::Corrupt("zero base-interval width".into()));
        }
        let base = self.base.get_or_insert_with(|| BaseSignal::new(w));
        if base.w() != w {
            return Err(SbrError::InconsistentState(format!(
                "stream changed base-interval width from {} to {w}",
                base.w()
            )));
        }
        Self::validate_updates(tx, base.num_slots(), w)?;
        for u in &tx.base_updates {
            // lint:allow(cast-truncation): slot range-checked by validate_updates above
            base.apply_insert(u.slot as usize, &u.values, tx.seq)?;
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Decode the next v2 frame. Data frames must match the decoder's
    /// current epoch and sequence; resync frames re-anchor the replica —
    /// the snapshot is installed as the new base signal, the sequence
    /// counter jumps to the frame's, and the epoch advances. Either path is
    /// atomic: on any error the decoder is left exactly as it was.
    pub fn decode_frame(&mut self, frame: &Frame) -> Result<Vec<Vec<f64>>> {
        match frame.kind {
            FrameKind::Data => {
                self.check_data_epoch(frame)?;
                self.decode(&frame.tx)
            }
            FrameKind::Resync => {
                let mut next = self.reanchored(frame)?;
                let out = next.decode(&frame.tx)?;
                *self = next;
                Ok(out)
            }
        }
    }

    /// Frame-level analogue of [`Decoder::apply_updates_only`]: advance the
    /// replica over a v2 frame without reconstructing its data.
    pub fn apply_frame_updates_only(&mut self, frame: &Frame) -> Result<()> {
        match frame.kind {
            FrameKind::Data => {
                self.check_data_epoch(frame)?;
                self.apply_updates_only(&frame.tx)
            }
            FrameKind::Resync => {
                let mut next = self.reanchored(frame)?;
                next.apply_updates_only(&frame.tx)?;
                *self = next;
                Ok(())
            }
        }
    }

    fn check_data_epoch(&self, frame: &Frame) -> Result<()> {
        if frame.epoch != self.epoch {
            return Err(SbrError::InconsistentState(format!(
                "node {}: data frame from epoch {} but decoder is anchored to epoch {}",
                self.node, frame.epoch, self.epoch
            )));
        }
        Ok(())
    }

    /// Build the decoder a resync frame re-anchors to, without touching
    /// `self`: snapshot installed as the base (empty snapshot = the node
    /// rebooted with a fresh encoder), sequence and epoch taken from the
    /// frame. The epoch must strictly advance — a stale or replayed resync
    /// is rejected.
    fn reanchored(&self, frame: &Frame) -> Result<Decoder> {
        if frame.epoch <= self.epoch {
            return Err(SbrError::InconsistentState(format!(
                "node {}: resync epoch {} does not advance past {}",
                self.node, frame.epoch, self.epoch
            )));
        }
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let w = frame.tx.w as usize;
        if w == 0 {
            return Err(SbrError::Corrupt("zero base-interval width".into()));
        }
        if !frame.snapshot.len().is_multiple_of(w) {
            return Err(SbrError::Corrupt(format!(
                "snapshot length {} is not a multiple of W = {w}",
                frame.snapshot.len()
            )));
        }
        let base = if frame.snapshot.is_empty() {
            None
        } else {
            let mut b = BaseSignal::new(w);
            for (slot, vals) in frame.snapshot.chunks_exact(w).enumerate() {
                b.apply_insert(slot, vals, frame.tx.seq)?;
            }
            Some(b)
        };
        Ok(Decoder {
            base,
            next_seq: frame.tx.seq,
            epoch: frame.epoch,
            node: self.node,
        })
    }

    /// Validate every update (width and slot) *before* any mutation, so a
    /// malformed transmission can never leave the replica partially
    /// updated. Slots must hit existing slots or extend the buffer
    /// contiguously, mirroring what `apply_insert` will accept.
    fn validate_updates(tx: &Transmission, mut slots: usize, w: usize) -> Result<()> {
        for (k, u) in tx.base_updates.iter().enumerate() {
            if u.values.len() != w {
                return Err(SbrError::Corrupt(format!(
                    "base update {k} has width {} ≠ W = {w}",
                    u.values.len()
                )));
            }
            let slot = usize::try_from(u.slot).map_err(|_| {
                SbrError::InconsistentState(format!(
                    "base update {k} targets slot {} beyond the address space",
                    u.slot
                ))
            })?;
            if slot > slots {
                return Err(SbrError::InconsistentState(format!(
                    "base update {k} targets slot {slot} but only {slots} slots exist"
                )));
            }
            if slot == slots {
                slots += 1;
            }
        }
        Ok(())
    }

    /// Snapshot the decoder state for later [`Decoder::resume`].
    pub fn snapshot(&self) -> (Option<BaseSignal>, u64) {
        (self.base.clone(), self.next_seq)
    }

    /// Decode a full stream from scratch (replay helper for historical
    /// queries): returns the reconstruction of every batch.
    pub fn replay(stream: &[Transmission]) -> Result<Vec<Vec<Vec<f64>>>> {
        let mut d = Decoder::new();
        stream.iter().map(|tx| d.decode(tx)).collect()
    }

    /// Frame-level [`Decoder::replay`]: decode a full v2 stream (resyncs
    /// included) from scratch.
    pub fn replay_frames(stream: &[Frame]) -> Result<Vec<Vec<Vec<f64>>>> {
        let mut d = Decoder::new();
        stream.iter().map(|f| d.decode_frame(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;
    use crate::sbr::SbrEncoder;

    fn rows(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..m)
                    .map(|i| {
                        let t = (i as f64) + (seed as f64) * 31.0;
                        (t * 0.37 + r as f64).sin() * 4.0 + t * 0.02 * (r + 1) as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn decoder_mirrors_encoder_base_signal() {
        let config = SbrConfig::new(120, 96);
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        let mut dec = Decoder::new();
        for s in 0..5 {
            let tx = enc.encode(&rows(2, 128, s)).unwrap();
            dec.decode(&tx).unwrap();
            assert_eq!(
                dec.base().unwrap().values(),
                enc.base().values(),
                "replica diverged at transmission {s}"
            );
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(1, 64, config).unwrap();
        let t0 = enc.encode(&rows(1, 64, 0)).unwrap();
        let t1 = enc.encode(&rows(1, 64, 1)).unwrap();
        let mut dec = Decoder::new();
        assert!(dec.decode(&t1).is_err());
        dec.decode(&t0).unwrap();
        assert!(dec.decode(&t0).is_err()); // replayed duplicate
        dec.decode(&t1).unwrap();
    }

    #[test]
    fn corrupt_update_width_rejected() {
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(1, 64, config).unwrap();
        let mut tx = enc.encode(&rows(1, 64, 0)).unwrap();
        if tx.base_updates.is_empty() {
            tx.base_updates.push(crate::transmission::BaseUpdate {
                slot: 0,
                values: vec![0.0; 3],
            });
        } else {
            tx.base_updates[0].values.pop();
        }
        assert!(Decoder::new().decode(&tx).is_err());
    }

    #[test]
    fn replay_matches_incremental() {
        let config = SbrConfig::new(100, 80);
        let mut enc = SbrEncoder::new(2, 96, config).unwrap();
        let txs: Vec<_> = (0..4)
            .map(|s| enc.encode(&rows(2, 96, s)).unwrap())
            .collect();
        let replayed = Decoder::replay(&txs).unwrap();
        let mut dec = Decoder::new();
        for (i, tx) in txs.iter().enumerate() {
            assert_eq!(replayed[i], dec.decode(tx).unwrap());
        }
    }

    #[test]
    fn empty_transmission_rejected() {
        let tx = Transmission {
            seq: 0,
            n_signals: 1,
            samples_per_signal: 8,
            w: 2,
            base_updates: vec![],
            intervals: vec![],
        };
        assert!(Decoder::new().decode(&tx).is_err());
    }

    #[test]
    fn gap_error_names_node_and_sequences() {
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(1, 64, config).unwrap();
        enc.encode(&rows(1, 64, 0)).unwrap();
        let t1 = enc.encode(&rows(1, 64, 1)).unwrap();
        let mut dec = Decoder::for_node(7);
        assert_eq!(
            dec.decode(&t1).unwrap_err(),
            SbrError::Gap {
                node: 7,
                expected: 0,
                got: 1
            }
        );
    }

    #[test]
    fn resync_frame_reanchors_mid_stream() {
        // Encoder runs 4 chunks; the decoder only ever sees chunk 3, as a
        // resync frame carrying the pre-encode base snapshot. Its
        // reconstruction must match a decoder that saw everything.
        let config = SbrConfig::new(120, 96);
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        let mut full = Decoder::new();
        let mut txs = Vec::new();
        for s in 0..3 {
            let tx = enc.encode(&rows(2, 128, s)).unwrap();
            full.decode(&tx).unwrap();
            txs.push(tx);
        }
        let snapshot = enc.base().values().to_vec();
        let tx3 = enc.encode(&rows(2, 128, 3)).unwrap();
        let expect = full.decode(&tx3).unwrap();

        let mut lossy = Decoder::for_node(2);
        let frame = Frame::resync(1, snapshot, tx3);
        assert_eq!(lossy.decode_frame(&frame).unwrap(), expect);
        assert_eq!(lossy.epoch(), 1);
        assert_eq!(lossy.next_seq(), 4);
        assert_eq!(lossy.base().unwrap().values(), enc.base().values());
    }

    #[test]
    fn reboot_resync_restarts_from_empty_base() {
        let config = SbrConfig::new(120, 96);
        let mut enc = SbrEncoder::new(2, 128, config.clone()).unwrap();
        let mut dec = Decoder::new();
        for s in 0..2 {
            dec.decode(&enc.encode(&rows(2, 128, s)).unwrap()).unwrap();
        }
        // Node reboots: fresh encoder, seq restarts at 0, epoch bumps.
        let mut enc2 = SbrEncoder::new(2, 128, config).unwrap();
        let tx = enc2.encode(&rows(2, 128, 9)).unwrap();
        let mut shadow = Decoder::new();
        let expect = shadow.decode(&tx.clone()).unwrap();
        let got = dec.decode_frame(&Frame::resync(1, vec![], tx)).unwrap();
        assert_eq!(got, expect);
        assert_eq!(dec.next_seq(), 1);
        assert_eq!(dec.base().unwrap().values(), enc2.base().values());
    }

    #[test]
    fn stale_resync_and_wrong_epoch_data_rejected_atomically() {
        let config = SbrConfig::new(120, 96);
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        let mut dec = Decoder::new();
        let t0 = enc.encode(&rows(2, 128, 0)).unwrap();
        dec.decode_frame(&Frame::data(0, t0.clone())).unwrap();
        let before = dec.snapshot();

        // Replayed resync with a non-advancing epoch.
        let stale = Frame::resync(0, vec![], t0.clone());
        assert!(dec.decode_frame(&stale).is_err());
        // Data frame claiming a future epoch (its resync was lost).
        let t1 = enc.encode(&rows(2, 128, 1)).unwrap();
        assert!(dec.decode_frame(&Frame::data(3, t1.clone())).is_err());
        // Malformed snapshot length.
        let ragged = Frame::resync(1, vec![1.0; 3], t1.clone());
        assert!(dec.decode_frame(&ragged).is_err());

        let after = dec.snapshot();
        assert_eq!(before.1, after.1, "failed frames must not advance seq");
        assert_eq!(
            before.0.as_ref().map(|b| b.values().to_vec()),
            after.0.as_ref().map(|b| b.values().to_vec()),
            "failed frames must not mutate the base"
        );
        assert_eq!(dec.epoch(), 0);
        // The in-sequence frame still lands.
        dec.decode_frame(&Frame::data(0, t1)).unwrap();
    }
}
