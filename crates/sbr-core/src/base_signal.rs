//! The base-signal buffer: a dictionary of `W`-sample intervals with LFU
//! replacement.
//!
//! §3.2/§4.3 of the paper: each sensor reserves `M_base` values of memory
//! for the base signal, organized as a list of equal-width *base intervals*
//! ("slots" here). The algorithms see the buffer as the flat concatenation
//! of its slots. When insertions would overflow `M_base`, the least
//! frequently used old slots are evicted and the new intervals take their
//! places; the slot index of every inserted interval is transmitted, so the
//! base-station replica (see [`crate::decoder`]) stays identical without
//! running LFU itself.

use crate::error::{Result, SbrError};

/// Per-slot bookkeeping.
#[derive(Debug, Clone, PartialEq)]
struct SlotMeta {
    /// How many data intervals have been mapped onto (any part of) this slot
    /// across the buffer's lifetime — the LFU statistic.
    use_count: u64,
    /// Transmission sequence number at which the slot's current content was
    /// inserted. Used to break LFU ties (older first).
    inserted_at: u64,
}

/// A base-signal buffer of `W`-wide slots.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseSignal {
    w: usize,
    values: Vec<f64>,
    meta: Vec<SlotMeta>,
}

impl BaseSignal {
    /// An empty buffer whose slots will be `w` samples wide.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "base interval width must be positive");
        BaseSignal {
            w,
            values: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Slot width `W`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Current number of occupied slots.
    pub fn num_slots(&self) -> usize {
        self.meta.len()
    }

    /// Current length in values (`num_slots × W`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no slots are occupied (the state before the first
    /// transmission).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat signal `X` the approximation algorithms shift over.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// One slot's values.
    pub fn slot(&self, i: usize) -> &[f64] {
        &self.values[i * self.w..(i + 1) * self.w]
    }

    /// LFU statistic of a slot.
    pub fn use_count(&self, i: usize) -> u64 {
        self.meta[i].use_count
    }

    /// Record that a data interval was mapped onto `X[shift .. shift+len)`:
    /// every slot the window overlaps becomes "used" once.
    pub fn record_use(&mut self, shift: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = shift / self.w;
        let last = (shift + len - 1) / self.w;
        for s in first..=last.min(self.meta.len().saturating_sub(1)) {
            self.meta[s].use_count += 1;
        }
    }

    /// Add `by` uses to one slot directly (used by the SBR driver when
    /// translating usage recorded against the pre-placement layout).
    pub fn bump_use(&mut self, slot: usize, by: u64) {
        self.meta[slot].use_count += by;
    }

    /// Plan where `n_new` inserted intervals will land given a capacity of
    /// `capacity_slots`, evicting LFU old slots if needed.
    ///
    /// Returns the final slot index of each new interval, in insertion
    /// order. Following Algorithm 5 lines 10–13: the first new intervals are
    /// appended; once capacity is exhausted the *last* ones replace the
    /// evicted LFU slots.
    pub fn plan_placement(&self, n_new: usize, capacity_slots: usize) -> Result<Vec<usize>> {
        let s = self.num_slots();
        if n_new > capacity_slots {
            return Err(SbrError::InvalidConfig(format!(
                "cannot place {n_new} new base intervals into a buffer of \
                 {capacity_slots} slots"
            )));
        }
        let appended = n_new.min(capacity_slots.saturating_sub(s));
        let replaced = n_new - appended;

        let mut placements: Vec<usize> = (s..s + appended).collect();
        if replaced > 0 {
            // LFU among existing slots, ties broken by age (older first),
            // then by index for determinism.
            let mut order: Vec<usize> = (0..s).collect();
            order.sort_by_key(|&i| (self.meta[i].use_count, self.meta[i].inserted_at, i));
            let mut victims: Vec<usize> = order.into_iter().take(replaced).collect();
            victims.sort_unstable();
            placements.extend(victims);
        }
        Ok(placements)
    }

    /// Write one inserted interval to its final slot. `slot` must be at most
    /// `num_slots()` (append) and the interval must be exactly `W` wide.
    pub fn apply_insert(&mut self, slot: usize, interval: &[f64], seq: u64) -> Result<()> {
        if interval.len() != self.w {
            return Err(SbrError::InvalidConfig(format!(
                "base interval has width {} but the buffer uses W = {}",
                interval.len(),
                self.w
            )));
        }
        match slot.cmp(&self.meta.len()) {
            std::cmp::Ordering::Less => {
                let off = slot * self.w;
                self.values[off..off + self.w].copy_from_slice(interval);
                self.meta[slot] = SlotMeta {
                    use_count: 0,
                    inserted_at: seq,
                };
                Ok(())
            }
            std::cmp::Ordering::Equal => {
                self.values.extend_from_slice(interval);
                self.meta.push(SlotMeta {
                    use_count: 0,
                    inserted_at: seq,
                });
                Ok(())
            }
            std::cmp::Ordering::Greater => Err(SbrError::InconsistentState(format!(
                "insert targets slot {slot} but only {} slots exist",
                self.meta.len()
            ))),
        }
    }

    /// Decompose into raw parts for persistence: the slot width, the flat
    /// values, and per-slot `(use_count, inserted_at)` bookkeeping. The
    /// inverse of [`BaseSignal::from_raw`].
    pub fn to_raw(&self) -> (usize, &[f64], Vec<(u64, u64)>) {
        (
            self.w,
            &self.values,
            self.meta
                .iter()
                .map(|m| (m.use_count, m.inserted_at))
                .collect(),
        )
    }

    /// Rebuild a buffer from parts produced by [`BaseSignal::to_raw`].
    /// The values length must be exactly `meta.len() × w`.
    pub fn from_raw(w: usize, values: Vec<f64>, meta: Vec<(u64, u64)>) -> Result<Self> {
        if w == 0 {
            return Err(SbrError::InvalidConfig(
                "base interval width must be positive".to_string(),
            ));
        }
        if values.len() != meta.len() * w {
            return Err(SbrError::InvalidConfig(format!(
                "base signal has {} values for {} slots of width {w}",
                values.len(),
                meta.len()
            )));
        }
        Ok(BaseSignal {
            w,
            values,
            meta: meta
                .into_iter()
                .map(|(use_count, inserted_at)| SlotMeta {
                    use_count,
                    inserted_at,
                })
                .collect(),
        })
    }

    /// The flat candidate signal `X ∥ cand₁ ∥ … ∥ cand_k` used while probing
    /// how many candidate intervals to insert (Algorithm 6). Reuses `buf`.
    pub fn flat_with_appended<'a>(&self, cands: &[&[f64]], buf: &'a mut Vec<f64>) -> &'a [f64] {
        buf.clear();
        buf.extend_from_slice(&self.values);
        for c in cands {
            buf.extend_from_slice(c);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(w: usize, slots: usize) -> BaseSignal {
        let mut b = BaseSignal::new(w);
        for s in 0..slots {
            let vals: Vec<f64> = (0..w).map(|i| (s * w + i) as f64).collect();
            b.apply_insert(s, &vals, 0).unwrap();
        }
        b
    }

    #[test]
    fn append_grows_buffer() {
        let b = filled(4, 3);
        assert_eq!(b.num_slots(), 3);
        assert_eq!(b.len(), 12);
        assert_eq!(b.slot(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn insert_wrong_width_rejected() {
        let mut b = BaseSignal::new(4);
        assert!(b.apply_insert(0, &[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn insert_beyond_end_rejected() {
        let mut b = BaseSignal::new(2);
        assert!(b.apply_insert(1, &[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn replace_overwrites_and_resets_lfu() {
        let mut b = filled(2, 2);
        b.record_use(0, 2); // slot 0 used
        assert_eq!(b.use_count(0), 1);
        b.apply_insert(0, &[9.0, 9.0], 5).unwrap();
        assert_eq!(b.slot(0), &[9.0, 9.0]);
        assert_eq!(b.use_count(0), 0);
        assert_eq!(b.num_slots(), 2);
    }

    #[test]
    fn record_use_spans_slots() {
        let mut b = filled(4, 3);
        // Window [2, 7) overlaps slots 0 and 1.
        b.record_use(2, 5);
        assert_eq!(b.use_count(0), 1);
        assert_eq!(b.use_count(1), 1);
        assert_eq!(b.use_count(2), 0);
    }

    #[test]
    fn record_use_zero_len_noop() {
        let mut b = filled(4, 1);
        b.record_use(0, 0);
        assert_eq!(b.use_count(0), 0);
    }

    #[test]
    fn placement_appends_when_space() {
        let b = filled(2, 2);
        let p = b.plan_placement(2, 8).unwrap();
        assert_eq!(p, vec![2, 3]);
    }

    #[test]
    fn placement_evicts_lfu_when_full() {
        let mut b = filled(2, 4);
        // Slots 1 and 3 get used; 0 and 2 are cold.
        b.record_use(2, 2);
        b.record_use(6, 2);
        let p = b.plan_placement(2, 4).unwrap();
        // Capacity full: both new intervals replace the LFU slots 0 and 2.
        assert_eq!(p, vec![0, 2]);
    }

    #[test]
    fn placement_mixes_append_and_evict() {
        let mut b = filled(2, 3);
        b.record_use(0, 2); // slot 0 hot
        b.record_use(2, 2); // slot 1 hot
        let p = b.plan_placement(2, 4).unwrap();
        // One appended at slot 3, the last one replaces cold slot 2.
        assert_eq!(p, vec![3, 2]);
    }

    #[test]
    fn placement_overflow_rejected() {
        let b = filled(2, 1);
        assert!(b.plan_placement(5, 4).is_err());
    }

    #[test]
    fn lfu_ties_break_by_age_then_index() {
        let mut b = BaseSignal::new(1);
        b.apply_insert(0, &[0.0], 3).unwrap(); // newer
        b.apply_insert(1, &[1.0], 1).unwrap(); // oldest
        b.apply_insert(2, &[2.0], 2).unwrap();
        let p = b.plan_placement(1, 3).unwrap();
        assert_eq!(p, vec![1]); // all counts equal → oldest evicted
    }

    #[test]
    fn flat_with_appended_concatenates() {
        let b = filled(2, 1);
        let extra = [7.0, 8.0];
        let mut buf = Vec::new();
        let flat = b.flat_with_appended(&[&extra], &mut buf);
        assert_eq!(flat, &[0.0, 1.0, 7.0, 8.0]);
    }
}
