//! The interval data structure of §4.2 and its wire representation.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Sentinel `shift` marking an interval approximated by the linear-regression
/// fall-back (regression against the time index) instead of a base-signal
/// segment. The paper encodes this as a negative shift.
pub const LINEAR_FALLBACK_SHIFT: i64 = -1;

/// A data interval together with its best approximation, as produced by
/// `BestMap` / `GetIntervals`.
///
/// The interval covers `Y[start .. start + length)` of the concatenated data
/// series and is approximated as `a · X[shift .. shift + length) + b` when
/// `shift ≥ 0`, or as `a · i + b` over the local index `i` when
/// `shift == -1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Offset into the concatenated data series `Y`.
    pub start: usize,
    /// Number of samples covered.
    pub length: usize,
    /// Offset into the base signal, or [`LINEAR_FALLBACK_SHIFT`].
    pub shift: i64,
    /// Regression slope.
    pub a: f64,
    /// Regression intercept.
    pub b: f64,
    /// Error of the approximation under the encoder's metric.
    pub err: f64,
}

impl Interval {
    /// A fresh interval covering `[start, start+length)` with no fit yet.
    pub fn unfitted(start: usize, length: usize) -> Self {
        Interval {
            start,
            length,
            shift: LINEAR_FALLBACK_SHIFT,
            a: 0.0,
            b: 0.0,
            err: f64::INFINITY,
        }
    }

    /// True when this interval uses the linear-regression fall-back.
    pub fn is_fallback(&self) -> bool {
        self.shift < 0
    }

    /// The four-value wire record (§4.2: *"for each interval … a record with
    /// four values (I.start, I.shift, I.a, I.b) is transmitted"*; the length
    /// is recovered at the base station from consecutive starts).
    pub fn record(&self) -> IntervalRecord {
        IntervalRecord {
            start: self.start as u64,
            shift: self.shift,
            a: self.a,
            b: self.b,
        }
    }
}

/// Wire form of an interval: exactly the four transmitted values.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct IntervalRecord {
    /// Offset into the concatenated data series.
    pub start: u64,
    /// Base-signal offset, or negative for the linear fall-back.
    pub shift: i64,
    /// Regression slope.
    pub a: f64,
    /// Regression intercept.
    pub b: f64,
}

impl IntervalRecord {
    /// Number of bandwidth "values" one record consumes (§4.3 item 2).
    pub const COST: usize = 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfitted_starts_as_fallback_with_infinite_error() {
        let i = Interval::unfitted(10, 5);
        assert!(i.is_fallback());
        assert!(i.err.is_infinite());
        assert_eq!((i.start, i.length), (10, 5));
    }

    #[test]
    fn record_carries_the_four_values() {
        let i = Interval {
            start: 7,
            length: 3,
            shift: 42,
            a: 1.5,
            b: -2.0,
            err: 0.25,
        };
        let r = i.record();
        assert_eq!(r.start, 7);
        assert_eq!(r.shift, 42);
        assert_eq!(r.a, 1.5);
        assert_eq!(r.b, -2.0);
    }

    #[test]
    fn mapped_interval_is_not_fallback() {
        let mut i = Interval::unfitted(0, 4);
        i.shift = 0;
        assert!(!i.is_fallback());
    }
}
