//! Aggregate queries answered *directly on the compressed representation*.
//!
//! The approximate-query-processing literature the paper builds on
//! (histogram/wavelet synopses) values synopses you can query without
//! expanding. SBR's interval records have the same property: over a record
//! `ŷ_i = a·X[shift + i] + b`, the sum of reconstructed values on any
//! sub-range is `a · Σ X[..] + b · len`, and `Σ X[..]` comes from a prefix
//! sum over the base signal in O(1). A range-SUM/AVG query therefore costs
//! `O(#intervals touched)` instead of `O(#samples)`; MIN/MAX scan only the
//! touched base segments.
//!
//! Two layers build on that algebra:
//!
//! - [`ChunkView`] — a borrowed, throwaway view over one chunk, used when
//!   the caller replays a stream once (the legacy `aggregate_stream` path).
//! - [`ChunkSummary`] + [`QueryEngine`] — the compressed-domain query
//!   engine. A summary is built *once* per chunk (at ingest or stream
//!   load): per-interval moments (count, Σ, min/max of the referenced base
//!   segment, pre-folded through `a·X+b`) plus prefix sums over both the
//!   base signal and the interval moments, so any later query folds each
//!   touched interval in O(1) and decodes only the (at most two) intervals
//!   a range splits mid-way. The engine adds a small plan cache keyed by
//!   `(signal, range, aggregate class)` and serves the TAG aggregate set —
//!   SUM/AVG/MIN/MAX — without ever inflating a chunk.

use std::collections::HashMap;

use crate::error::{Result, SbrError};
use crate::interval::IntervalRecord;
use crate::obs::QueryObs;
use crate::regression::PrefixStats;

/// A queryable view over one decoded chunk's records and the base signal
/// those records reference (the `X_new` layout of its transmission).
///
/// ```
/// use sbr_core::{query::ChunkView, IntervalRecord};
/// // One fall-back record: ŷ_i = 2·i + 1 over 4 samples → 1, 3, 5, 7.
/// let records = [IntervalRecord { start: 0, shift: -1, a: 2.0, b: 1.0 }];
/// let view = ChunkView::new(&records, &[], 4).unwrap();
/// assert_eq!(view.range_sum(0, 4).unwrap(), 16.0);
/// assert_eq!(view.range_avg(1, 3).unwrap(), 4.0);
/// assert_eq!(view.range_min_max(0, 4).unwrap(), (1.0, 7.0));
/// ```
pub struct ChunkView<'a> {
    records: Vec<IntervalRecord>,
    base: &'a [f64],
    base_stats: PrefixStats,
    n_total: usize,
}

impl<'a> ChunkView<'a> {
    /// Build a view. `records` are the chunk's interval records (any
    /// order); `base` is the flat base signal they reference; `n_total` the
    /// chunk's value count.
    pub fn new(records: &[IntervalRecord], base: &'a [f64], n_total: usize) -> Result<Self> {
        let mut records = records.to_vec();
        records.sort_by_key(|r| r.start);
        if let Some(first) = records.first() {
            if first.start != 0 {
                return Err(SbrError::Corrupt(format!(
                    "records leave [0, {}) uncovered",
                    first.start
                )));
            }
        }
        // Validate coverage once so queries can't go out of bounds.
        for (k, r) in records.iter().enumerate() {
            let end = records.get(k + 1).map_or(n_total, |nx| nx.start as usize);
            if r.start as usize >= end || end > n_total {
                return Err(SbrError::Corrupt(format!(
                    "record {k} covers [{}, {end}) of {n_total}",
                    r.start
                )));
            }
            if r.shift >= 0 && r.shift as usize + (end - r.start as usize) > base.len() {
                return Err(SbrError::Corrupt(format!(
                    "record {k} runs past the base signal"
                )));
            }
        }
        Ok(ChunkView {
            records,
            base,
            base_stats: PrefixStats::new(base),
            n_total,
        })
    }

    /// Number of values in the chunk.
    pub fn len(&self) -> usize {
        self.n_total
    }

    /// True for an empty chunk (cannot be constructed from a valid
    /// transmission).
    pub fn is_empty(&self) -> bool {
        self.n_total == 0
    }

    fn record_end(&self, k: usize) -> usize {
        self.records
            .get(k + 1)
            .map_or(self.n_total, |r| r.start as usize)
    }

    /// Indices of the records overlapping `[t0, t1)`.
    fn touching(&self, t0: usize, t1: usize) -> std::ops::Range<usize> {
        let first = self
            .records
            .partition_point(|r| (r.start as usize) <= t0)
            .saturating_sub(1);
        let last = self.records.partition_point(|r| (r.start as usize) < t1);
        first..last
    }

    /// Exact sum of the *reconstruction* over `[t0, t1)` in
    /// `O(#records touched)`.
    pub fn range_sum(&self, t0: usize, t1: usize) -> Result<f64> {
        self.check_range(t0, t1)?;
        let mut acc = 0.0f64;
        for k in self.touching(t0, t1) {
            let r = &self.records[k];
            let rs = r.start as usize;
            let re = self.record_end(k);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s >= e {
                continue;
            }
            let len = e - s;
            if r.shift < 0 {
                // Fall-back line over the local index i ∈ [s-rs, e-rs):
                // Σ (a·i + b) = a · Σi + b·len.
                let i0 = (s - rs) as f64;
                let i1 = (e - rs - 1) as f64;
                let sum_i = (i0 + i1) * len as f64 / 2.0;
                acc += r.a * sum_i + r.b * len as f64;
            } else {
                let off = r.shift as usize + (s - rs);
                let sum_x = self.base_stats.window_sum(off, len);
                acc += r.a * sum_x + r.b * len as f64;
            }
        }
        Ok(acc)
    }

    /// Average of the reconstruction over `[t0, t1)`.
    pub fn range_avg(&self, t0: usize, t1: usize) -> Result<f64> {
        if t1 <= t0 {
            return Err(SbrError::InconsistentState(format!(
                "empty range [{t0}, {t1})"
            )));
        }
        Ok(self.range_sum(t0, t1)? / (t1 - t0) as f64)
    }

    /// Minimum and maximum of the reconstruction over `[t0, t1)`; scans
    /// only the touched base segments.
    pub fn range_min_max(&self, t0: usize, t1: usize) -> Result<(f64, f64)> {
        self.check_range(t0, t1)?;
        if t1 == t0 {
            return Err(SbrError::InconsistentState("empty range".into()));
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in self.touching(t0, t1) {
            let r = &self.records[k];
            let rs = r.start as usize;
            let re = self.record_end(k);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s >= e {
                continue;
            }
            if r.shift < 0 {
                // Monotone in i: endpoints suffice.
                let v0 = r.a * (s - rs) as f64 + r.b;
                let v1 = r.a * (e - 1 - rs) as f64 + r.b;
                lo = lo.min(v0.min(v1));
                hi = hi.max(v0.max(v1));
            } else {
                let off = r.shift as usize + (s - rs);
                for &x in &self.base[off..off + (e - s)] {
                    let v = r.a * x + r.b;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        Ok((lo, hi))
    }

    fn check_range(&self, t0: usize, t1: usize) -> Result<()> {
        if t0 > t1 || t1 > self.n_total {
            return Err(SbrError::InconsistentState(format!(
                "range [{t0}, {t1}) outside chunk of {} values",
                self.n_total
            )));
        }
        Ok(())
    }
}

/// Stream-level aggregates over a sequence of transmissions: replays
/// base-signal updates (cheap — no reconstruction) and queries each touched
/// chunk through a [`ChunkView`]. This is the one implementation behind the
/// base station's and the CLI's range-aggregate queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAggregate {
    /// Sum of the reconstruction over the range.
    pub sum: f64,
    /// Average over the range.
    pub avg: f64,
    /// Minimum over the range.
    pub min: f64,
    /// Maximum over the range.
    pub max: f64,
    /// Samples covered.
    pub count: usize,
}

/// SUM/AVG/MIN/MAX of `signal` over the absolute sample range `[t0, t1)`
/// of a transmission stream. `decoder` must be positioned at or before the
/// first chunk the range touches; it is advanced past the last touched
/// chunk (updates only — no reconstruction).
pub fn aggregate_stream(
    decoder: &mut crate::decoder::Decoder,
    transmissions: &[crate::transmission::Transmission],
    signal: usize,
    t0: usize,
    t1: usize,
) -> Result<StreamAggregate> {
    if t1 <= t0 {
        return Err(SbrError::InconsistentState(format!(
            "empty range [{t0}, {t1})"
        )));
    }
    let m = transmissions
        .first()
        .map(|t| t.samples_per_signal as usize)
        .ok_or_else(|| SbrError::InconsistentState("no transmissions".into()))?;
    let first_chunk = t0 / m;
    let last_chunk = t1.div_ceil(m);
    if last_chunk > transmissions.len() {
        return Err(SbrError::InconsistentState(format!(
            "range [{t0}, {t1}) runs past the {} logged samples",
            transmissions.len() * m
        )));
    }
    if decoder.next_seq() as usize > first_chunk {
        return Err(SbrError::InconsistentState(format!(
            "decoder already at chunk {} > first touched chunk {first_chunk}",
            decoder.next_seq()
        )));
    }
    while (decoder.next_seq() as usize) < first_chunk {
        decoder.apply_updates_only(&transmissions[decoder.next_seq() as usize])?;
    }
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut count = 0usize;
    for (c, tx) in transmissions
        .iter()
        .enumerate()
        .take(last_chunk)
        .skip(first_chunk)
    {
        if signal >= tx.n_signals as usize {
            return Err(SbrError::InconsistentState(format!(
                "stream has no signal {signal}"
            )));
        }
        let x_new = decoder.peek_x_new(tx)?;
        let view = ChunkView::new(&tx.intervals, &x_new, tx.batch_len())?;
        let chunk_t0 = c * m;
        let lo = t0.max(chunk_t0) - chunk_t0;
        let hi = t1.min(chunk_t0 + m) - chunk_t0;
        let (s, e) = (signal * m + lo, signal * m + hi);
        sum += view.range_sum(s, e)?;
        let (vmin, vmax) = view.range_min_max(s, e)?;
        min = min.min(vmin);
        max = max.max(vmax);
        count += e - s;
        decoder.apply_updates_only(tx)?;
    }
    Ok(StreamAggregate {
        sum,
        avg: sum / count as f64,
        min,
        max,
        count,
    })
}

/// The TAG aggregate set served by the compressed-domain engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Aggregate {
    /// Range sum.
    Sum,
    /// Range average.
    Avg,
    /// Range minimum.
    Min,
    /// Range maximum.
    Max,
}

/// How a query's touched intervals were resolved: `folded` in O(1) from
/// precomputed moments, or `boundary` — split mid-way by the range, so only
/// the covered window was evaluated directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldCounts {
    /// Intervals fully covered by the range, answered from moments.
    pub folded: u64,
    /// Intervals the range splits; their covered window is scanned.
    pub boundary: u64,
}

impl FoldCounts {
    fn absorb(&mut self, other: FoldCounts) {
        self.folded += other.folded;
        self.boundary += other.boundary;
    }
}

/// Precomputed aggregate moments of one interval record, folded through
/// `a·X+b`: the sum, minimum and maximum of the record's *reconstruction*.
#[derive(Clone, Copy, Debug)]
struct SegMoments {
    sum: f64,
    min: f64,
    max: f64,
}

/// An owned, immutable compressed-domain synopsis of one chunk.
///
/// Built once — at base-station ingest or stream load — from the chunk's
/// interval records and the `X_new` base layout they reference. Stores:
///
/// - the records (sorted, coverage-validated) and their end offsets,
/// - per-record [`SegMoments`] (Σ/min/max of the reconstruction, computed
///   with the *same floating-point expression* the decoder uses, so min and
///   max are bit-for-bit identical to a decode-then-scan),
/// - prefix sums over both the base signal (`PrefixStats`) and the
///   per-record sums, so a range sum costs O(1) beyond the two boundary
///   records.
///
/// All offsets are flat chunk indices (`signal · m + local`), matching
/// [`ChunkView`].
#[derive(Clone, Debug)]
pub struct ChunkSummary {
    records: Vec<IntervalRecord>,
    /// `records[k]` covers `[records[k].start, ends[k])`.
    ends: Vec<usize>,
    moments: Vec<SegMoments>,
    /// `prefix_sums[k]` = Σ of `moments[..k].sum`; length `records.len()+1`.
    prefix_sums: Vec<f64>,
    base: Vec<f64>,
    base_stats: PrefixStats,
    n_signals: usize,
    m: usize,
    n_total: usize,
}

impl ChunkSummary {
    /// Build a summary from a chunk's records and the flat base signal they
    /// reference. `n_signals · m` must equal the chunk's value count and be
    /// fully covered by `records`.
    pub fn new(
        records: &[IntervalRecord],
        base: Vec<f64>,
        n_signals: usize,
        m: usize,
    ) -> Result<Self> {
        let n_total = n_signals * m;
        let mut records = records.to_vec();
        records.sort_by_key(|r| r.start);
        match records.first() {
            Some(first) if first.start != 0 => {
                return Err(SbrError::Corrupt(format!(
                    "records leave [0, {}) uncovered",
                    first.start
                )));
            }
            None if n_total != 0 => {
                return Err(SbrError::Corrupt(format!(
                    "no records cover the {n_total}-value chunk"
                )));
            }
            _ => {}
        }
        let mut ends = Vec::with_capacity(records.len());
        for (k, r) in records.iter().enumerate() {
            let end = records.get(k + 1).map_or(n_total, |nx| nx.start as usize);
            if r.start as usize >= end || end > n_total {
                return Err(SbrError::Corrupt(format!(
                    "record {k} covers [{}, {end}) of {n_total}",
                    r.start
                )));
            }
            if r.shift >= 0 && r.shift as usize + (end - r.start as usize) > base.len() {
                return Err(SbrError::Corrupt(format!(
                    "record {k} runs past the base signal"
                )));
            }
            ends.push(end);
        }
        let base_stats = PrefixStats::new(&base);
        let mut moments = Vec::with_capacity(records.len());
        let mut prefix_sums = Vec::with_capacity(records.len() + 1);
        prefix_sums.push(0.0);
        for (k, r) in records.iter().enumerate() {
            let len = ends[k] - r.start as usize;
            let mom = if r.shift < 0 {
                // Fall-back line a·i + b over i ∈ [0, len). fl(a·i)+b is
                // monotone in i (rounding preserves order), so the decoded
                // min/max sit at the endpoints — bit-exact vs a full decode.
                let sum_i = (len as f64 - 1.0) * len as f64 / 2.0;
                let v0 = r.a * 0.0 + r.b;
                let v1 = r.a * (len - 1) as f64 + r.b;
                SegMoments {
                    sum: r.a * sum_i + r.b * len as f64,
                    min: v0.min(v1),
                    max: v0.max(v1),
                }
            } else {
                let off = r.shift as usize;
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &x in &base[off..off + len] {
                    // Same expression as `reconstruct_flat` → bit-exact.
                    let v = r.a * x + r.b;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                SegMoments {
                    sum: r.a * base_stats.window_sum(off, len) + r.b * len as f64,
                    min: lo,
                    max: hi,
                }
            };
            prefix_sums.push(prefix_sums[k] + mom.sum);
            moments.push(mom);
        }
        Ok(ChunkSummary {
            records,
            ends,
            moments,
            prefix_sums,
            base,
            base_stats,
            n_signals,
            m,
            n_total,
        })
    }

    /// Build a summary straight from a transmission and the `X_new` base
    /// layout its records reference (see
    /// [`Decoder::peek_x_new`](crate::decoder::Decoder::peek_x_new)).
    pub fn from_transmission(
        tx: &crate::transmission::Transmission,
        x_new: Vec<f64>,
    ) -> Result<Self> {
        ChunkSummary::new(
            &tx.intervals,
            x_new,
            tx.n_signals as usize,
            tx.samples_per_signal as usize,
        )
    }

    /// Values in the chunk.
    pub fn len(&self) -> usize {
        self.n_total
    }

    /// True when the chunk holds no values.
    pub fn is_empty(&self) -> bool {
        self.n_total == 0
    }

    /// Signals per chunk.
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }

    /// Samples per signal.
    pub fn samples_per_signal(&self) -> usize {
        self.m
    }

    /// Indices of the records overlapping `[t0, t1)`.
    fn touching(&self, t0: usize, t1: usize) -> std::ops::Range<usize> {
        let first = self
            .records
            .partition_point(|r| (r.start as usize) <= t0)
            .saturating_sub(1);
        let last = self.records.partition_point(|r| (r.start as usize) < t1);
        first..last
    }

    fn check_range(&self, t0: usize, t1: usize) -> Result<()> {
        if t0 > t1 || t1 > self.n_total {
            return Err(SbrError::InconsistentState(format!(
                "range [{t0}, {t1}) outside chunk of {} values",
                self.n_total
            )));
        }
        Ok(())
    }

    /// Sum of record `k`'s reconstruction over the flat sub-range `[s, e)`,
    /// which must lie inside the record. O(1) via the base prefix sums.
    fn partial_sum(&self, k: usize, s: usize, e: usize) -> f64 {
        let r = &self.records[k];
        let rs = r.start as usize;
        let len = e - s;
        if r.shift < 0 {
            let i0 = (s - rs) as f64;
            let i1 = (e - rs - 1) as f64;
            let sum_i = (i0 + i1) * len as f64 / 2.0;
            r.a * sum_i + r.b * len as f64
        } else {
            let off = r.shift as usize + (s - rs);
            r.a * self.base_stats.window_sum(off, len) + r.b * len as f64
        }
    }

    /// Min/max of record `k`'s reconstruction over `[s, e)` inside the
    /// record. Fall-back records are O(1) (monotone line); mapped records
    /// scan only the covered base window — this is the "boundary decode".
    fn partial_min_max(&self, k: usize, s: usize, e: usize) -> (f64, f64) {
        let r = &self.records[k];
        let rs = r.start as usize;
        if r.shift < 0 {
            let v0 = r.a * (s - rs) as f64 + r.b;
            let v1 = r.a * (e - 1 - rs) as f64 + r.b;
            (v0.min(v1), v0.max(v1))
        } else {
            let off = r.shift as usize + (s - rs);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &self.base[off..off + (e - s)] {
                let v = r.a * x + r.b;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi)
        }
    }

    /// Sum of the reconstruction over `[t0, t1)`. Costs O(log #records) for
    /// the lookup plus O(1) per *boundary* record — the run of fully covered
    /// records in the middle comes from one prefix-sum subtraction.
    pub fn range_sum(&self, t0: usize, t1: usize) -> Result<(f64, FoldCounts)> {
        self.check_range(t0, t1)?;
        let mut counts = FoldCounts::default();
        if t0 == t1 {
            return Ok((0.0, counts));
        }
        let touched = self.touching(t0, t1);
        let (mut k0, mut k1) = (touched.start, touched.end);
        let mut sum = 0.0f64;
        if k0 < k1 {
            let (rs, re) = (self.records[k0].start as usize, self.ends[k0]);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s > rs || e < re {
                sum += self.partial_sum(k0, s, e);
                counts.boundary += 1;
                k0 += 1;
            }
        }
        if k0 < k1 {
            let re = self.ends[k1 - 1];
            if t1 < re {
                let rs = self.records[k1 - 1].start as usize;
                sum += self.partial_sum(k1 - 1, t0.max(rs), t1);
                counts.boundary += 1;
                k1 -= 1;
            }
        }
        counts.folded += (k1 - k0) as u64;
        sum += self.prefix_sums[k1] - self.prefix_sums[k0];
        Ok((sum, counts))
    }

    /// Sum, min and max of the reconstruction over the non-empty `[t0, t1)`.
    /// Fully covered records come straight from their moments; split records
    /// evaluate only their covered window.
    pub fn range_moments(&self, t0: usize, t1: usize) -> Result<(f64, f64, f64, FoldCounts)> {
        self.check_range(t0, t1)?;
        if t0 == t1 {
            return Err(SbrError::InconsistentState("empty range".into()));
        }
        let mut counts = FoldCounts::default();
        let mut sum = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in self.touching(t0, t1) {
            let (rs, re) = (self.records[k].start as usize, self.ends[k]);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s == rs && e == re {
                let mom = &self.moments[k];
                sum += mom.sum;
                lo = lo.min(mom.min);
                hi = hi.max(mom.max);
                counts.folded += 1;
            } else {
                sum += self.partial_sum(k, s, e);
                let (plo, phi) = self.partial_min_max(k, s, e);
                lo = lo.min(plo);
                hi = hi.max(phi);
                counts.boundary += 1;
            }
        }
        Ok((sum, lo, hi, counts))
    }

    /// Min and max of the reconstruction over the non-empty `[t0, t1)`.
    pub fn range_min_max(&self, t0: usize, t1: usize) -> Result<((f64, f64), FoldCounts)> {
        let (_, lo, hi, counts) = self.range_moments(t0, t1)?;
        Ok(((lo, hi), counts))
    }
}

/// Which computation a cached plan holds. SUM and AVG share a plan (one
/// prefix-sum pass); MIN/MAX and full aggregates share the moment-fold pass.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum PlanOp {
    SumAvg,
    Full,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PlanKey {
    signal: usize,
    t0: usize,
    t1: usize,
    op: PlanOp,
}

/// Plans cached before the map is wholesale-cleared. Summaries are
/// immutable and chunks append-only, so cached plans never go stale;
/// the cap only bounds memory on adversarial query streams.
const PLAN_CACHE_CAP: usize = 4096;

/// The compressed-domain query engine: an append-only sequence of
/// [`ChunkSummary`] synopses plus a small plan cache.
///
/// Serves SUM/AVG/MIN/MAX (the TAG set) over absolute sample ranges
/// `[t0, t1)` of one signal without ever decoding a chunk — every fully
/// covered interval contributes via precomputed moments, and only intervals
/// a range splits mid-way have their covered window evaluated directly.
///
/// Chunks are appended with [`push_chunk`](Self::push_chunk) (a `None` slot
/// marks a chunk with no summary — queries touching it report the gap so
/// callers can fall back to a decode path). Appending never invalidates
/// cached plans: summaries are immutable and past ranges are unaffected.
#[derive(Debug, Default)]
pub struct QueryEngine {
    chunks: Vec<Option<ChunkSummary>>,
    n_signals: usize,
    m: usize,
    plans: HashMap<PlanKey, StreamAggregate>,
    obs: QueryObs,
}

impl QueryEngine {
    /// An empty engine with no chunks and a disabled obs bundle.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Attach pre-registered query metrics (see
    /// [`QueryObs`](crate::obs::QueryObs)).
    pub fn set_obs(&mut self, obs: QueryObs) {
        self.obs = obs;
    }

    /// Build an engine over a whole transmission stream: replays base
    /// updates chunk by chunk (no reconstruction) and summarizes each.
    pub fn from_transmissions(txs: &[crate::transmission::Transmission]) -> Result<Self> {
        let mut decoder = crate::decoder::Decoder::new();
        let mut engine = QueryEngine::new();
        for tx in txs {
            let x_new = decoder.peek_x_new(tx)?;
            decoder.apply_updates_only(tx)?;
            engine.push_chunk(Some(ChunkSummary::from_transmission(tx, x_new)?));
        }
        Ok(engine)
    }

    /// Append the next chunk's summary (or `None` for a gap). A summary
    /// whose shape disagrees with the engine's is stored as a gap rather
    /// than corrupting the index.
    pub fn push_chunk(&mut self, summary: Option<ChunkSummary>) {
        if let Some(s) = &summary {
            if self.m == 0 && self.n_signals == 0 {
                self.m = s.samples_per_signal();
                self.n_signals = s.n_signals();
            } else if s.samples_per_signal() != self.m || s.n_signals() != self.n_signals {
                self.chunks.push(None);
                return;
            }
        }
        self.chunks.push(summary);
    }

    /// Drop every chunk and cached plan (e.g. before a from-scratch rebuild).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.plans.clear();
        self.m = 0;
        self.n_signals = 0;
    }

    /// Chunks indexed (including gaps).
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when no chunks have been indexed.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Samples per signal per chunk (0 until the first summary arrives).
    pub fn samples_per_signal(&self) -> usize {
        self.m
    }

    /// Signals per chunk (0 until the first summary arrives).
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }

    /// Total samples per signal across all indexed chunks.
    pub fn total_samples(&self) -> usize {
        self.chunks.len() * self.m
    }

    /// Cached plans currently held.
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// True when `[t0, t1)` of `signal` is answerable entirely in the
    /// compressed domain — in bounds and no gap chunks touched.
    pub fn covers(&self, signal: usize, t0: usize, t1: usize) -> bool {
        if self.m == 0 || signal >= self.n_signals || t1 <= t0 || t1 > self.total_samples() {
            return false;
        }
        (t0 / self.m..t1.div_ceil(self.m)).all(|c| self.chunks[c].is_some())
    }

    fn check(&self, signal: usize, t0: usize, t1: usize) -> Result<()> {
        if self.chunks.is_empty() || self.m == 0 {
            return Err(SbrError::InconsistentState("no transmissions".into()));
        }
        if signal >= self.n_signals {
            return Err(SbrError::InconsistentState(format!(
                "stream has no signal {signal}"
            )));
        }
        if t1 <= t0 {
            return Err(SbrError::InconsistentState(format!(
                "empty range [{t0}, {t1})"
            )));
        }
        let total = self.total_samples();
        if t1 > total {
            return Err(SbrError::InconsistentState(format!(
                "range [{t0}, {t1}) runs past the {total} logged samples"
            )));
        }
        Ok(())
    }

    /// Resolve (or fetch from the plan cache) the aggregate over
    /// `[t0, t1)` of `signal`. Errors are never cached.
    fn plan(&mut self, signal: usize, t0: usize, t1: usize, op: PlanOp) -> Result<StreamAggregate> {
        let key = PlanKey { signal, t0, t1, op };
        if let Some(v) = self.plans.get(&key) {
            self.obs.plan_hits.inc();
            return Ok(*v);
        }
        self.check(signal, t0, t1)?;
        let mut counts = FoldCounts::default();
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for c in t0 / self.m..t1.div_ceil(self.m) {
            let summary = self.chunks[c].as_ref().ok_or_else(|| {
                SbrError::InconsistentState(format!("chunk {c} has no compressed-domain summary"))
            })?;
            let chunk_t0 = c * self.m;
            let lo = t0.max(chunk_t0) - chunk_t0;
            let hi = t1.min(chunk_t0 + self.m) - chunk_t0;
            let (s, e) = (signal * self.m + lo, signal * self.m + hi);
            match op {
                PlanOp::SumAvg => {
                    let (v, fc) = summary.range_sum(s, e)?;
                    sum += v;
                    counts.absorb(fc);
                }
                PlanOp::Full => {
                    let (v, clo, chi, fc) = summary.range_moments(s, e)?;
                    sum += v;
                    min = min.min(clo);
                    max = max.max(chi);
                    counts.absorb(fc);
                }
            }
        }
        let count = t1 - t0;
        let agg = StreamAggregate {
            sum,
            avg: sum / count as f64,
            min,
            max,
            count,
        };
        self.obs.plan_misses.inc();
        self.obs.intervals_folded.add(counts.folded);
        self.obs.boundary_decodes.add(counts.boundary);
        if self.plans.len() >= PLAN_CACHE_CAP {
            self.plans.clear();
        }
        self.plans.insert(key, agg);
        Ok(agg)
    }

    /// One aggregate of `signal` over `[t0, t1)`, entirely in the
    /// compressed domain.
    pub fn query(&mut self, signal: usize, t0: usize, t1: usize, agg: Aggregate) -> Result<f64> {
        // lint:allow(determinism): obs-gated latency probe — timing never feeds query results
        let start = self.obs.enabled().then(std::time::Instant::now);
        let op = match agg {
            Aggregate::Sum | Aggregate::Avg => PlanOp::SumAvg,
            Aggregate::Min | Aggregate::Max => PlanOp::Full,
        };
        let plan = self.plan(signal, t0, t1, op)?;
        let out = match agg {
            Aggregate::Sum => plan.sum,
            Aggregate::Avg => plan.avg,
            Aggregate::Min => plan.min,
            Aggregate::Max => plan.max,
        };
        if let Some(s) = start {
            self.obs.query_ns.record(s.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    /// All four TAG aggregates of `signal` over `[t0, t1)` at once —
    /// drop-in for [`aggregate_stream`] without the replay.
    pub fn aggregate(&mut self, signal: usize, t0: usize, t1: usize) -> Result<StreamAggregate> {
        // lint:allow(determinism): obs-gated latency probe — timing never feeds query results
        let start = self.obs.enabled().then(std::time::Instant::now);
        let agg = self.plan(signal, t0, t1, PlanOp::Full)?;
        if let Some(s) = start {
            self.obs.query_ns.record(s.elapsed().as_nanos() as u64);
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;
    use crate::get_intervals::reconstruct_flat;
    use crate::sbr::SbrEncoder;

    /// Build a view from a real transmission.
    fn view_and_truth() -> (Vec<IntervalRecord>, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..2)
            .map(|r| {
                (0..128)
                    .map(|i| ((i as f64 * 0.19) + r as f64).sin() * 7.0 + (i % 11) as f64)
                    .collect()
            })
            .collect();
        let mut enc = SbrEncoder::new(2, 128, SbrConfig::new(120, 96)).unwrap();
        let tx = enc.encode(&rows).unwrap();
        // The X_new layout the records reference: base was empty before the
        // first transmission, so it is exactly the inserted updates.
        let mut base = Vec::new();
        for u in &tx.base_updates {
            base.extend_from_slice(&u.values);
        }
        let rec = reconstruct_flat(&base, &tx.intervals, 256).unwrap();
        (tx.intervals.clone(), base, rec)
    }

    #[test]
    fn sum_matches_reconstruction_on_many_ranges() {
        let (records, base, rec) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        for (t0, t1) in [(0, 256), (0, 1), (5, 97), (100, 200), (250, 256), (13, 14)] {
            let direct: f64 = rec[t0..t1].iter().sum();
            let fast = v.range_sum(t0, t1).unwrap();
            assert!(
                (direct - fast).abs() <= 1e-9 * (1.0 + direct.abs()),
                "[{t0},{t1}): {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn avg_and_min_max_match_reconstruction() {
        let (records, base, rec) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        for (t0, t1) in [(0, 256), (17, 140), (200, 256)] {
            let slice = &rec[t0..t1];
            let avg = slice.iter().sum::<f64>() / slice.len() as f64;
            assert!((v.range_avg(t0, t1).unwrap() - avg).abs() < 1e-9 * (1.0 + avg.abs()));
            let lo = slice.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (qlo, qhi) = v.range_min_max(t0, t1).unwrap();
            assert!((qlo - lo).abs() < 1e-9 * (1.0 + lo.abs()));
            assert!((qhi - hi).abs() < 1e-9 * (1.0 + hi.abs()));
        }
    }

    #[test]
    fn empty_and_out_of_bounds_ranges_rejected() {
        let (records, base, _) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        assert!(v.range_avg(5, 5).is_err());
        assert!(v.range_sum(10, 5).is_err());
        assert!(v.range_sum(0, 300).is_err());
        assert_eq!(v.range_sum(7, 7).unwrap(), 0.0);
    }

    #[test]
    fn corrupt_records_rejected_at_construction() {
        let records = [IntervalRecord {
            start: 0,
            shift: 100,
            a: 1.0,
            b: 0.0,
        }];
        assert!(ChunkView::new(&records, &[0.0; 4], 8).is_err());
        let overlapping = [
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 0.0,
            },
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 1.0,
            },
        ];
        assert!(ChunkView::new(&overlapping, &[], 8).is_err());
    }

    #[test]
    fn stream_aggregate_matches_decoded_stream() {
        use crate::decoder::Decoder;
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(60, 48)).unwrap();
        let mut txs = Vec::new();
        let mut truth: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for t in 0..4 {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| ((i + t * 17 + r * 5) as f64 * 0.3).sin() * 4.0)
                        .collect()
                })
                .collect();
            txs.push(enc.encode(&rows).unwrap());
        }
        let mut dec = Decoder::new();
        for tx in &txs {
            let rec = dec.decode(tx).unwrap();
            for (col, r) in truth.iter_mut().zip(&rec) {
                col.extend_from_slice(r);
            }
        }
        for (t0, t1) in [(0usize, 256usize), (30, 200), (64, 128), (255, 256)] {
            let mut d = Decoder::new();
            let agg = aggregate_stream(&mut d, &txs, 1, t0, t1).unwrap();
            let slice = &truth[1][t0..t1];
            let sum: f64 = slice.iter().sum();
            assert!(
                (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                "[{t0},{t1})"
            );
            assert_eq!(agg.count, t1 - t0);
        }
    }

    #[test]
    fn stream_aggregate_rejects_positioned_past_range() {
        use crate::decoder::Decoder;
        let mut enc = SbrEncoder::new(1, 32, SbrConfig::new(20, 16)).unwrap();
        let rows = vec![(0..32).map(|i| i as f64).collect::<Vec<f64>>()];
        let t0 = enc.encode(&rows).unwrap();
        let t1 = enc.encode(&rows).unwrap();
        let txs = vec![t0, t1];
        let mut d = Decoder::new();
        d.apply_updates_only(&txs[0]).unwrap();
        d.apply_updates_only(&txs[1]).unwrap();
        assert!(aggregate_stream(&mut d, &txs, 0, 0, 10).is_err());
    }

    #[test]
    fn fallback_only_view_works_without_base() {
        let records = [
            IntervalRecord {
                start: 0,
                shift: -1,
                a: 2.0,
                b: 1.0,
            },
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 10.0,
            },
        ];
        let v = ChunkView::new(&records, &[], 8).unwrap();
        // First record: 1, 3, 5, 7; second: 10 × 4.
        assert_eq!(v.range_sum(0, 8).unwrap(), 16.0 + 40.0);
        assert_eq!(v.range_sum(2, 6).unwrap(), 5.0 + 7.0 + 20.0);
        let (lo, hi) = v.range_min_max(0, 8).unwrap();
        assert_eq!((lo, hi), (1.0, 10.0));
    }

    #[test]
    fn summary_matches_reconstruction_and_pins_min_max_bits() {
        let (records, base, rec) = view_and_truth();
        let s = ChunkSummary::new(&records, base, 2, 128).unwrap();
        for (t0, t1) in [(0, 256), (0, 1), (5, 97), (100, 200), (250, 256), (13, 14)] {
            let slice = &rec[t0..t1];
            let direct: f64 = slice.iter().sum();
            let (fast, _) = s.range_sum(t0, t1).unwrap();
            assert!(
                (direct - fast).abs() <= 1e-9 * (1.0 + direct.abs()),
                "[{t0},{t1}): {fast} vs {direct}"
            );
            let lo = slice.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let ((qlo, qhi), _) = s.range_min_max(t0, t1).unwrap();
            // Min/max use the decoder's exact FP expression: bit-for-bit.
            assert_eq!(qlo.to_bits(), lo.to_bits(), "[{t0},{t1}) min");
            assert_eq!(qhi.to_bits(), hi.to_bits(), "[{t0},{t1}) max");
        }
    }

    #[test]
    fn summary_fold_counts_distinguish_boundary_records() {
        let records = [
            IntervalRecord {
                start: 0,
                shift: -1,
                a: 2.0,
                b: 1.0,
            },
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 10.0,
            },
        ];
        let s = ChunkSummary::new(&records, Vec::new(), 1, 8).unwrap();
        let (sum, counts) = s.range_sum(0, 8).unwrap();
        assert_eq!(sum, 56.0);
        assert_eq!(
            counts,
            FoldCounts {
                folded: 2,
                boundary: 0
            }
        );
        let (sum, counts) = s.range_sum(2, 6).unwrap();
        assert_eq!(sum, 32.0);
        assert_eq!(
            counts,
            FoldCounts {
                folded: 0,
                boundary: 2
            }
        );
        let (_, _, _, counts) = s.range_moments(2, 8).unwrap();
        assert_eq!(
            counts,
            FoldCounts {
                folded: 1,
                boundary: 1
            }
        );
    }

    /// A four-chunk, two-signal stream plus its decoded truth.
    fn stream_fixture() -> (Vec<crate::transmission::Transmission>, Vec<Vec<f64>>) {
        use crate::decoder::Decoder;
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(60, 48)).unwrap();
        let mut txs = Vec::new();
        for t in 0..4 {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| ((i + t * 17 + r * 5) as f64 * 0.3).sin() * 4.0)
                        .collect()
                })
                .collect();
            txs.push(enc.encode(&rows).unwrap());
        }
        let mut truth: Vec<Vec<f64>> = vec![Vec::new(); 2];
        let mut dec = Decoder::new();
        for tx in &txs {
            let rec = dec.decode(tx).unwrap();
            for (col, r) in truth.iter_mut().zip(&rec) {
                col.extend_from_slice(r);
            }
        }
        (txs, truth)
    }

    #[test]
    fn engine_matches_aggregate_stream_and_decode() {
        use crate::decoder::Decoder;
        let (txs, truth) = stream_fixture();
        let mut engine = QueryEngine::from_transmissions(&txs).unwrap();
        assert_eq!(engine.len(), 4);
        assert_eq!(engine.total_samples(), 256);
        for signal in 0..2 {
            for (t0, t1) in [
                (0usize, 256usize),
                (30, 200),
                (64, 128),
                (255, 256),
                (1, 255),
            ] {
                let agg = engine.aggregate(signal, t0, t1).unwrap();
                let mut d = Decoder::new();
                let replay = aggregate_stream(&mut d, &txs, signal, t0, t1).unwrap();
                let slice = &truth[signal][t0..t1];
                let sum: f64 = slice.iter().sum();
                assert!(
                    (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                    "sum s{signal} [{t0},{t1})"
                );
                let lo = slice.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(agg.min.to_bits(), lo.to_bits(), "min s{signal} [{t0},{t1})");
                assert_eq!(agg.max.to_bits(), hi.to_bits(), "max s{signal} [{t0},{t1})");
                assert_eq!(agg.count, t1 - t0);
                assert_eq!(agg.min.to_bits(), replay.min.to_bits());
                assert_eq!(agg.max.to_bits(), replay.max.to_bits());
                // Per-aggregate queries agree with the full plan.
                assert_eq!(
                    engine.query(signal, t0, t1, Aggregate::Min).unwrap(),
                    agg.min
                );
                assert_eq!(
                    engine.query(signal, t0, t1, Aggregate::Max).unwrap(),
                    agg.max
                );
                let qsum = engine.query(signal, t0, t1, Aggregate::Sum).unwrap();
                assert!((qsum - sum).abs() < 1e-9 * (1.0 + sum.abs()));
                let qavg = engine.query(signal, t0, t1, Aggregate::Avg).unwrap();
                assert!((qavg - sum / (t1 - t0) as f64).abs() < 1e-9 * (1.0 + qavg.abs()));
            }
        }
    }

    #[test]
    fn engine_plan_cache_shares_and_counts() {
        #[cfg(feature = "obs")]
        use sbr_obs::{MetricsRecorder, Recorder};
        let (txs, _) = stream_fixture();
        let mut engine = QueryEngine::from_transmissions(&txs).unwrap();
        #[cfg(feature = "obs")]
        let recorder = MetricsRecorder::new();
        #[cfg(feature = "obs")]
        engine.set_obs(QueryObs::new(&recorder));
        assert_eq!(engine.plan_cache_len(), 0);
        engine.query(0, 10, 200, Aggregate::Sum).unwrap();
        // AVG shares SUM's plan; MIN/MAX share the full plan.
        engine.query(0, 10, 200, Aggregate::Avg).unwrap();
        assert_eq!(engine.plan_cache_len(), 1);
        engine.query(0, 10, 200, Aggregate::Min).unwrap();
        engine.query(0, 10, 200, Aggregate::Max).unwrap();
        assert_eq!(engine.plan_cache_len(), 2);
        // Errors are never cached.
        assert!(engine.query(0, 200, 10, Aggregate::Sum).is_err());
        assert!(engine.query(9, 10, 200, Aggregate::Sum).is_err());
        assert_eq!(engine.plan_cache_len(), 2);
        #[cfg(feature = "obs")]
        {
            let snap = recorder.snapshot();
            assert_eq!(snap.counter("sbr_core.query.plan_cache.hits"), Some(2));
            assert_eq!(snap.counter("sbr_core.query.plan_cache.misses"), Some(2));
            assert!(snap.counter("sbr_core.query.intervals_folded").unwrap_or(0) > 0);
        }
    }

    #[test]
    fn engine_plan_cache_is_bounded() {
        let (txs, _) = stream_fixture();
        let mut engine = QueryEngine::from_transmissions(&txs).unwrap();
        let mut issued = 0usize;
        'outer: for t0 in 0..256usize {
            for t1 in (t0 + 1)..=256 {
                engine.query(0, t0, t1, Aggregate::Sum).unwrap();
                issued += 1;
                if issued > 5000 {
                    break 'outer;
                }
            }
        }
        assert!(
            engine.plan_cache_len() <= 4096,
            "{}",
            engine.plan_cache_len()
        );
    }

    #[test]
    fn engine_gap_chunks_error_and_covers_reports_them() {
        use crate::decoder::Decoder;
        let (txs, _) = stream_fixture();
        let mut decoder = Decoder::new();
        let mut engine = QueryEngine::new();
        for (c, tx) in txs.iter().enumerate() {
            let x_new = decoder.peek_x_new(tx).unwrap();
            decoder.apply_updates_only(tx).unwrap();
            if c == 2 {
                engine.push_chunk(None);
            } else {
                engine.push_chunk(Some(ChunkSummary::from_transmission(tx, x_new).unwrap()));
            }
        }
        assert!(engine.covers(0, 0, 128));
        assert!(!engine.covers(0, 0, 256));
        assert!(!engine.covers(0, 130, 140));
        assert!(engine.covers(1, 192, 256));
        assert!(engine.aggregate(0, 0, 128).is_ok());
        let err = engine.aggregate(0, 0, 256).unwrap_err().to_string();
        assert!(err.contains("no compressed-domain summary"), "{err}");
    }

    #[test]
    fn engine_rejects_bad_ranges_with_stream_messages() {
        let (txs, _) = stream_fixture();
        let mut engine = QueryEngine::from_transmissions(&txs).unwrap();
        let err = engine.aggregate(0, 0, 1000).unwrap_err().to_string();
        assert!(err.contains("runs past the 256 logged samples"), "{err}");
        let err = engine.aggregate(0, 9, 9).unwrap_err().to_string();
        assert!(err.contains("empty range"), "{err}");
        let err = engine.aggregate(7, 0, 10).unwrap_err().to_string();
        assert!(err.contains("no signal 7"), "{err}");
        let err = QueryEngine::new()
            .aggregate(0, 0, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("no transmissions"), "{err}");
    }
}
