//! Aggregate queries answered *directly on the compressed representation*.
//!
//! The approximate-query-processing literature the paper builds on
//! (histogram/wavelet synopses) values synopses you can query without
//! expanding. SBR's interval records have the same property: over a record
//! `ŷ_i = a·X[shift + i] + b`, the sum of reconstructed values on any
//! sub-range is `a · Σ X[..] + b · len`, and `Σ X[..]` comes from a prefix
//! sum over the base signal in O(1). A range-SUM/AVG query therefore costs
//! `O(#intervals touched)` instead of `O(#samples)`; MIN/MAX scan only the
//! touched base segments.

use crate::error::{Result, SbrError};
use crate::interval::IntervalRecord;
use crate::regression::PrefixStats;

/// A queryable view over one decoded chunk's records and the base signal
/// those records reference (the `X_new` layout of its transmission).
///
/// ```
/// use sbr_core::{query::ChunkView, IntervalRecord};
/// // One fall-back record: ŷ_i = 2·i + 1 over 4 samples → 1, 3, 5, 7.
/// let records = [IntervalRecord { start: 0, shift: -1, a: 2.0, b: 1.0 }];
/// let view = ChunkView::new(&records, &[], 4).unwrap();
/// assert_eq!(view.range_sum(0, 4).unwrap(), 16.0);
/// assert_eq!(view.range_avg(1, 3).unwrap(), 4.0);
/// assert_eq!(view.range_min_max(0, 4).unwrap(), (1.0, 7.0));
/// ```
pub struct ChunkView<'a> {
    records: Vec<IntervalRecord>,
    base: &'a [f64],
    base_stats: PrefixStats,
    n_total: usize,
}

impl<'a> ChunkView<'a> {
    /// Build a view. `records` are the chunk's interval records (any
    /// order); `base` is the flat base signal they reference; `n_total` the
    /// chunk's value count.
    pub fn new(records: &[IntervalRecord], base: &'a [f64], n_total: usize) -> Result<Self> {
        let mut records = records.to_vec();
        records.sort_by_key(|r| r.start);
        if let Some(first) = records.first() {
            if first.start != 0 {
                return Err(SbrError::Corrupt(format!(
                    "records leave [0, {}) uncovered",
                    first.start
                )));
            }
        }
        // Validate coverage once so queries can't go out of bounds.
        for (k, r) in records.iter().enumerate() {
            let end = records.get(k + 1).map_or(n_total, |nx| nx.start as usize);
            if r.start as usize >= end || end > n_total {
                return Err(SbrError::Corrupt(format!(
                    "record {k} covers [{}, {end}) of {n_total}",
                    r.start
                )));
            }
            if r.shift >= 0 && r.shift as usize + (end - r.start as usize) > base.len() {
                return Err(SbrError::Corrupt(format!(
                    "record {k} runs past the base signal"
                )));
            }
        }
        Ok(ChunkView {
            records,
            base,
            base_stats: PrefixStats::new(base),
            n_total,
        })
    }

    /// Number of values in the chunk.
    pub fn len(&self) -> usize {
        self.n_total
    }

    /// True for an empty chunk (cannot be constructed from a valid
    /// transmission).
    pub fn is_empty(&self) -> bool {
        self.n_total == 0
    }

    fn record_end(&self, k: usize) -> usize {
        self.records
            .get(k + 1)
            .map_or(self.n_total, |r| r.start as usize)
    }

    /// Indices of the records overlapping `[t0, t1)`.
    fn touching(&self, t0: usize, t1: usize) -> std::ops::Range<usize> {
        let first = self
            .records
            .partition_point(|r| (r.start as usize) <= t0)
            .saturating_sub(1);
        let last = self.records.partition_point(|r| (r.start as usize) < t1);
        first..last
    }

    /// Exact sum of the *reconstruction* over `[t0, t1)` in
    /// `O(#records touched)`.
    pub fn range_sum(&self, t0: usize, t1: usize) -> Result<f64> {
        self.check_range(t0, t1)?;
        let mut acc = 0.0f64;
        for k in self.touching(t0, t1) {
            let r = &self.records[k];
            let rs = r.start as usize;
            let re = self.record_end(k);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s >= e {
                continue;
            }
            let len = e - s;
            if r.shift < 0 {
                // Fall-back line over the local index i ∈ [s-rs, e-rs):
                // Σ (a·i + b) = a · Σi + b·len.
                let i0 = (s - rs) as f64;
                let i1 = (e - rs - 1) as f64;
                let sum_i = (i0 + i1) * len as f64 / 2.0;
                acc += r.a * sum_i + r.b * len as f64;
            } else {
                let off = r.shift as usize + (s - rs);
                let sum_x = self.base_stats.window_sum(off, len);
                acc += r.a * sum_x + r.b * len as f64;
            }
        }
        Ok(acc)
    }

    /// Average of the reconstruction over `[t0, t1)`.
    pub fn range_avg(&self, t0: usize, t1: usize) -> Result<f64> {
        if t1 <= t0 {
            return Err(SbrError::InconsistentState(format!(
                "empty range [{t0}, {t1})"
            )));
        }
        Ok(self.range_sum(t0, t1)? / (t1 - t0) as f64)
    }

    /// Minimum and maximum of the reconstruction over `[t0, t1)`; scans
    /// only the touched base segments.
    pub fn range_min_max(&self, t0: usize, t1: usize) -> Result<(f64, f64)> {
        self.check_range(t0, t1)?;
        if t1 == t0 {
            return Err(SbrError::InconsistentState("empty range".into()));
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in self.touching(t0, t1) {
            let r = &self.records[k];
            let rs = r.start as usize;
            let re = self.record_end(k);
            let (s, e) = (t0.max(rs), t1.min(re));
            if s >= e {
                continue;
            }
            if r.shift < 0 {
                // Monotone in i: endpoints suffice.
                let v0 = r.a * (s - rs) as f64 + r.b;
                let v1 = r.a * (e - 1 - rs) as f64 + r.b;
                lo = lo.min(v0.min(v1));
                hi = hi.max(v0.max(v1));
            } else {
                let off = r.shift as usize + (s - rs);
                for &x in &self.base[off..off + (e - s)] {
                    let v = r.a * x + r.b;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        Ok((lo, hi))
    }

    fn check_range(&self, t0: usize, t1: usize) -> Result<()> {
        if t0 > t1 || t1 > self.n_total {
            return Err(SbrError::InconsistentState(format!(
                "range [{t0}, {t1}) outside chunk of {} values",
                self.n_total
            )));
        }
        Ok(())
    }
}

/// Stream-level aggregates over a sequence of transmissions: replays
/// base-signal updates (cheap — no reconstruction) and queries each touched
/// chunk through a [`ChunkView`]. This is the one implementation behind the
/// base station's and the CLI's range-aggregate queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAggregate {
    /// Sum of the reconstruction over the range.
    pub sum: f64,
    /// Average over the range.
    pub avg: f64,
    /// Minimum over the range.
    pub min: f64,
    /// Maximum over the range.
    pub max: f64,
    /// Samples covered.
    pub count: usize,
}

/// SUM/AVG/MIN/MAX of `signal` over the absolute sample range `[t0, t1)`
/// of a transmission stream. `decoder` must be positioned at or before the
/// first chunk the range touches; it is advanced past the last touched
/// chunk (updates only — no reconstruction).
pub fn aggregate_stream(
    decoder: &mut crate::decoder::Decoder,
    transmissions: &[crate::transmission::Transmission],
    signal: usize,
    t0: usize,
    t1: usize,
) -> Result<StreamAggregate> {
    if t1 <= t0 {
        return Err(SbrError::InconsistentState(format!(
            "empty range [{t0}, {t1})"
        )));
    }
    let m = transmissions
        .first()
        .map(|t| t.samples_per_signal as usize)
        .ok_or_else(|| SbrError::InconsistentState("no transmissions".into()))?;
    let first_chunk = t0 / m;
    let last_chunk = t1.div_ceil(m);
    if last_chunk > transmissions.len() {
        return Err(SbrError::InconsistentState(format!(
            "range [{t0}, {t1}) runs past the {} logged samples",
            transmissions.len() * m
        )));
    }
    if decoder.next_seq() as usize > first_chunk {
        return Err(SbrError::InconsistentState(format!(
            "decoder already at chunk {} > first touched chunk {first_chunk}",
            decoder.next_seq()
        )));
    }
    while (decoder.next_seq() as usize) < first_chunk {
        decoder.apply_updates_only(&transmissions[decoder.next_seq() as usize])?;
    }
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut count = 0usize;
    for (c, tx) in transmissions
        .iter()
        .enumerate()
        .take(last_chunk)
        .skip(first_chunk)
    {
        if signal >= tx.n_signals as usize {
            return Err(SbrError::InconsistentState(format!(
                "stream has no signal {signal}"
            )));
        }
        let x_new = decoder.peek_x_new(tx)?;
        let view = ChunkView::new(&tx.intervals, &x_new, tx.batch_len())?;
        let chunk_t0 = c * m;
        let lo = t0.max(chunk_t0) - chunk_t0;
        let hi = t1.min(chunk_t0 + m) - chunk_t0;
        let (s, e) = (signal * m + lo, signal * m + hi);
        sum += view.range_sum(s, e)?;
        let (vmin, vmax) = view.range_min_max(s, e)?;
        min = min.min(vmin);
        max = max.max(vmax);
        count += e - s;
        decoder.apply_updates_only(tx)?;
    }
    Ok(StreamAggregate {
        sum,
        avg: sum / count as f64,
        min,
        max,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;
    use crate::get_intervals::reconstruct_flat;
    use crate::sbr::SbrEncoder;

    /// Build a view from a real transmission.
    fn view_and_truth() -> (Vec<IntervalRecord>, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..2)
            .map(|r| {
                (0..128)
                    .map(|i| ((i as f64 * 0.19) + r as f64).sin() * 7.0 + (i % 11) as f64)
                    .collect()
            })
            .collect();
        let mut enc = SbrEncoder::new(2, 128, SbrConfig::new(120, 96)).unwrap();
        let tx = enc.encode(&rows).unwrap();
        // The X_new layout the records reference: base was empty before the
        // first transmission, so it is exactly the inserted updates.
        let mut base = Vec::new();
        for u in &tx.base_updates {
            base.extend_from_slice(&u.values);
        }
        let rec = reconstruct_flat(&base, &tx.intervals, 256).unwrap();
        (tx.intervals.clone(), base, rec)
    }

    #[test]
    fn sum_matches_reconstruction_on_many_ranges() {
        let (records, base, rec) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        for (t0, t1) in [(0, 256), (0, 1), (5, 97), (100, 200), (250, 256), (13, 14)] {
            let direct: f64 = rec[t0..t1].iter().sum();
            let fast = v.range_sum(t0, t1).unwrap();
            assert!(
                (direct - fast).abs() <= 1e-9 * (1.0 + direct.abs()),
                "[{t0},{t1}): {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn avg_and_min_max_match_reconstruction() {
        let (records, base, rec) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        for (t0, t1) in [(0, 256), (17, 140), (200, 256)] {
            let slice = &rec[t0..t1];
            let avg = slice.iter().sum::<f64>() / slice.len() as f64;
            assert!((v.range_avg(t0, t1).unwrap() - avg).abs() < 1e-9 * (1.0 + avg.abs()));
            let lo = slice.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (qlo, qhi) = v.range_min_max(t0, t1).unwrap();
            assert!((qlo - lo).abs() < 1e-9 * (1.0 + lo.abs()));
            assert!((qhi - hi).abs() < 1e-9 * (1.0 + hi.abs()));
        }
    }

    #[test]
    fn empty_and_out_of_bounds_ranges_rejected() {
        let (records, base, _) = view_and_truth();
        let v = ChunkView::new(&records, &base, 256).unwrap();
        assert!(v.range_avg(5, 5).is_err());
        assert!(v.range_sum(10, 5).is_err());
        assert!(v.range_sum(0, 300).is_err());
        assert_eq!(v.range_sum(7, 7).unwrap(), 0.0);
    }

    #[test]
    fn corrupt_records_rejected_at_construction() {
        let records = [IntervalRecord {
            start: 0,
            shift: 100,
            a: 1.0,
            b: 0.0,
        }];
        assert!(ChunkView::new(&records, &[0.0; 4], 8).is_err());
        let overlapping = [
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 0.0,
            },
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 1.0,
            },
        ];
        assert!(ChunkView::new(&overlapping, &[], 8).is_err());
    }

    #[test]
    fn stream_aggregate_matches_decoded_stream() {
        use crate::decoder::Decoder;
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(60, 48)).unwrap();
        let mut txs = Vec::new();
        let mut truth: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for t in 0..4 {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| ((i + t * 17 + r * 5) as f64 * 0.3).sin() * 4.0)
                        .collect()
                })
                .collect();
            txs.push(enc.encode(&rows).unwrap());
        }
        let mut dec = Decoder::new();
        for tx in &txs {
            let rec = dec.decode(tx).unwrap();
            for (col, r) in truth.iter_mut().zip(&rec) {
                col.extend_from_slice(r);
            }
        }
        for (t0, t1) in [(0usize, 256usize), (30, 200), (64, 128), (255, 256)] {
            let mut d = Decoder::new();
            let agg = aggregate_stream(&mut d, &txs, 1, t0, t1).unwrap();
            let slice = &truth[1][t0..t1];
            let sum: f64 = slice.iter().sum();
            assert!(
                (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                "[{t0},{t1})"
            );
            assert_eq!(agg.count, t1 - t0);
        }
    }

    #[test]
    fn stream_aggregate_rejects_positioned_past_range() {
        use crate::decoder::Decoder;
        let mut enc = SbrEncoder::new(1, 32, SbrConfig::new(20, 16)).unwrap();
        let rows = vec![(0..32).map(|i| i as f64).collect::<Vec<f64>>()];
        let t0 = enc.encode(&rows).unwrap();
        let t1 = enc.encode(&rows).unwrap();
        let txs = vec![t0, t1];
        let mut d = Decoder::new();
        d.apply_updates_only(&txs[0]).unwrap();
        d.apply_updates_only(&txs[1]).unwrap();
        assert!(aggregate_stream(&mut d, &txs, 0, 0, 10).is_err());
    }

    #[test]
    fn fallback_only_view_works_without_base() {
        let records = [
            IntervalRecord {
                start: 0,
                shift: -1,
                a: 2.0,
                b: 1.0,
            },
            IntervalRecord {
                start: 4,
                shift: -1,
                a: 0.0,
                b: 10.0,
            },
        ];
        let v = ChunkView::new(&records, &[], 8).unwrap();
        // First record: 1, 3, 5, 7; second: 10 × 4.
        assert_eq!(v.range_sum(0, 8).unwrap(), 16.0 + 40.0);
        assert_eq!(v.range_sum(2, 6).unwrap(), 5.0 + 7.0 + 20.0);
        let (lo, hi) = v.range_min_max(0, 8).unwrap();
        assert_eq!((lo, hi), (1.0, 10.0));
    }
}
