//! The §4.4 constrained-deployment policy, made executable: run the full
//! SBR pipeline only while the dictionary is still learning, then fall back
//! to the fast `GetIntervals`-only path, re-enabling dictionary updates
//! when approximation quality degrades.
//!
//! The paper: *"decide not to update the base signal … perform their
//! execution only periodically (i.e., when we notice a degradation in the
//! quality of the approximation)"*. [`QualityMonitor`] is the degradation
//! detector; [`AdaptiveEncoder`] wires it to an [`SbrEncoder`].

use std::collections::VecDeque;

use crate::error::Result;
use crate::sbr::{EncodeStats, SbrEncoder};
use crate::transmission::Transmission;

/// Rolling-median degradation detector over per-transmission errors.
///
/// ```
/// use sbr_core::{Quality, QualityMonitor};
/// let mut m = QualityMonitor::new(4, 2.0);
/// m.observe(10.0);
/// m.observe(11.0);
/// assert_eq!(m.observe(10.5), Quality::Stable);
/// assert_eq!(m.observe(42.0), Quality::Degraded);
/// ```
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    window: usize,
    degrade_factor: f64,
    history: VecDeque<f64>,
}

/// Verdict of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Error is in line with recent history.
    Stable,
    /// Error exceeds `degrade_factor ×` the rolling median — the dictionary
    /// no longer matches the data.
    Degraded,
    /// Not enough history yet to judge.
    Warmup,
}

impl QualityMonitor {
    /// A monitor comparing each error against `degrade_factor ×` the median
    /// of the last `window` errors.
    pub fn new(window: usize, degrade_factor: f64) -> Self {
        assert!(window >= 2, "need at least two observations to compare");
        assert!(degrade_factor > 1.0, "factor must exceed 1");
        QualityMonitor {
            window,
            degrade_factor,
            history: VecDeque::with_capacity(window + 1),
        }
    }

    /// Record one per-transmission error and classify it.
    pub fn observe(&mut self, err: f64) -> Quality {
        let verdict = if self.history.len() < 2 {
            Quality::Warmup
        } else {
            let mut sorted: Vec<f64> = self.history.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            if err > self.degrade_factor * median.max(f64::MIN_POSITIVE) {
                Quality::Degraded
            } else {
                Quality::Stable
            }
        };
        self.history.push_back(err);
        if self.history.len() > self.window {
            self.history.pop_front();
        }
        verdict
    }

    /// Forget history (e.g. after the dictionary was rebuilt).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

/// An [`SbrEncoder`] governed by a [`QualityMonitor`]:
///
/// * dictionary updates stay on until `converged_after` consecutive
///   transmissions insert nothing, then turn off (cheap path),
/// * a `Degraded` verdict turns them back on and resets the detector.
#[derive(Debug)]
pub struct AdaptiveEncoder {
    encoder: SbrEncoder,
    monitor: QualityMonitor,
    converged_after: usize,
    quiet_streak: usize,
    updates_on: bool,
}

impl AdaptiveEncoder {
    /// Wrap an encoder. `converged_after` is the number of consecutive
    /// zero-insertion transmissions after which updates are switched off.
    pub fn new(encoder: SbrEncoder, monitor: QualityMonitor, converged_after: usize) -> Self {
        AdaptiveEncoder {
            encoder,
            monitor,
            converged_after: converged_after.max(1),
            quiet_streak: 0,
            updates_on: true,
        }
    }

    /// Whether the expensive dictionary-update path is currently active.
    pub fn updates_on(&self) -> bool {
        self.updates_on
    }

    /// Access the wrapped encoder.
    pub fn encoder(&self) -> &SbrEncoder {
        &self.encoder
    }

    /// Encode a batch under the adaptive policy.
    pub fn encode(&mut self, rows: &[Vec<f64>]) -> Result<(Transmission, EncodeStats)> {
        self.encoder.set_update_base(self.updates_on);
        let tx = self.encoder.encode(rows)?;
        // lint:allow(panic-reachability): encode() on the line above always records stats
        let stats = self.encoder.last_stats().expect("stats after encode");

        if self.updates_on {
            if stats.inserted == 0 {
                self.quiet_streak += 1;
                if self.quiet_streak >= self.converged_after {
                    self.updates_on = false;
                }
            } else {
                self.quiet_streak = 0;
            }
        }
        if self.monitor.observe(stats.total_err) == Quality::Degraded && !self.updates_on {
            self.updates_on = true;
            self.quiet_streak = 0;
            self.monitor.reset();
        }
        Ok((tx, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrConfig;

    #[test]
    fn monitor_warms_up_then_judges() {
        let mut m = QualityMonitor::new(4, 2.0);
        assert_eq!(m.observe(10.0), Quality::Warmup);
        assert_eq!(m.observe(11.0), Quality::Warmup);
        assert_eq!(m.observe(10.5), Quality::Stable);
        assert_eq!(m.observe(50.0), Quality::Degraded);
    }

    #[test]
    fn monitor_window_slides() {
        let mut m = QualityMonitor::new(3, 2.0);
        for e in [1.0, 1.0, 1.0, 100.0, 100.0, 100.0] {
            m.observe(e);
        }
        // History is now all 100s; another 100 is stable.
        assert_eq!(m.observe(100.0), Quality::Stable);
    }

    #[test]
    fn monitor_handles_zero_errors() {
        let mut m = QualityMonitor::new(3, 2.0);
        m.observe(0.0);
        m.observe(0.0);
        assert_eq!(m.observe(1.0), Quality::Degraded);
    }

    fn rows(seed: u64, pattern: f64) -> Vec<Vec<f64>> {
        vec![(0..128)
            .map(|i| ((i as f64 * pattern) + seed as f64).sin() * 5.0 + (i % 9) as f64)
            .collect()]
    }

    #[test]
    fn adaptive_turns_updates_off_after_convergence() {
        let enc = SbrEncoder::new(1, 128, SbrConfig::new(64, 64)).unwrap();
        let mut adaptive = AdaptiveEncoder::new(enc, QualityMonitor::new(4, 3.0), 2);
        // Same-regime data: insertions stop, updates eventually switch off.
        let mut switched_off = false;
        for t in 0..8 {
            adaptive.encode(&rows(t % 2, 0.37)).unwrap();
            if !adaptive.updates_on() {
                switched_off = true;
            }
        }
        assert!(switched_off, "stationary data must trigger the cheap path");
    }

    #[test]
    fn adaptive_reenables_on_regime_change() {
        let enc = SbrEncoder::new(1, 128, SbrConfig::new(64, 64)).unwrap();
        let mut adaptive = AdaptiveEncoder::new(enc, QualityMonitor::new(4, 2.0), 2);
        for t in 0..6 {
            adaptive.encode(&rows(t, 0.37)).unwrap();
        }
        let was_off = !adaptive.updates_on();
        // Regime change: different frequency and scale.
        let shock: Vec<Vec<f64>> = vec![(0..128)
            .map(|i| ((i as f64 * 1.9).sin() * 80.0) + ((i * i) % 23) as f64)
            .collect()];
        adaptive.encode(&shock).unwrap();
        adaptive.encode(&shock).unwrap();
        assert!(
            adaptive.updates_on(),
            "degradation must re-enable updates (was_off = {was_off})"
        );
    }
}
