//! Cross-batch memo of `GetBase` pair-fit errors.
//!
//! `GetBase` (Algorithm 4) scores every ordered pair of candidate base
//! intervals with `fit(metric, cbi_i, cbi_j).err`. Those errors depend only
//! on the two windows' *contents* — not on the batch they arrived in, the
//! greedy step examining them, or the thread evaluating them — so the same
//! number is recomputed many times: the low-memory variant re-fits the full
//! `K×K` matrix on every greedy step, and consecutive transmission batches
//! of slowly-varying sensor data repeat whole windows verbatim.
//!
//! [`FitCache`] interns candidate windows by content (a 64-bit FNV-1a hash
//! over the samples' bit patterns, verified by exact comparison, so hash
//! collisions can never alias two different windows) and memoizes pair
//! errors keyed by interned ids. The cached `GetBase` paths fit each
//! distinct pair at most once per process lifetime-within-retention; every
//! other evaluation is a lookup. Because the memoized value *is* the
//! `regression::fit` result, cached and legacy runs select bit-identical
//! candidates — the differential suite `get_base_incremental_diff` pins
//! this.
//!
//! **Invalidation rule:** ids (and every pair touching them) are retained
//! while their window content keeps appearing in batches; a window unseen
//! for [`RETAIN_GENERATIONS`] consecutive batches is evicted together with
//! all its pairs at the next [`FitCache::begin_batch`]. A metric change
//! clears the cache outright (errors are metric-specific).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::metric::ErrorMetric;

/// FNV-1a hasher for the cache's internal maps. The keys are internal ids
/// and content hashes — never attacker-controlled input — and the pair map
/// sits on the matrix build's per-cell path, where the default SipHash's
/// DoS resistance costs roughly as much as the factored fit it guards.
#[derive(Debug, Clone, Copy)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.0 ^= i as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 ^= i;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Batches a window may go unseen before eviction: content is carried
/// across the current and the immediately previous batch, which is where
/// slowly-varying sensor streams actually repeat themselves.
pub const RETAIN_GENERATIONS: u64 = 2;

/// One interned candidate window.
#[derive(Debug, Clone)]
struct Slot {
    /// FNV-1a over the samples' `to_bits()` patterns.
    hash: u64,
    /// The window contents (exact-equality witness for the hash).
    content: Vec<f64>,
    /// Generation the content was last interned.
    last_seen: u64,
}

/// Content-addressed memo of `GetBase` pair-fit errors. See the module
/// docs for the retention/invalidation contract.
#[derive(Debug, Default, Clone)]
pub struct FitCache {
    /// Metric the memoized errors were computed under; a change clears.
    metric: Option<ErrorMetric>,
    /// Current batch generation (bumped by [`FitCache::begin_batch`]).
    generation: u64,
    /// Interned windows; the index is the stable id. `None` = freed slot.
    slots: Vec<Option<Slot>>,
    /// Free slot ids available for reuse.
    free: Vec<u32>,
    /// Content hash → slot ids carrying that hash.
    by_hash: HashMap<u64, Vec<u32>, FnvBuild>,
    /// `(base_id, data_id)` → memoized `fit(metric, base, data).err`, for
    /// one-off [`FitCache::insert`]s. The bulk path is the stored matrix
    /// below — per-pair map inserts on the build's per-cell path cost as
    /// much as the factored fits they would save.
    pairs: HashMap<(u32, u32), f64, FnvBuild>,
    /// Ids of the rows/columns of `mat`, in matrix order.
    mat_ids: Vec<u32>,
    /// Id → row index into `mat` (rows and columns share the index).
    mat_index: HashMap<u32, u32, FnvBuild>,
    /// The previous build's dense `K×K` error matrix, handed over
    /// wholesale by [`FitCache::store_matrix`] (one `Vec` move instead of
    /// `K²` map inserts).
    mat: Vec<f64>,
}

/// FNV-1a-style fold over the bit patterns of `content`, one 64-bit
/// pattern per step (byte-wise FNV would walk `K·W·8` bytes per batch for
/// nothing — this hash is internal, collisions are resolved by the exact
/// comparison below). Bit patterns (not values) so that `-0.0`/`0.0` and
/// NaN payloads hash consistently with the `to_bits` comparison.
fn content_hash(content: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in content {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn same_content(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl FitCache {
    /// An empty cache.
    pub fn new() -> Self {
        FitCache::default()
    }

    /// Open a new batch: clear everything if `metric` changed, evict
    /// windows unseen for [`RETAIN_GENERATIONS`] batches (with all their
    /// pairs), and bump the generation counter.
    pub fn begin_batch(&mut self, metric: ErrorMetric) {
        if self.metric != Some(metric) {
            self.metric = Some(metric);
            self.generation = 0;
            self.slots.clear();
            self.free.clear();
            self.by_hash.clear();
            self.pairs.clear();
            self.mat_ids.clear();
            self.mat_index.clear();
            self.mat.clear();
        }
        self.generation += 1;
        let cutoff = self.generation.saturating_sub(RETAIN_GENERATIONS);
        if cutoff == 0 {
            return;
        }
        let mut dead: Vec<u32> = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            if let Some(s) = slot {
                if s.last_seen <= cutoff {
                    dead.push(id as u32);
                }
            }
        }
        if dead.is_empty() {
            return;
        }
        for &id in &dead {
            // lint:allow(panic-reachability): dead ids were collected from occupied slots in this pass
            let slot = self.slots[id as usize].take().expect("checked above");
            if let Some(ids) = self.by_hash.get_mut(&slot.hash) {
                ids.retain(|&i| i != id);
                if ids.is_empty() {
                    self.by_hash.remove(&slot.hash);
                }
            }
            // The id may be recycled for fresh content; its old matrix
            // row/column must stop being servable first.
            self.mat_index.remove(&id);
            self.free.push(id);
        }
        let alive = &self.slots;
        // lint:allow(determinism): retain predicate is per-key; visit order cannot leak
        self.pairs.retain(|&(a, b), _| {
            alive.get(a as usize).is_some_and(Option::is_some)
                && alive.get(b as usize).is_some_and(Option::is_some)
        });
    }

    /// Intern a window by content, returning its stable id and whether the
    /// content was already known (`true` = carried over, its pairs are
    /// reusable).
    pub fn intern(&mut self, content: &[f64]) -> (u32, bool) {
        let hash = content_hash(content);
        if let Some(ids) = self.by_hash.get(&hash) {
            for &id in ids {
                if let Some(slot) = &self.slots[id as usize] {
                    if same_content(&slot.content, content) {
                        let known = slot.last_seen < self.generation;
                        self.slots[id as usize]
                            .as_mut()
                            // lint:allow(panic-reachability): id came from by_hash, which only indexes live slots
                            .expect("checked above")
                            .last_seen = self.generation;
                        return (id, known);
                    }
                }
            }
        }
        let slot = Slot {
            hash,
            content: content.to_vec(),
            last_seen: self.generation,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.by_hash.entry(hash).or_default().push(id);
        (id, false)
    }

    /// The memoized error of fitting data window `data_id` on base window
    /// `base_id`, if that pair is servable under the current metric — from
    /// the stored matrix first, then the one-off insert map.
    #[inline]
    pub fn get(&self, base_id: u32, data_id: u32) -> Option<f64> {
        if let (Some(&ri), Some(&ci)) = (self.mat_index.get(&base_id), self.mat_index.get(&data_id))
        {
            return Some(self.mat[ri as usize * self.mat_ids.len() + ci as usize]);
        }
        self.pairs.get(&(base_id, data_id)).copied()
    }

    /// Memoize a freshly computed pair error.
    #[inline]
    pub fn insert(&mut self, base_id: u32, data_id: u32, err: f64) {
        self.pairs.insert((base_id, data_id), err);
    }

    /// Hand over a build's dense error matrix: `mat[r * ids.len() + c]` is
    /// `fit(metric, window ids[r], window ids[c]).err`, with the diagonal
    /// following the caller's convention (`GetBase` pins it at `0.0`). The
    /// matrix replaces the previously stored one — a pair is servable from
    /// it while both ids keep appearing, which with the per-build
    /// replacement realizes the [`RETAIN_GENERATIONS`] window. If `ids`
    /// repeats an id (duplicate window content in one batch), the rows are
    /// bit-identical by construction and the last one wins.
    pub fn store_matrix(&mut self, ids: &[u32], mat: Vec<f64>) {
        debug_assert_eq!(ids.len() * ids.len(), mat.len());
        self.mat_ids.clear();
        self.mat_ids.extend_from_slice(ids);
        self.mat_index.clear();
        self.mat_index.reserve(ids.len());
        for (r, &id) in ids.iter().enumerate() {
            self.mat_index.insert(id, r as u32);
        }
        self.mat = mat;
    }

    /// Interned windows currently alive.
    pub fn windows(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Memoized pair errors currently servable: one-off inserts plus the
    /// stored matrix's cells.
    pub fn pairs(&self) -> usize {
        self.pairs.len() + self.mat.len()
    }

    /// Approximate heap footprint in bytes: window samples, the stored
    /// matrix, and one-off pair-map entries (reported through the
    /// `sbr_core.get_base.fit_cache.bytes` gauge).
    pub fn footprint_bytes(&self) -> usize {
        let window_bytes: usize = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.content.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Slot>())
            .sum();
        let pair_bytes = self.pairs.len() * (std::mem::size_of::<(u32, u32)>() + 8);
        let mat_bytes = self.mat.len() * 8 + self.mat_ids.len() * (4 + 4 + 4);
        window_bytes + pair_bytes + mat_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_content_addressed() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, known_a) = c.intern(&[1.0, 2.0, 3.0]);
        let (b, _) = c.intern(&[1.0, 2.0, 4.0]);
        let (a2, _) = c.intern(&[1.0, 2.0, 3.0]);
        assert_ne!(a, b);
        assert_eq!(a, a2, "same content must intern to the same id");
        assert!(!known_a, "first sighting is not a carry-over");
        assert_eq!(c.windows(), 2);
    }

    #[test]
    fn carry_over_flag_fires_on_next_batch() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, known) = c.intern(&[5.0, 6.0]);
        assert!(!known);
        c.insert(a, a, 0.0);
        c.begin_batch(ErrorMetric::Sse);
        let (a2, known2) = c.intern(&[5.0, 6.0]);
        assert_eq!(a, a2);
        assert!(known2, "window repeated in the next batch is a carry-over");
        assert_eq!(c.get(a2, a2), Some(0.0), "its pairs survive too");
    }

    #[test]
    fn stale_windows_and_their_pairs_are_evicted() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, _) = c.intern(&[1.0]);
        let (b, _) = c.intern(&[2.0]);
        c.insert(a, b, 7.0);
        // `a` keeps appearing, `b` does not.
        for _ in 0..RETAIN_GENERATIONS + 1 {
            c.begin_batch(ErrorMetric::Sse);
            c.intern(&[1.0]);
        }
        assert_eq!(c.windows(), 1, "unseen window must be evicted");
        assert_eq!(c.get(a, b), None, "pairs of evicted windows go with them");
        // The freed id is reused for fresh content — with no stale pairs.
        let (b2, known) = c.intern(&[3.0]);
        assert_eq!(b2, b, "freed slot id is recycled");
        assert!(!known);
        assert_eq!(c.get(a, b2), None);
    }

    #[test]
    fn metric_change_clears_everything() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, _) = c.intern(&[1.0, 2.0]);
        c.insert(a, a, 0.5);
        c.begin_batch(ErrorMetric::MaxAbs);
        assert_eq!(c.windows(), 0);
        assert_eq!(c.pairs(), 0);
        assert_eq!(c.get(a, a), None);
    }

    #[test]
    fn stored_matrix_serves_pairs_and_respects_eviction() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, _) = c.intern(&[1.0, 2.0]);
        let (b, _) = c.intern(&[3.0, 4.0]);
        c.store_matrix(&[a, b], vec![0.0, 7.0, 9.0, 0.0]);
        assert_eq!(c.get(a, b), Some(7.0));
        assert_eq!(c.get(b, a), Some(9.0), "the matrix is ordered");
        // `b` goes unseen long enough to be evicted and recycled; the
        // recycled id must not serve the dead window's row.
        for _ in 0..RETAIN_GENERATIONS + 1 {
            c.begin_batch(ErrorMetric::Sse);
            c.intern(&[1.0, 2.0]);
        }
        let (b2, known) = c.intern(&[5.0, 6.0]);
        assert_eq!(b2, b, "freed slot id is recycled");
        assert!(!known);
        assert_eq!(
            c.get(a, b2),
            None,
            "recycled id must not alias the evicted window's matrix row"
        );
    }

    #[test]
    fn zero_and_negative_zero_do_not_alias() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        let (a, _) = c.intern(&[0.0]);
        let (b, _) = c.intern(&[-0.0]);
        assert_ne!(a, b, "interning is by bit pattern, not numeric equality");
    }

    #[test]
    fn footprint_tracks_contents_and_pairs() {
        let mut c = FitCache::new();
        c.begin_batch(ErrorMetric::Sse);
        assert_eq!(c.footprint_bytes(), 0);
        let (a, _) = c.intern(&[1.0; 16]);
        let base = c.footprint_bytes();
        assert!(base >= 16 * 8);
        c.insert(a, a, 0.0);
        assert!(c.footprint_bytes() > base);
    }
}
