//! Error metrics supported by the framework.
//!
//! The paper's `Regression()` subroutine minimizes the sum of squared errors;
//! §4.5 and the companion technical report describe drop-in replacements for
//! the sum squared *relative* error and the maximum absolute error. The
//! chosen metric changes three things, all captured here:
//!
//! 1. which regression fit is optimal for a `(segment, interval)` pair
//!    (see [`crate::regression`]),
//! 2. how per-interval errors combine into a batch error (sum vs. max),
//! 3. how a reconstruction is scored against the original.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The error metric an encoder optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
#[derive(Default)]
pub enum ErrorMetric {
    /// Sum of squared errors `Σ (y_i - ŷ_i)²` — the paper's default.
    #[default]
    Sse,
    /// Sum of squared relative errors `Σ ((y_i - ŷ_i) / max(|y_i|, sanity))²`.
    ///
    /// The *sanity bound* guards against division by values near zero, the
    /// standard convention in the approximate-query literature the paper
    /// builds on.
    RelativeSse {
        /// Lower clamp on `|y_i|` used as the denominator.
        sanity: f64,
    },
    /// Maximum absolute error `max |y_i - ŷ_i|` (minimax / Chebyshev fit).
    MaxAbs,
}

impl ErrorMetric {
    /// A relative-error metric with the sanity bound used throughout the
    /// paper's experiments (values below 1 are clamped).
    pub const fn relative() -> Self {
        ErrorMetric::RelativeSse { sanity: 1.0 }
    }

    /// Combine two already-computed interval errors into a batch error.
    #[inline]
    pub fn combine(self, acc: f64, err: f64) -> f64 {
        match self {
            ErrorMetric::Sse | ErrorMetric::RelativeSse { .. } => acc + err,
            ErrorMetric::MaxAbs => acc.max(err),
        }
    }

    /// Identity element for [`ErrorMetric::combine`].
    #[inline]
    pub fn zero(self) -> f64 {
        0.0
    }

    /// Fold a slice of interval errors into a batch error.
    pub fn combine_all(self, errs: impl IntoIterator<Item = f64>) -> f64 {
        errs.into_iter()
            .fold(self.zero(), |acc, e| self.combine(acc, e))
    }

    /// Score a reconstruction `approx` against the original `exact`.
    ///
    /// This is the ground-truth scorer used by the evaluation harness; it
    /// does not depend on how the approximation was produced.
    pub fn score(self, exact: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(
            exact.len(),
            approx.len(),
            "score: length mismatch ({} vs {})",
            exact.len(),
            approx.len()
        );
        match self {
            ErrorMetric::Sse => exact
                .iter()
                .zip(approx)
                .map(|(y, v)| {
                    let d = y - v;
                    d * d
                })
                .sum(),
            ErrorMetric::RelativeSse { sanity } => exact
                .iter()
                .zip(approx)
                .map(|(y, v)| {
                    let d = (y - v) / y.abs().max(sanity);
                    d * d
                })
                .sum(),
            ErrorMetric::MaxAbs => exact
                .iter()
                .zip(approx)
                .map(|(y, v)| (y - v).abs())
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_sums_for_sse() {
        let m = ErrorMetric::Sse;
        assert_eq!(m.combine_all([1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn combine_maxes_for_maxabs() {
        let m = ErrorMetric::MaxAbs;
        assert_eq!(m.combine_all([1.0, 5.0, 3.0]), 5.0);
    }

    #[test]
    fn score_sse() {
        let m = ErrorMetric::Sse;
        assert_eq!(m.score(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
    }

    #[test]
    fn score_relative_uses_sanity_clamp() {
        let m = ErrorMetric::RelativeSse { sanity: 1.0 };
        // |y| = 0.1 < sanity, so denominator is 1.0, not 0.1.
        assert!((m.score(&[0.1], &[0.6]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn score_relative_divides_by_magnitude() {
        let m = ErrorMetric::RelativeSse { sanity: 1.0 };
        // |y| = 10, error 5 → (5/10)² = 0.25
        assert!((m.score(&[10.0], &[5.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn score_maxabs() {
        let m = ErrorMetric::MaxAbs;
        assert_eq!(m.score(&[1.0, 2.0, 3.0], &[0.0, 5.0, 3.5]), 3.0);
    }

    #[test]
    fn perfect_reconstruction_scores_zero() {
        let y = [1.0, -2.0, 3.5];
        for m in [
            ErrorMetric::Sse,
            ErrorMetric::relative(),
            ErrorMetric::MaxAbs,
        ] {
            assert_eq!(m.score(&y, &y), 0.0);
        }
    }
}
