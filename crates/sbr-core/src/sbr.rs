//! The `SBR` driver (Algorithm 5): one object per sensor that turns each
//! full buffer into a [`Transmission`], evolving its base signal as it goes.

use crate::base_signal::BaseSignal;
use crate::config::{BaseBuilder, SbrConfig};
use crate::error::{Result, SbrError};
use crate::fit_cache::FitCache;
use crate::get_base::GetBaseBuilder;
use crate::get_intervals::get_intervals;
use crate::search::SearchContext;
use crate::series::MultiSeries;
use crate::transmission::{BaseUpdate, Transmission};

/// Diagnostics for the most recent [`SbrEncoder::encode`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeStats {
    /// Number of base intervals inserted (`Ins`).
    pub inserted: usize,
    /// Batch error of the transmitted approximation, under the configured
    /// metric, as estimated by `GetIntervals`.
    pub total_err: f64,
    /// How many `GetIntervals` probes the insertion search ran.
    pub search_probes: usize,
    /// Number of approximation intervals transmitted.
    pub intervals: usize,
}

/// Stateful per-sensor encoder.
///
/// Batches must all share the shape declared at construction (`n_signals` ×
/// `samples_per_signal`), which pins the base-interval width `W` — the base
/// signal's slot geometry cannot change across transmissions.
pub struct SbrEncoder {
    n_signals: usize,
    samples_per_signal: usize,
    config: SbrConfig,
    w: usize,
    capacity_slots: usize,
    base: BaseSignal,
    builder: Box<dyn BaseBuilder + Send>,
    /// Cross-batch memo of `GetBase` pair-fit errors, handed to the builder
    /// when [`SbrConfig::get_base_fit_cache`] is on. Windows repeated from
    /// the previous batch skip their fits entirely; see
    /// [`crate::fit_cache`].
    fit_cache: FitCache,
    seq: u64,
    last_stats: Option<EncodeStats>,
}

impl SbrEncoder {
    /// Create an encoder for batches of `n_signals × samples_per_signal`
    /// values under `config`, using the paper's `GetBase` construction.
    pub fn new(n_signals: usize, samples_per_signal: usize, config: SbrConfig) -> Result<Self> {
        Self::with_builder(
            n_signals,
            samples_per_signal,
            config,
            Box::new(GetBaseBuilder),
        )
    }

    /// Like [`SbrEncoder::new`] but with a custom base-signal construction
    /// (e.g. the SVD/DCT alternatives from the paper's appendix).
    pub fn with_builder(
        n_signals: usize,
        samples_per_signal: usize,
        config: SbrConfig,
        builder: Box<dyn BaseBuilder + Send>,
    ) -> Result<Self> {
        let w = config.validate(n_signals, samples_per_signal)?;
        if config.m_base < w && config.update_base {
            return Err(SbrError::InvalidConfig(format!(
                "base buffer of {} values cannot hold one W = {w} interval",
                config.m_base
            )));
        }
        Ok(SbrEncoder {
            n_signals,
            samples_per_signal,
            capacity_slots: config.m_base / w,
            w,
            config,
            base: BaseSignal::new(w),
            builder,
            fit_cache: FitCache::new(),
            seq: 0,
            last_stats: None,
        })
    }

    /// The derived base-interval width `W`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// The encoder's current base signal.
    pub fn base(&self) -> &BaseSignal {
        &self.base
    }

    /// The configuration in force.
    pub fn config(&self) -> &SbrConfig {
        &self.config
    }

    /// Diagnostics of the last `encode` call.
    pub fn last_stats(&self) -> Option<EncodeStats> {
        self.last_stats
    }

    /// Enable/disable base-signal updating mid-stream — the §4.4 shortcut
    /// for constrained deployments: once the dictionary has converged, a
    /// node can skip `GetBase`/`Search` entirely (only `GetIntervals` runs,
    /// linear in the batch size) and re-enable updates if the
    /// approximation quality degrades.
    pub fn set_update_base(&mut self, enabled: bool) {
        self.config.update_base = enabled;
    }

    /// Swap the configuration for a bounded-encoding call (`bounds.rs`).
    /// Budget knobs only — the base-signal geometry (`W`, slot capacity) is
    /// fixed at construction and must not change mid-stream.
    pub(crate) fn set_config_for_bounds(&mut self, config: SbrConfig) {
        debug_assert_eq!(
            config.w_for(self.n_signals * self.samples_per_signal),
            self.w
        );
        self.config = config;
    }

    /// Next transmission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Compress one batch given as per-signal rows.
    pub fn encode(&mut self, rows: &[Vec<f64>]) -> Result<Transmission> {
        let data = MultiSeries::from_rows(rows)?;
        self.encode_series(&data)
    }

    /// Compress one batch.
    pub fn encode_series(&mut self, data: &MultiSeries) -> Result<Transmission> {
        if data.n_signals() != self.n_signals
            || data.samples_per_signal() != self.samples_per_signal
        {
            return Err(SbrError::ShapeMismatch {
                expected_signals: self.n_signals,
                expected_len: self.samples_per_signal,
                got: (data.n_signals(), data.samples_per_signal()),
            });
        }

        let obs = self.config.obs.clone();
        let _encode_span = obs.span("sbr_core.sbr.encode_ns", &obs.encode_ns);

        // Step 1 (Algorithms 4, 6, 7): rank candidate features and pick how
        // many to insert.
        let (candidates, ins, probes) = if self.config.update_base {
            let max_ins = self.config.max_ins(self.w);
            // K CBIs per GetBase run; the benefit matrix is K×K.
            let k = self.n_signals * (self.samples_per_signal / self.w);
            obs.matrix_cells.set((k * k) as f64);
            let candidates = {
                let _s = obs.span("sbr_core.get_base.build_ns", &obs.get_base_ns);
                if self.config.get_base_fit_cache {
                    self.builder.build_cached(
                        data,
                        self.w,
                        max_ins,
                        self.config.metric,
                        self.config.resolved_threads(),
                        &obs,
                        Some(&mut self.fit_cache),
                    )
                } else {
                    self.builder.build_with_obs(
                        data,
                        self.w,
                        max_ins,
                        self.config.metric,
                        self.config.resolved_threads(),
                        &obs,
                    )
                }
            };
            let mut search =
                SearchContext::new(&self.base, &candidates, data, self.w, &self.config);
            let (mut ins, probes) = {
                let _s = obs.span("sbr_core.search.run_ns", &obs.search_ns);
                let ins = search.run();
                (ins, search.probes())
            };
            obs.search_probes.add(probes as u64);
            // Safety net: the binary search assumes unimodality; never let a
            // bad probe leave us with a count whose leftover budget cannot
            // hold one interval per signal (Ins = 0 is always feasible —
            // `validate` guaranteed TotalBand ≥ 4N).
            while ins > 0
                && self.config.total_band.saturating_sub(ins * (self.w + 1)) < 4 * self.n_signals
            {
                ins -= 1;
            }
            (candidates, ins, probes)
        } else {
            (Vec::new(), 0, 0)
        };
        let chosen = &candidates[..ins];

        // Step 2: decide where the inserted intervals finally live (LFU
        // eviction when the buffer is full). The decoder mirrors this from
        // the transmitted slot indices alone.
        let placements = self
            .base
            .plan_placement(ins, self.capacity_slots.max(ins))?;

        // Step 3 (Algorithm 3): approximate against the candidate layout
        // X_new = X ∥ inserted, with the bandwidth left over after paying
        // for the insertions.
        let mut scratch = Vec::new();
        let chosen_refs: Vec<&[f64]> = chosen.iter().map(Vec::as_slice).collect();
        let x_new = self
            .base
            .flat_with_appended(&chosen_refs, &mut scratch)
            .to_vec();
        let budget = self.config.total_band - ins * (self.w + 1);
        let approx = get_intervals(&x_new, data, budget, self.w, &self.config)?;

        // Step 4: LFU accounting against the X_new layout, translated to
        // final slots (uses of evicted content are dropped).
        let old_slots = self.base.num_slots();
        let total_new_slots = old_slots + ins;
        let mut slot_uses = vec![0u64; total_new_slots];
        for iv in &approx.intervals {
            if iv.shift >= 0 && iv.length > 0 {
                let first = iv.shift as usize / self.w;
                let last = (iv.shift as usize + iv.length - 1) / self.w;
                let last = last.min(total_new_slots.saturating_sub(1));
                for u in &mut slot_uses[first..=last] {
                    *u += 1;
                }
            }
        }
        let replaced: Vec<usize> = placements
            .iter()
            .copied()
            .filter(|&p| p < old_slots)
            .collect();
        for (k, interval) in chosen.iter().enumerate() {
            self.base.apply_insert(placements[k], interval, self.seq)?;
        }
        for (slot, &uses) in slot_uses.iter().enumerate().take(old_slots) {
            if uses > 0 && !replaced.contains(&slot) {
                self.base.bump_use(slot, uses);
            }
        }
        for (k, &p) in placements.iter().enumerate() {
            let uses = slot_uses[old_slots + k];
            if uses > 0 {
                self.base.bump_use(p, uses);
            }
        }

        obs.base_inserted.add(ins as u64);
        obs.base_evicted.add(replaced.len() as u64);
        obs.base_slots.set(self.base.num_slots() as f64);
        for iv in &approx.intervals {
            if iv.is_fallback() {
                obs.tx_fallback_intervals.inc();
            } else {
                obs.tx_mapped_intervals.inc();
            }
        }

        let tx = Transmission {
            seq: self.seq,
            n_signals: self.n_signals as u32,
            samples_per_signal: self.samples_per_signal as u32,
            w: self.w as u32,
            base_updates: chosen
                .iter()
                .zip(&placements)
                .map(|(values, &slot)| BaseUpdate {
                    slot: slot as u64,
                    values: values.clone(),
                })
                .collect(),
            intervals: approx.intervals.iter().map(|iv| iv.record()).collect(),
        };
        debug_assert!(tx.cost() <= self.config.total_band);

        self.last_stats = Some(EncodeStats {
            inserted: ins,
            total_err: approx.total_err,
            search_probes: probes,
            intervals: approx.intervals.len(),
        });
        self.seq += 1;
        Ok(tx)
    }
}

impl std::fmt::Debug for SbrEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SbrEncoder")
            .field("n_signals", &self.n_signals)
            .field("samples_per_signal", &self.samples_per_signal)
            .field("w", &self.w)
            .field("seq", &self.seq)
            .field("base_slots", &self.base.num_slots())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::metric::ErrorMetric;

    fn patterned_rows(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..m)
                    .map(|i| {
                        ((i % 32) as f64 * 0.7 + r as f64).sin() * 5.0
                            + (i as f64 * 0.01) * (r + 1) as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_respects_budget() {
        let rows = patterned_rows(2, 128);
        let config = SbrConfig::new(64, 64);
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        for _ in 0..3 {
            let tx = enc.encode(&rows).unwrap();
            assert!(tx.cost() <= 64, "cost {} > budget", tx.cost());
        }
    }

    #[test]
    fn base_never_exceeds_m_base() {
        let rows = patterned_rows(2, 128);
        let config = SbrConfig::new(120, 48); // capacity = 48/16 = 3 slots
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        for round in 0..6 {
            // Vary the data so new features keep appearing.
            let shifted: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .enumerate()
                        .map(|(i, v)| v + ((i + round * 13) as f64 * 0.9).sin() * round as f64)
                        .collect()
                })
                .collect();
            enc.encode(&shifted).unwrap();
            assert!(enc.base().len() <= 48, "base grew past M_base");
        }
    }

    #[test]
    fn seq_increments() {
        let rows = patterned_rows(1, 64);
        let mut enc = SbrEncoder::new(1, 64, SbrConfig::new(32, 32)).unwrap();
        assert_eq!(enc.seq(), 0);
        let t0 = enc.encode(&rows).unwrap();
        let t1 = enc.encode(&rows).unwrap();
        assert_eq!((t0.seq, t1.seq), (0, 1));
        assert_eq!(enc.seq(), 2);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(64, 64)).unwrap();
        let err = enc.encode(&patterned_rows(3, 64)).unwrap_err();
        assert!(matches!(err, SbrError::ShapeMismatch { .. }));
    }

    #[test]
    fn frozen_base_sends_no_updates() {
        let rows = patterned_rows(2, 128);
        let config = SbrConfig::new(64, 64).frozen_base();
        let mut enc = SbrEncoder::new(2, 128, config).unwrap();
        let tx = enc.encode(&rows).unwrap();
        assert!(tx.base_updates.is_empty());
        assert_eq!(enc.last_stats().unwrap().inserted, 0);
    }

    #[test]
    fn roundtrip_error_matches_reported_error() {
        let rows = patterned_rows(3, 96);
        let config = SbrConfig::new(150, 100);
        let mut enc = SbrEncoder::new(3, 96, config).unwrap();
        let mut dec = Decoder::new();
        for _ in 0..4 {
            let tx = enc.encode(&rows).unwrap();
            let rec = dec.decode(&tx).unwrap();
            let mut sse = 0.0;
            for (orig, r) in rows.iter().zip(&rec) {
                sse += ErrorMetric::Sse.score(orig, r);
            }
            let reported = enc.last_stats().unwrap().total_err;
            assert!(
                (sse - reported).abs() <= 1e-6 * (1.0 + sse),
                "decoded SSE {sse} != reported {reported}"
            );
        }
    }

    #[test]
    fn repeated_batches_insert_less_over_time() {
        // Once the dictionary captures the patterns, later transmissions
        // should insert few or no new intervals (Table 6's behaviour).
        let rows = patterned_rows(2, 256);
        let config = SbrConfig::new(200, 200);
        let mut enc = SbrEncoder::new(2, 256, config).unwrap();
        enc.encode(&rows).unwrap();
        let first = enc.last_stats().unwrap().inserted;
        enc.encode(&rows).unwrap();
        let later = enc.last_stats().unwrap().inserted;
        assert!(
            later <= first,
            "identical data must not need more insertions ({later} > {first})"
        );
    }

    #[test]
    fn error_improves_with_bandwidth() {
        let rows = patterned_rows(2, 256);
        let mut errs = Vec::new();
        for band in [48, 96, 192] {
            let mut enc = SbrEncoder::new(2, 256, SbrConfig::new(band, 128)).unwrap();
            enc.encode(&rows).unwrap();
            errs.push(enc.last_stats().unwrap().total_err);
        }
        assert!(errs[2] <= errs[1] + 1e-9);
        assert!(errs[1] <= errs[0] + 1e-9);
    }

    #[test]
    fn m_base_smaller_than_w_rejected() {
        let config = SbrConfig::new(64, 4).with_w(16);
        assert!(SbrEncoder::new(2, 128, config).is_err());
    }
}
