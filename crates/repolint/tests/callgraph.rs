//! Golden fixtures for the call-graph / panic-reachability pass: tiny
//! in-memory workspaces fed through [`repolint::run_sources`], asserting
//! how name-resolution-lite resolves calls (exact where it can, widened
//! where it cannot) and how the reachability walk reports paths.

fn reach(rep: &repolint::Report) -> Vec<&repolint::Finding> {
    rep.findings
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect()
}

#[test]
fn cross_module_call_is_resolved_and_reported_with_the_path() {
    // decoder.rs is a panic-freedom zone; util.rs is not, so the unwrap
    // inside the helper is legal where it sits — but the zone fn must not
    // reach it.
    let rep = repolint::run_sources(&[
        (
            "crates/sbr-core/src/decoder.rs",
            "pub fn decode_step(v: &[u32]) -> u32 {\n    helper(v)\n}\n",
        ),
        (
            "crates/sbr-core/src/util.rs",
            "pub fn helper(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n",
        ),
    ]);
    let r = reach(&rep);
    assert_eq!(r.len(), 1, "{:?}", rep.findings);
    let f = r[0];
    // Anchored at the zone fn's call site, with the full zone→sink chain.
    assert_eq!(f.path, "crates/sbr-core/src/decoder.rs");
    assert_eq!(f.line, 2);
    // zone fn -> helper -> the sink itself.
    assert_eq!(f.call_path.len(), 3, "{:?}", f.call_path);
    assert!(f.call_path[0].starts_with("decode_step@crates/sbr-core/src/decoder.rs:"));
    assert!(f.call_path[1].starts_with("helper@crates/sbr-core/src/util.rs:"));
    assert!(f.call_path[2].starts_with("unwrap()@crates/sbr-core/src/util.rs:"));
    assert!(f.message.contains("unwrap"), "{}", f.message);
}

#[test]
fn clean_cross_module_call_stays_clean() {
    let rep = repolint::run_sources(&[
        (
            "crates/sbr-core/src/decoder.rs",
            "pub fn decode_step(v: &[u32]) -> u32 {\n    helper(v)\n}\n",
        ),
        (
            "crates/sbr-core/src/util.rs",
            "pub fn helper(v: &[u32]) -> u32 {\n    v.first().copied().unwrap_or(0)\n}\n",
        ),
    ]);
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn method_call_ambiguity_widens_to_every_candidate() {
    // The receiver's type is unknowable without real name resolution, so
    // `x.frob()` must widen to *every* workspace method named `frob` —
    // including the one that panics in another crate.
    let rep = repolint::run_sources(&[
        (
            "crates/sbr-core/src/decoder.rs",
            "pub fn decode_step(x: &Thing) -> u32 {\n    x.frob()\n}\n",
        ),
        (
            "crates/sbr-core/src/safe.rs",
            "impl Safe {\n    pub fn frob(&self) -> u32 { 0 }\n}\n",
        ),
        (
            "crates/baselines/src/risky.rs",
            "impl Risky {\n    pub fn frob(&self) -> u32 { panic!(\"boom\") }\n}\n",
        ),
    ]);
    let r = reach(&rep);
    assert_eq!(r.len(), 1, "{:?}", rep.findings);
    assert!(
        r[0].call_path
            .iter()
            .any(|h| h.starts_with("frob@crates/baselines/src/risky.rs:")),
        "{:?}",
        r[0].call_path
    );
}

#[test]
fn method_call_does_not_resolve_to_self_less_free_fns() {
    // `x.frob()` can only dispatch to a method taking `self`; a free
    // `fn frob(x: u32)` is not a candidate, so the zone stays clean even
    // though that free fn panics.
    let rep = repolint::run_sources(&[
        (
            "crates/sbr-core/src/decoder.rs",
            "pub fn decode_step(x: &Thing) -> u32 {\n    x.frob()\n}\n",
        ),
        (
            "crates/baselines/src/risky.rs",
            "pub fn frob(x: u32) -> u32 {\n    panic!(\"boom\")\n}\n",
        ),
    ]);
    assert!(reach(&rep).is_empty(), "{:?}", rep.findings);
}

#[test]
fn transitive_chain_two_calls_deep_reports_every_hop() {
    let rep = repolint::run_sources(&[
        (
            "crates/sensor-net/src/storage.rs",
            "pub fn zone_entry() {\n    mid();\n}\n",
        ),
        (
            "crates/sensor-net/src/aux.rs",
            "pub fn mid() {\n    inner();\n}\npub fn inner() {\n    let x: Option<u32> = None;\n    x.unwrap();\n}\n",
        ),
    ]);
    let r = reach(&rep);
    assert_eq!(r.len(), 1, "{:?}", rep.findings);
    let hops = &r[0].call_path;
    assert_eq!(hops.len(), 4, "{hops:?}");
    assert!(hops[0].starts_with("zone_entry@"));
    assert!(hops[1].starts_with("mid@"));
    assert!(hops[2].starts_with("inner@"));
    assert!(hops[3].starts_with("unwrap()@"));
}

#[test]
fn call_site_allow_suppresses_the_reachability_finding() {
    let rep = repolint::run_sources(&[
        (
            "crates/sbr-core/src/decoder.rs",
            "pub fn decode_step(v: &[u32]) -> u32 {\n    // lint:allow(panic-reachability): fixture invariant makes v non-empty\n    helper(v)\n}\n",
        ),
        (
            "crates/sbr-core/src/util.rs",
            "pub fn helper(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n",
        ),
    ]);
    assert!(reach(&rep).is_empty(), "{:?}", rep.findings);
    assert!(
        rep.suppressed
            .iter()
            .any(|s| s.rule == "panic-reachability"),
        "{:?}",
        rep.suppressed
    );
}

#[test]
fn non_zone_callers_of_panicking_helpers_stay_clean() {
    // Reachability is a zone obligation — a non-zone fn may call into a
    // panicking helper without a finding.
    let rep = repolint::run_sources(&[
        (
            "crates/baselines/src/histogram.rs",
            "pub fn caller(v: &[u32]) -> u32 {\n    helper(v)\n}\npub fn helper(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n",
        ),
    ]);
    assert!(reach(&rep).is_empty(), "{:?}", rep.findings);
}

/// The full-pipeline seeded-mutation check: a scratch tree on disk whose
/// zone fn reaches an unwrap two calls down must make `repolint::run`
/// report the violation with its complete call path — this is what turns
/// the binary's exit code to 1.
#[test]
fn seeded_scratch_tree_reports_the_transitive_unwrap() {
    let dir = std::env::temp_dir().join(format!("repolint-callgraph-{}", std::process::id()));
    let src_dir = dir.join("crates/sensor-net/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("storage.rs"),
        "pub fn seeded_zone() {\n    seeded_mid();\n}\n",
    )
    .unwrap();
    std::fs::write(
        src_dir.join("seeded_aux.rs"),
        "pub fn seeded_mid() {\n    seeded_inner();\n}\npub fn seeded_inner() {\n    let x: Option<u32> = None;\n    x.unwrap();\n}\n",
    )
    .unwrap();

    let rep = repolint::run(&dir);
    std::fs::remove_dir_all(&dir).ok();

    let r: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(r.len(), 1, "{:?}", rep.findings);
    assert_eq!(r[0].path, "crates/sensor-net/src/storage.rs");
    assert_eq!(r[0].call_path.len(), 4, "{:?}", r[0].call_path);
    assert!(r[0].call_path[0].starts_with("seeded_zone@"));
    assert!(r[0].call_path[2].starts_with("seeded_inner@"));
    assert!(r[0].call_path[3].starts_with("unwrap()@"));
}
