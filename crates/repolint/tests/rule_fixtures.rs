//! Per-rule fixtures: each rule is fed a small synthetic source file and
//! must flag exactly the seeded violations — and nothing else. These are
//! the linter's own regression suite; if a rule loosens or overreaches,
//! a fixture here breaks before the workspace sweep does.

use repolint::rules::{scan_source, FileCtx};

/// A path inside the panic-freedom zones.
fn zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/sbr-core/src/decoder.rs",
        crate_dir: "sbr-core",
    }
}

/// A path outside the zones (global rules still run).
fn non_zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/baselines/src/histogram.rs",
        crate_dir: "baselines",
    }
}

fn rules_hit(ctx: &FileCtx<'_>, src: &str) -> Vec<(String, u32)> {
    scan_source(ctx, src)
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn panic_free_flags_every_panic_form() {
    let src = "\
fn f(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    x.unwrap();
    r.expect(\"boom\");
    panic!(\"no\");
    unreachable!();
    todo!();
    unimplemented!()
}
";
    let hits = rules_hit(&zone(), src);
    assert_eq!(
        hits,
        (2..=7)
            .map(|l| ("panic-free".to_string(), l))
            .collect::<Vec<_>>()
    );
}

#[test]
fn panic_free_skips_test_regions_and_non_method_idents() {
    let src = "\
fn unwrap(x: u32) -> u32 { x } // a free fn named unwrap is fine
fn g() { let _ = unwrap(3); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        None::<u32>.unwrap();
        panic!(\"tests may panic\");
    }
}
";
    assert!(rules_hit(&zone(), src).is_empty());
}

#[test]
fn panic_free_and_index_only_fire_inside_the_zones() {
    let src = "fn f(v: &[u32]) -> u32 { v[0] + None::<u32>.unwrap() }\n";
    let in_zone = rules_hit(&zone(), src);
    assert_eq!(
        in_zone,
        vec![("index".to_string(), 1), ("panic-free".to_string(), 1)]
    );
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn index_ignores_literals_macros_and_get() {
    let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    for x in [1, 2, 3] {}
    let a = vec![0u32; 4];
    let b: [u32; 2] = [0, 1];
    v.get(i).copied().unwrap_or(0)
}
";
    assert!(rules_hit(&zone(), src).is_empty());
}

#[test]
fn index_flags_chained_subscripts() {
    // Indexing the result of a call or another subscript panics too.
    let src = "fn f(v: &[Vec<u32>]) -> u32 { v[0][1] + make(v)[2] }\nfn make(v: &[Vec<u32>]) -> Vec<u32> { v.concat() }\n";
    let hits = rules_hit(&zone(), src);
    assert_eq!(hits, vec![("index".to_string(), 1); 3]);
}

#[test]
fn reasoned_allow_suppresses_and_is_reported() {
    let src = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(index): caller guarantees non-empty via the type invariant
    v[0]
}
";
    let out = scan_source(&zone(), src);
    assert!(out.findings.is_empty());
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, "index");
    assert_eq!(
        out.suppressed[0].reason,
        "caller guarantees non-empty via the type invariant"
    );
}

#[test]
fn same_line_allow_works_and_wrong_rule_does_not() {
    let both = "fn f(v: &[u32]) -> u32 { v[0] } // lint:allow(index): single-element invariant\n";
    assert!(scan_source(&zone(), both).findings.is_empty());
    // An allow for a different rule must not silence the finding.
    let wrong = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(panic-free): wrong rule name
    v[0]
}
";
    let out = scan_source(&zone(), wrong);
    assert_eq!(rules_hit(&zone(), wrong), vec![("index".to_string(), 3)]);
    assert!(out.suppressed.is_empty());
}

#[test]
fn reasonless_allow_is_itself_a_finding() {
    let src = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(index):
    v[0]
}
";
    let hits = rules_hit(&zone(), src);
    assert_eq!(
        hits,
        vec![("bad-suppression".to_string(), 2), ("index".to_string(), 3)]
    );
}

#[test]
fn float_eq_flags_literal_comparisons_everywhere() {
    let src = "\
fn f(a: f64, b: f64) -> bool {
    let x = a == 0.0;
    let y = 1.5 != b;
    let z = a == -1.0;
    let ok = a == b;
    x && y && z && ok
}
";
    // Runs outside the zones too — it is a global rule.
    let hits = rules_hit(&non_zone(), src);
    assert_eq!(
        hits,
        (2..=4)
            .map(|l| ("float-eq".to_string(), l))
            .collect::<Vec<_>>()
    );
}

#[test]
fn float_eq_skips_tests_and_integer_literals() {
    let src = "\
fn f(n: usize) -> bool { n == 0 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(super::g() == 0.25); }
}
";
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn atomics_flag_types_and_paths_outside_sbr_obs() {
    let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
fn f() -> usize {
    let n = AtomicUsize::new(0);
    n.load(Ordering::Relaxed)
}
";
    let hits = rules_hit(&non_zone(), src);
    // Line 1: the `::atomic::` path plus the AtomicUsize import;
    // line 3: the constructor. `Ordering` alone never matches (it is also
    // cmp::Ordering all over the codebase).
    assert_eq!(
        hits,
        vec![
            ("atomics".to_string(), 1),
            ("atomics".to_string(), 1),
            ("atomics".to_string(), 3)
        ]
    );
    let obs = FileCtx {
        path: "crates/sbr-obs/src/metrics.rs",
        crate_dir: "sbr-obs",
    };
    assert!(rules_hit(&obs, src).is_empty());
}

#[test]
fn cmp_ordering_is_not_an_atomic() {
    let src = "use std::cmp::Ordering;\nfn f(a: u32, b: u32) -> Ordering { a.cmp(&b) }\n";
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn obs_gate_requires_cfg_feature_in_sbr_core() {
    let ungated = "pub fn hot() { sbr_obs::trace(\"x\"); }\n";
    assert_eq!(
        rules_hit(&zone(), ungated),
        vec![("obs-gate".to_string(), 1)]
    );

    let gated = "\
#[cfg(feature = \"obs\")]
pub fn hot() {
    sbr_obs::trace(\"x\");
}
";
    assert!(rules_hit(&zone(), gated).is_empty());

    // The facade module itself and other crates are exempt.
    let facade = FileCtx {
        path: "crates/sbr-core/src/obs.rs",
        crate_dir: "sbr-core",
    };
    assert!(rules_hit(&facade, ungated).is_empty());
    let sensor_net = FileCtx {
        path: "crates/sensor-net/src/node.rs",
        crate_dir: "sensor-net",
    };
    assert!(rules_hit(&sensor_net, ungated).is_empty());
}

#[test]
fn obs_gate_covers_timeline_shaped_uses() {
    // The frame-lifecycle timeline hooks follow the same contract as the
    // metric handles: `sbr_obs::Timeline` in a signature or body of
    // `sbr-core` must sit under `cfg(feature = "obs")`.
    let ungated_sig = "pub fn with_timeline(t: sbr_obs::Timeline) {}\n";
    assert_eq!(
        rules_hit(&zone(), ungated_sig),
        vec![("obs-gate".to_string(), 1)]
    );

    let gated_sig = "\
#[cfg(feature = \"obs\")]
pub fn with_timeline(mut self, timeline: sbr_obs::Timeline) -> Self {
    self.obs.set_timeline(timeline);
    self
}
";
    assert!(rules_hit(&zone(), gated_sig).is_empty());

    // An ungated use *after* a gated item is still flagged: the gate
    // covers exactly one item, not the rest of the file.
    let trailing = "\
#[cfg(feature = \"obs\")]
pub fn gated() { sbr_obs::Timeline::noop(); }
pub fn leaked() { sbr_obs::Timeline::noop(); }
";
    assert_eq!(
        rules_hit(&zone(), trailing),
        vec![("obs-gate".to_string(), 3)]
    );
}

#[test]
fn report_json_escapes_and_carries_both_lists() {
    let mut rep = repolint::Report::default();
    rep.files_scanned = 2;
    rep.findings.push(repolint::Finding {
        rule: "panic-free".into(),
        path: "crates/x/src/a.rs".into(),
        line: 7,
        message: "quote \" backslash \\ newline \n end".into(),
        call_path: Vec::new(),
    });
    rep.findings.push(repolint::Finding {
        rule: "panic-reachability".into(),
        path: "crates/x/src/a.rs".into(),
        line: 11,
        message: "zone fn reaches a sink".into(),
        call_path: vec![
            "zone@crates/x/src/a.rs:11".into(),
            "sink@crates/x/src/b.rs:3".into(),
        ],
    });
    rep.suppressed.push(repolint::Suppressed {
        rule: "index".into(),
        path: "crates/x/src/b.rs".into(),
        line: 9,
        reason: "tab\there".into(),
    });
    let json = repolint::report::to_json(&rep);
    assert!(json.contains("\"schema\": \"repolint/v2\""));
    assert!(json.contains("\"files_scanned\": 2"));
    assert!(json.contains("quote \\\" backslash \\\\ newline \\n end"));
    assert!(json.contains("tab\\there"));
    assert!(json.contains("\"line\": 7"));
    assert!(json.contains("\"line\": 9"));
    // v2 additions: every finding carries its rule family; only the
    // reachability finding carries a call_path.
    assert!(json.contains("\"rule_family\": \"panic\""));
    assert!(json
        .contains("\"call_path\": [\"zone@crates/x/src/a.rs:11\", \"sink@crates/x/src/b.rs:3\"]"));
    assert_eq!(json.matches("\"call_path\"").count(), 1);
}

#[test]
fn rule_families_cover_every_rule() {
    for (rule, family) in [
        ("panic-free", "panic"),
        ("index", "panic"),
        ("panic-reachability", "panic"),
        ("cast-truncation", "cast"),
        ("determinism", "determinism"),
        ("lock-discipline", "lock"),
        ("float-eq", "float"),
        ("atomics", "confinement"),
        ("obs-gate", "confinement"),
        ("wire-drift", "wire"),
        ("manifest", "manifest"),
        ("bad-suppression", "hygiene"),
    ] {
        assert_eq!(repolint::rule_family(rule), family, "{rule}");
    }
}

// --- cast-truncation ---

/// A wire-zone path (codec/decoder/transmission/storage).
fn cast_zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/sensor-net/src/storage.rs",
        crate_dir: "sensor-net",
    }
}

#[test]
fn cast_truncation_flags_narrowing_of_suspect_values() {
    let src = "\
fn f(v: &[u8], count: u64, offset: u64) -> u32 {
    let a = count as u32;
    let b = v.len() as u32;
    let c = offset as usize;
    a + b + c as u32
}
";
    let hits = rules_hit(&cast_zone(), src);
    assert!(
        hits.contains(&("cast-truncation".to_string(), 2)),
        "{hits:?}"
    );
    assert!(
        hits.contains(&("cast-truncation".to_string(), 3)),
        "{hits:?}"
    );
    assert!(
        hits.contains(&("cast-truncation".to_string(), 4)),
        "{hits:?}"
    );
}

#[test]
fn cast_truncation_skips_widening_small_sources_and_non_zones() {
    // u8/u16 reads widened to usize/u64 cannot truncate; non-suspect
    // names and non-zone files are out of scope.
    let src = "\
fn f(v: &[u8], flags: u8) -> usize {
    let a = get_u16(v) as usize;
    let b = flags as usize;
    a + b
}
fn get_u16(_v: &[u8]) -> u16 { 0 }
";
    assert!(rules_hit(&cast_zone(), src).is_empty());
    let narrowing = "fn f(count: u64) -> u32 { count as u32 }\n";
    assert!(rules_hit(&non_zone(), narrowing).is_empty());
}

#[test]
fn cast_truncation_allow_suppresses_with_reason() {
    let src = "\
fn f(v: &[u8]) -> u32 {
    // lint:allow(cast-truncation): record length guarded by append
    v.len() as u32
}
";
    let out = scan_source(&cast_zone(), src);
    assert!(out.findings.is_empty());
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, "cast-truncation");
}

// --- determinism ---

#[test]
fn determinism_flags_hash_iteration_and_wall_clock() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u64 {
    let table: HashMap<u32, u32> = HashMap::new();
    for (k, v) in table.iter() {
        let _ = (k, v);
    }
    let t = std::time::Instant::now();
    let _ = t;
    0
}
";
    let hits = rules_hit(&non_zone(), src);
    assert!(
        hits.contains(&("determinism".to_string(), 4)),
        "hash iteration not flagged: {hits:?}"
    );
    assert!(
        hits.contains(&("determinism".to_string(), 7)),
        "wall-clock read not flagged: {hits:?}"
    );
}

#[test]
fn determinism_tracks_wrapped_declarations_and_for_loops() {
    let src = "\
use std::collections::HashMap;
use std::sync::Mutex;
struct S { logs: Mutex<HashMap<u32, u32>> }
fn f(s: &S, table: HashMap<u32, u32>) -> u32 {
    for (k, _) in &table {
        let _ = k;
    }
    0
}
";
    let hits = rules_hit(&non_zone(), src);
    assert!(
        hits.contains(&("determinism".to_string(), 5)),
        "for-loop over a hash container not flagged: {hits:?}"
    );
}

#[test]
fn determinism_spares_btree_obs_crates_and_tests() {
    let btree = "\
use std::collections::BTreeMap;
fn f(table: BTreeMap<u32, u32>) -> u32 {
    for (k, _) in table.iter() {
        let _ = k;
    }
    0
}
";
    assert!(rules_hit(&non_zone(), btree).is_empty());
    // sbr-obs and bench own wall-clock reads by design.
    let clock = "fn f() { let _ = std::time::Instant::now(); }\n";
    let obs = FileCtx {
        path: "crates/sbr-obs/src/recorder.rs",
        crate_dir: "sbr-obs",
    };
    assert!(rules_hit(&obs, clock).is_empty());
    let in_test = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
";
    assert!(rules_hit(&non_zone(), in_test).is_empty());
}

// --- lock-discipline ---

/// A path the lock-discipline rule watches.
fn lock_zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/sensor-net/src/network.rs",
        crate_dir: "sensor-net",
    }
}

#[test]
fn lock_discipline_flags_guard_held_across_recorder_reentry() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>, obs: &Obs) {
    let g = m.lock().unwrap();
    obs.record(*g);
}
";
    let hits = rules_hit(&lock_zone(), src);
    assert!(
        hits.contains(&("lock-discipline".to_string(), 3)),
        "guard across recorder call not flagged: {hits:?}"
    );
}

#[test]
fn lock_discipline_accepts_drop_before_reentry_and_other_paths() {
    let dropped = "\
fn f(m: &std::sync::Mutex<u32>, obs: &Obs) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    obs.record(v);
}
";
    assert!(rules_hit(&lock_zone(), dropped)
        .iter()
        .all(|(r, _)| r != "lock-discipline"));
    // Files outside timeline.rs / sensor-net are not watched.
    let src = "\
fn f(m: &std::sync::Mutex<u32>, obs: &Obs) {
    let g = m.lock().unwrap();
    obs.record(*g);
}
";
    assert!(rules_hit(&non_zone(), src)
        .iter()
        .all(|(r, _)| r != "lock-discipline"));
}
