//! Per-rule fixtures: each rule is fed a small synthetic source file and
//! must flag exactly the seeded violations — and nothing else. These are
//! the linter's own regression suite; if a rule loosens or overreaches,
//! a fixture here breaks before the workspace sweep does.

use repolint::rules::{scan_source, FileCtx};

/// A path inside the panic-freedom zones.
fn zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/sbr-core/src/decoder.rs",
        crate_dir: "sbr-core",
    }
}

/// A path outside the zones (global rules still run).
fn non_zone() -> FileCtx<'static> {
    FileCtx {
        path: "crates/baselines/src/histogram.rs",
        crate_dir: "baselines",
    }
}

fn rules_hit(ctx: &FileCtx<'_>, src: &str) -> Vec<(String, u32)> {
    scan_source(ctx, src)
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn panic_free_flags_every_panic_form() {
    let src = "\
fn f(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    x.unwrap();
    r.expect(\"boom\");
    panic!(\"no\");
    unreachable!();
    todo!();
    unimplemented!()
}
";
    let hits = rules_hit(&zone(), src);
    assert_eq!(
        hits,
        (2..=7)
            .map(|l| ("panic-free".to_string(), l))
            .collect::<Vec<_>>()
    );
}

#[test]
fn panic_free_skips_test_regions_and_non_method_idents() {
    let src = "\
fn unwrap(x: u32) -> u32 { x } // a free fn named unwrap is fine
fn g() { let _ = unwrap(3); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        None::<u32>.unwrap();
        panic!(\"tests may panic\");
    }
}
";
    assert!(rules_hit(&zone(), src).is_empty());
}

#[test]
fn panic_free_and_index_only_fire_inside_the_zones() {
    let src = "fn f(v: &[u32]) -> u32 { v[0] + None::<u32>.unwrap() }\n";
    let in_zone = rules_hit(&zone(), src);
    assert_eq!(
        in_zone,
        vec![("index".to_string(), 1), ("panic-free".to_string(), 1)]
    );
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn index_ignores_literals_macros_and_get() {
    let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    for x in [1, 2, 3] {}
    let a = vec![0u32; 4];
    let b: [u32; 2] = [0, 1];
    v.get(i).copied().unwrap_or(0)
}
";
    assert!(rules_hit(&zone(), src).is_empty());
}

#[test]
fn index_flags_chained_subscripts() {
    // Indexing the result of a call or another subscript panics too.
    let src = "fn f(v: &[Vec<u32>]) -> u32 { v[0][1] + make(v)[2] }\nfn make(v: &[Vec<u32>]) -> Vec<u32> { v.concat() }\n";
    let hits = rules_hit(&zone(), src);
    assert_eq!(hits, vec![("index".to_string(), 1); 3]);
}

#[test]
fn reasoned_allow_suppresses_and_is_reported() {
    let src = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(index): caller guarantees non-empty via the type invariant
    v[0]
}
";
    let out = scan_source(&zone(), src);
    assert!(out.findings.is_empty());
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, "index");
    assert_eq!(
        out.suppressed[0].reason,
        "caller guarantees non-empty via the type invariant"
    );
}

#[test]
fn same_line_allow_works_and_wrong_rule_does_not() {
    let both = "fn f(v: &[u32]) -> u32 { v[0] } // lint:allow(index): single-element invariant\n";
    assert!(scan_source(&zone(), both).findings.is_empty());
    // An allow for a different rule must not silence the finding.
    let wrong = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(panic-free): wrong rule name
    v[0]
}
";
    let out = scan_source(&zone(), wrong);
    assert_eq!(rules_hit(&zone(), wrong), vec![("index".to_string(), 3)]);
    assert!(out.suppressed.is_empty());
}

#[test]
fn reasonless_allow_is_itself_a_finding() {
    let src = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(index):
    v[0]
}
";
    let hits = rules_hit(&zone(), src);
    assert_eq!(
        hits,
        vec![("bad-suppression".to_string(), 2), ("index".to_string(), 3)]
    );
}

#[test]
fn float_eq_flags_literal_comparisons_everywhere() {
    let src = "\
fn f(a: f64, b: f64) -> bool {
    let x = a == 0.0;
    let y = 1.5 != b;
    let z = a == -1.0;
    let ok = a == b;
    x && y && z && ok
}
";
    // Runs outside the zones too — it is a global rule.
    let hits = rules_hit(&non_zone(), src);
    assert_eq!(
        hits,
        (2..=4)
            .map(|l| ("float-eq".to_string(), l))
            .collect::<Vec<_>>()
    );
}

#[test]
fn float_eq_skips_tests_and_integer_literals() {
    let src = "\
fn f(n: usize) -> bool { n == 0 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(super::g() == 0.25); }
}
";
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn atomics_flag_types_and_paths_outside_sbr_obs() {
    let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
fn f() -> usize {
    let n = AtomicUsize::new(0);
    n.load(Ordering::Relaxed)
}
";
    let hits = rules_hit(&non_zone(), src);
    // Line 1: the `::atomic::` path plus the AtomicUsize import;
    // line 3: the constructor. `Ordering` alone never matches (it is also
    // cmp::Ordering all over the codebase).
    assert_eq!(
        hits,
        vec![
            ("atomics".to_string(), 1),
            ("atomics".to_string(), 1),
            ("atomics".to_string(), 3)
        ]
    );
    let obs = FileCtx {
        path: "crates/sbr-obs/src/metrics.rs",
        crate_dir: "sbr-obs",
    };
    assert!(rules_hit(&obs, src).is_empty());
}

#[test]
fn cmp_ordering_is_not_an_atomic() {
    let src = "use std::cmp::Ordering;\nfn f(a: u32, b: u32) -> Ordering { a.cmp(&b) }\n";
    assert!(rules_hit(&non_zone(), src).is_empty());
}

#[test]
fn obs_gate_requires_cfg_feature_in_sbr_core() {
    let ungated = "pub fn hot() { sbr_obs::trace(\"x\"); }\n";
    assert_eq!(
        rules_hit(&zone(), ungated),
        vec![("obs-gate".to_string(), 1)]
    );

    let gated = "\
#[cfg(feature = \"obs\")]
pub fn hot() {
    sbr_obs::trace(\"x\");
}
";
    assert!(rules_hit(&zone(), gated).is_empty());

    // The facade module itself and other crates are exempt.
    let facade = FileCtx {
        path: "crates/sbr-core/src/obs.rs",
        crate_dir: "sbr-core",
    };
    assert!(rules_hit(&facade, ungated).is_empty());
    let sensor_net = FileCtx {
        path: "crates/sensor-net/src/node.rs",
        crate_dir: "sensor-net",
    };
    assert!(rules_hit(&sensor_net, ungated).is_empty());
}

#[test]
fn obs_gate_covers_timeline_shaped_uses() {
    // The frame-lifecycle timeline hooks follow the same contract as the
    // metric handles: `sbr_obs::Timeline` in a signature or body of
    // `sbr-core` must sit under `cfg(feature = "obs")`.
    let ungated_sig = "pub fn with_timeline(t: sbr_obs::Timeline) {}\n";
    assert_eq!(
        rules_hit(&zone(), ungated_sig),
        vec![("obs-gate".to_string(), 1)]
    );

    let gated_sig = "\
#[cfg(feature = \"obs\")]
pub fn with_timeline(mut self, timeline: sbr_obs::Timeline) -> Self {
    self.obs.set_timeline(timeline);
    self
}
";
    assert!(rules_hit(&zone(), gated_sig).is_empty());

    // An ungated use *after* a gated item is still flagged: the gate
    // covers exactly one item, not the rest of the file.
    let trailing = "\
#[cfg(feature = \"obs\")]
pub fn gated() { sbr_obs::Timeline::noop(); }
pub fn leaked() { sbr_obs::Timeline::noop(); }
";
    assert_eq!(
        rules_hit(&zone(), trailing),
        vec![("obs-gate".to_string(), 3)]
    );
}

#[test]
fn report_json_escapes_and_carries_both_lists() {
    let mut rep = repolint::Report::default();
    rep.files_scanned = 2;
    rep.findings.push(repolint::Finding {
        rule: "panic-free".into(),
        path: "crates/x/src/a.rs".into(),
        line: 7,
        message: "quote \" backslash \\ newline \n end".into(),
    });
    rep.suppressed.push(repolint::Suppressed {
        rule: "index".into(),
        path: "crates/x/src/b.rs".into(),
        line: 9,
        reason: "tab\there".into(),
    });
    let json = repolint::report::to_json(&rep);
    assert!(json.contains("\"schema\": \"repolint/v1\""));
    assert!(json.contains("\"files_scanned\": 2"));
    assert!(json.contains("quote \\\" backslash \\\\ newline \\n end"));
    assert!(json.contains("tab\\there"));
    assert!(json.contains("\"line\": 7"));
    assert!(json.contains("\"line\": 9"));
}
