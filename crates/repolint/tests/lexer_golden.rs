//! Golden tests for the repolint lexer: every fixture is lexed and the
//! full `line:kind:text` dump is compared verbatim, so any drift in
//! tokenization (kinds, contents, line accounting) fails loudly.

use repolint::lexer::{dump, lex};

fn golden(src: &str, expected: &str) {
    let got = dump(&lex(src));
    assert_eq!(
        got, expected,
        "lexer dump drifted for fixture:\n---\n{src}\n---"
    );
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    golden(
        "a /* one /* two */ still comment */ b\n/* unwrap() in a comment */ c\n",
        "1:ident:a\n1:ident:b\n2:ident:c\n",
    );
}

#[test]
fn raw_strings_with_hashes_do_not_end_early() {
    // The `"#` inside the body must not close an `r##`-delimited string,
    // and code-looking contents (`x.unwrap()`) must stay inside Str-kind
    // tokens rather than leaking identifiers.
    golden(
        r####"let s = r##"quote "# inside x.unwrap()"##; done"####,
        "1:ident:let\n1:ident:s\n1:punct:=\n1:rawstr:quote \"# inside x.unwrap()\n1:punct:;\n1:ident:done\n",
    );
}

#[test]
fn char_literals_holding_quote_and_slashes_are_chars() {
    // A '"' char must not open a string, and '/' '/' must not start a
    // line comment that swallows the rest of the line.
    golden(
        "if c == '\"' || c == '/' { slash() } '/'\n",
        "1:ident:if\n1:ident:c\n1:punct:==\n1:char:\"\n1:punct:||\n1:ident:c\n\
         1:punct:==\n1:char:/\n1:punct:{\n1:ident:slash\n1:punct:(\n1:punct:)\n\
         1:punct:}\n1:char:/\n",
    );
}

#[test]
fn byte_and_raw_byte_strings_lex_as_bytestr() {
    golden(
        "let a = b\"raw\\n\"; let b2 = br#\"has \"quote\"#;\n",
        "1:ident:let\n1:ident:a\n1:punct:=\n1:bytestr:raw\\n\n1:punct:;\n\
         1:ident:let\n1:ident:b2\n1:punct:=\n1:bytestr:has \"quote\n1:punct:;\n",
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    golden(
        "fn f<'a>(x: &'a str) -> &'static str { 'b' ; x }\n",
        "1:ident:fn\n1:ident:f\n1:punct:<\n1:lifetime:a\n1:punct:>\n1:punct:(\n\
         1:ident:x\n1:punct::\n1:punct:&\n1:lifetime:a\n1:ident:str\n1:punct:)\n\
         1:punct:->\n1:punct:&\n1:lifetime:static\n1:ident:str\n1:punct:{\n\
         1:char:b\n1:punct:;\n1:ident:x\n1:punct:}\n",
    );
}

#[test]
fn float_detection_covers_dot_exponent_and_suffix() {
    // `1.0`, `1e3`, `2f64` are floats; `3`, `0xFF` are ints; `a.0` is a
    // tuple-field access, `1..2` is a range — neither makes a float.
    golden(
        "1.0 1e3 2f64 3 0xFF a.0 1..2\n",
        "1:float:1.0\n1:float:1e3\n1:float:2f64\n1:int:3\n1:int:0xFF\n\
         1:ident:a\n1:punct:.\n1:int:0\n1:int:1\n1:punct:..\n1:int:2\n",
    );
}

#[test]
fn raw_identifiers_strip_the_prefix() {
    golden("r#match r#try\n", "1:ident:match\n1:ident:try\n");
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    golden(
        "a\n/* two\nlines */ b\nr#\"raw\nbody\"# c\n",
        "1:ident:a\n3:ident:b\n4:rawstr:raw\nbody\n5:ident:c\n",
    );
}

#[test]
fn allow_comments_parse_rule_and_reason() {
    let lexed = lex(
        "// lint:allow(index): bounded by the loop guard\nx[i] = 0;\n\
         // lint:allow(float-eq):\ny == 0.0;\n// not an allow\n",
    );
    assert_eq!(lexed.allows.len(), 2);
    assert_eq!(lexed.allows[0].rule, "index");
    assert_eq!(lexed.allows[0].reason, "bounded by the loop guard");
    assert_eq!(lexed.allows[0].line, 1);
    assert_eq!(lexed.allows[1].rule, "float-eq");
    assert_eq!(lexed.allows[1].reason, "");
    assert_eq!(lexed.allows[1].line, 3);
}

#[test]
fn strings_do_not_hide_or_invent_allows() {
    // An allow spelled inside a string literal is data, not a directive.
    let lexed = lex("let s = \"// lint:allow(index): nope\";\n");
    assert!(lexed.allows.is_empty());
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.text.contains("lint"))
            .count(),
        1
    );
}
