//! Self-tests for the cross-artifact rules: the real workspace must be
//! clean, and a seeded drift in any of the three wire-format sources
//! (codec, golden bytes, DESIGN.md table) must be caught. Mutated copies
//! live in a throwaway temp directory; the real tree is never touched.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/repolint has a workspace root two levels up")
        .to_path_buf()
}

/// Copy the three wire artifacts into a scratch root, applying `mutate`
/// to the file at `rel`.
fn scratch_wire_root(tag: &str, rel: &str, mutate: impl Fn(String) -> String) -> PathBuf {
    let root = repo_root();
    let dir = std::env::temp_dir().join(format!("repolint-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for file in [
        "crates/sbr-core/src/codec.rs",
        "tests/wire_compat.rs",
        "DESIGN.md",
    ] {
        let mut text = std::fs::read_to_string(root.join(file)).unwrap();
        if file == rel {
            let before = text.clone();
            text = mutate(text);
            assert_ne!(before, text, "mutation did not change {rel}");
        }
        let dst = dir.join(file);
        std::fs::create_dir_all(dst.parent().unwrap()).unwrap();
        std::fs::write(dst, text).unwrap();
    }
    dir
}

#[test]
fn the_real_workspace_has_no_wire_drift() {
    let findings = repolint::wire::check(&repo_root());
    assert!(findings.is_empty(), "unexpected drift: {findings:?}");
}

#[test]
fn the_real_workspace_passes_the_manifest_audit() {
    let findings = repolint::manifest::check(&repo_root());
    assert!(
        findings.is_empty(),
        "unexpected audit failures: {findings:?}"
    );
}

#[test]
fn full_lint_run_on_the_real_workspace_is_clean() {
    let report = repolint::run(&repo_root());
    assert!(
        report.findings.is_empty(),
        "workspace regressed: {:?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "walker lost the crates");
    // Every suppression in the tree carries a reason (reasonless ones
    // would have surfaced as bad-suppression findings above).
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn codec_magic_drift_is_caught() {
    let dir = scratch_wire_root("magic", "crates/sbr-core/src/codec.rs", |s| {
        s.replacen("0x5342_5232", "0x5342_5233", 1)
    });
    let findings = repolint::wire::check(&dir);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "wire-drift" && f.message.contains("v2 magic")),
        "changed MAGIC_V2 not caught: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn design_table_offset_drift_is_caught() {
    // Widen the epoch field in the documented layout: the running-sum
    // offsets after it no longer match, and the field-width check fires.
    let dir = scratch_wire_root("epoch", "DESIGN.md", |s| {
        s.replacen("| 5 | 4 | epoch", "| 5 | 8 | epoch", 1)
    });
    let findings = repolint::wire::check(&dir);
    assert!(
        findings
            .iter()
            .any(|f| f.path == "DESIGN.md" && f.message.contains("epoch")),
        "widened epoch field not caught: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_test_losing_the_header_size_is_caught() {
    // If the golden file stops pinning the 41-byte header the contract
    // is no longer enforced by tests — repolint must notice.
    let dir = scratch_wire_root("golden", "tests/wire_compat.rs", |s| {
        s.replace("41", "READACTED")
    });
    let findings = repolint::wire::check(&dir);
    assert!(
        findings
            .iter()
            .any(|f| f.path == "tests/wire_compat.rs" && f.message.contains("header size")),
        "unpinned header size not caught: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_lint_wall_fails_the_manifest_audit() {
    let dir = std::env::temp_dir().join(format!("repolint-wall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\nversion = \"0.0.0\"\n",
    )
    .unwrap();
    let findings = repolint::manifest::check(&dir);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("[workspace.lints]")),
        "missing wall not reported: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("[lints] workspace = true")),
        "missing inheritance not reported: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crate_opting_out_of_the_wall_is_caught() {
    // Clone the real root manifest + lock, then give the scratch root a
    // single crate whose manifest drops the `[lints]` inheritance.
    let root = repo_root();
    let dir = std::env::temp_dir().join(format!("repolint-optout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/rogue")).unwrap();
    for file in ["Cargo.toml", "Cargo.lock"] {
        std::fs::copy(root.join(file), dir.join(file)).unwrap();
    }
    std::fs::write(
        dir.join("crates/rogue/Cargo.toml"),
        "[package]\nname = \"sbr-core\"\nversion = \"0.0.0\"\n",
    )
    .unwrap();
    let findings = repolint::manifest::check(&dir);
    assert!(
        findings.iter().any(|f| {
            f.path == "crates/rogue/Cargo.toml" && f.message.contains("does not inherit")
        }),
        "opted-out crate not reported: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
