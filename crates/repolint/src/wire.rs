//! Wire-constant drift check: the v1/v2 frame constants live in three
//! places — `crates/sbr-core/src/codec.rs` (the implementation),
//! `tests/wire_compat.rs` (the golden bytes) and the layout table in
//! `DESIGN.md` §3b. They are a compatibility contract with deployed
//! fleets, so this rule parses all three and fails on any disagreement:
//! magics, the 41-byte v2 header, the kind/epoch field widths, the kind
//! byte values and the CRC-32 check value.
//!
//! The segmented storage format (`sensor-net::storage`, DESIGN.md §3d)
//! is the same kind of contract — stores on disk outlive any one build —
//! so its constants get the same treatment: the `SEG_*`/`CK_*` sizes and
//! magics are evaluated from the source (sum/product const expressions),
//! and both `tests/storage_compat.rs` (golden bytes) and the §3d prose
//! must pin the identical values.

use std::path::Path;

use crate::lexer::{lex, Tok, TokKind};
use crate::Finding;

const CODEC: &str = "crates/sbr-core/src/codec.rs";
const GOLDEN: &str = "tests/wire_compat.rs";
const DESIGN: &str = "DESIGN.md";
const STORAGE: &str = "crates/sensor-net/src/storage.rs";
const STORAGE_GOLDEN: &str = "tests/storage_compat.rs";

/// What the implementation claims the wire format is.
#[derive(Debug)]
struct CodecFacts {
    magic_v1: u64,
    magic_v2: u64,
    v2_header: u64,
    kind_data: u64,
    kind_resync: u64,
    crc_kat: bool,
}

fn fail(path: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: "wire-drift".into(),
        path: path.into(),
        line,
        message,
        call_path: Vec::new(),
    }
}

/// Parse `0x5342_5231` / `41` (ignoring `_` and type suffixes) to a u64.
fn num(text: &str) -> Option<u64> {
    let t: String = text
        .chars()
        .filter(|c| *c != '_')
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect();
    if let Some(hex) = t.strip_prefix("0x") {
        let hex: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        u64::from_str_radix(&hex, 16).ok()
    } else {
        let dec: String = t.chars().take_while(char::is_ascii_digit).collect();
        dec.parse().ok()
    }
}

/// Evaluate `const NAME: … = <literal sum-of-products> ;` from a token
/// stream — covers the `4 + 2 + 4 + 8 + 4` (header sizes) and
/// `64 * 1024` (budgets) spellings the format constants use.
fn const_in(toks: &[Tok], name: &str) -> Option<u64> {
    let ident = |i: usize, n: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == n)
    };
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    };
    for i in 0..toks.len() {
        if !(ident(i, name) && punct(i + 1, ":")) {
            continue;
        }
        let eq = (i..toks.len().min(i + 8)).find(|&j| punct(j, "="))?;
        let (mut total, mut product): (u64, Option<u64>) = (0, None);
        for t in &toks[eq + 1..] {
            match &t.kind {
                TokKind::Num { .. } => {
                    let v = num(&t.text)?;
                    product = Some(product.map_or(v, |p| p * v));
                }
                TokKind::Punct if t.text == "+" => {
                    total += product.take()?;
                }
                TokKind::Punct if t.text == "*" => {}
                TokKind::Punct if t.text == ";" => {
                    return Some(total + product.unwrap_or(0));
                }
                _ => return None,
            }
        }
        return None;
    }
    None
}

/// Extract the wire facts out of codec.rs via its token stream.
fn codec_facts(src: &str, out: &mut Vec<Finding>) -> Option<CodecFacts> {
    let toks = lex(src).tokens;
    let ident = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    };
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    };

    // `const NAME … = <num or sum-of-products expr> ;`
    let const_val = |name: &str| const_in(&toks, name);

    // `FrameKind::Data => <n>` inside encode_v2's match.
    let kind_byte = |variant: &str| -> Option<u64> {
        for i in 0..toks.len() {
            if ident(i, "FrameKind")
                && punct(i + 1, "::")
                && ident(i + 2, variant)
                && punct(i + 3, "=>")
            {
                if let Some(t) = toks.get(i + 4) {
                    if matches!(t.kind, TokKind::Num { .. }) {
                        return num(&t.text);
                    }
                }
            }
        }
        None
    };

    let mut get = |name: &str| match const_val(name) {
        Some(v) => Some(v),
        None => {
            out.push(fail(CODEC, 1, format!("cannot parse const {name}")));
            None
        }
    };
    let magic_v1 = get("MAGIC")?;
    let magic_v2 = get("MAGIC_V2")?;
    let v2_header = get("V2_HEADER")?;
    let kinds = kind_byte("Data").zip(kind_byte("Resync"));
    let Some((kind_data, kind_resync)) = kinds else {
        out.push(fail(CODEC, 1, "cannot parse FrameKind byte values".into()));
        return None;
    };
    Some(CodecFacts {
        magic_v1,
        magic_v2,
        v2_header,
        kind_data,
        kind_resync,
        crc_kat: src_has_value(src, 0xCBF4_3926),
    })
}

/// Whether any numeric literal in `src` equals `value`.
fn src_has_value(src: &str, value: u64) -> bool {
    lex(src)
        .tokens
        .iter()
        .any(|t| matches!(t.kind, TokKind::Num { .. }) && num(&t.text) == Some(value))
}

/// Cross-check the golden test file against the implementation.
fn check_golden(src: &str, facts: &CodecFacts, out: &mut Vec<Finding>) {
    for (what, value) in [
        ("v1 magic", facts.magic_v1),
        ("v2 magic", facts.magic_v2),
        ("v2 header size", facts.v2_header),
    ] {
        if !src_has_value(src, value) {
            out.push(fail(
                GOLDEN,
                1,
                format!("golden bytes never pin the {what} ({value:#x}) that codec.rs defines"),
            ));
        }
    }
    if !src_has_value(src, 0xCBF4_3926) {
        out.push(fail(
            GOLDEN,
            1,
            "CRC-32 check value 0xCBF4_3926 not pinned".into(),
        ));
    }
}

/// Cross-check the DESIGN.md §3b layout table.
fn check_design(text: &str, facts: &CodecFacts, out: &mut Vec<Finding>) {
    if !facts.crc_kat {
        out.push(fail(
            CODEC,
            1,
            "CRC-32 check value 0xCBF4_3926 missing".into(),
        ));
    }
    let magic_hex = format!("{:#06x}", facts.magic_v2); // 0x5342…
    let spelled = format!("0x5342_{:04x}", facts.magic_v2 & 0xFFFF);
    if !text.contains(&spelled) && !text.contains(&magic_hex) {
        out.push(fail(
            DESIGN,
            1,
            format!("v2 magic {spelled} never appears in the §3b layout table"),
        ));
    }

    // Walk the layout table: offsets must be the running sum of the sizes,
    // and the first variable-size row must start exactly at V2_HEADER.
    let mut cum: u64 = 0;
    let mut rows = 0u32;
    let mut header_checked = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let Some(offset) = num(cells[0]) else {
            if rows > 0 {
                break; // past the fixed-offset prefix (`…`, `end−4` rows)
            }
            continue; // header / separator rows
        };
        // Only the v2 table starts at `| 0 | 4 | magic`.
        if rows == 0 && !(offset == 0 && cells[2].contains("magic")) {
            continue;
        }
        if offset != cum {
            out.push(fail(
                DESIGN,
                lineno,
                format!(
                    "layout table row '{}' is at offset {offset}, but the preceding sizes sum to {cum}",
                    cells[2]
                ),
            ));
            return;
        }
        let field = cells[2];
        match num(cells[1]) {
            Some(size) => {
                if field.contains("kind") && size != 1 {
                    out.push(fail(
                        DESIGN,
                        lineno,
                        format!("kind field is {size} bytes, codec writes 1"),
                    ));
                }
                if field.contains("epoch") && size != 4 {
                    out.push(fail(
                        DESIGN,
                        lineno,
                        format!("epoch field is {size} bytes, codec writes 4 (u32)"),
                    ));
                }
                let plain = line.replace('`', "");
                if field.contains("kind")
                    && !(plain.contains(&format!("{} = Data", facts.kind_data))
                        && plain.contains(&format!("{} = Resync", facts.kind_resync)))
                {
                    out.push(fail(
                        DESIGN,
                        lineno,
                        format!(
                            "kind byte values drifted: codec writes {} = Data, {} = Resync",
                            facts.kind_data, facts.kind_resync
                        ),
                    ));
                }
                cum += size;
                rows += 1;
            }
            None => {
                // First variable-size row: the fixed header ends here.
                if cum != facts.v2_header {
                    out.push(fail(
                        DESIGN,
                        lineno,
                        format!(
                            "fixed header in the table is {cum} bytes, codec's V2_HEADER is {}",
                            facts.v2_header
                        ),
                    ));
                }
                header_checked = true;
                break;
            }
        }
    }
    if rows == 0 {
        out.push(fail(DESIGN, 1, "v2 layout table (§3b) not found".into()));
    } else if !header_checked {
        out.push(fail(
            DESIGN,
            1,
            "v2 layout table has no variable-size rows — cannot locate the header boundary".into(),
        ));
    }
    let header_formula = format!("encoded_len_v2 = {}", facts.v2_header);
    if !text.contains(&header_formula) {
        out.push(fail(
            DESIGN,
            1,
            format!("size formula `{header_formula} + …` missing or drifted"),
        ));
    }
    if !text.contains("0xCBF43926") && !text.contains("0xCBF4_3926") {
        out.push(fail(
            DESIGN,
            1,
            "CRC-32 check value 0xCBF43926 not documented".into(),
        ));
    }
}

/// What the storage engine claims the on-disk format is (all the
/// `pub const` values the §3d contract is built from).
#[derive(Debug)]
struct StorageFacts {
    seg_magic: u64,
    seg_version: u64,
    seg_header: u64,
    record_overhead: u64,
    seg_footer_magic: u64,
    seg_footer: u64,
    ck_magic: u64,
    ck_version: u64,
    ck_header: u64,
    ck_index_entry: u64,
    default_segment_bytes: u64,
}

/// Evaluate the storage format constants out of storage.rs.
fn storage_facts(src: &str, out: &mut Vec<Finding>) -> Option<StorageFacts> {
    let toks = lex(src).tokens;
    let mut get = |name: &str| match const_in(&toks, name) {
        Some(v) => Some(v),
        None => {
            out.push(fail(STORAGE, 1, format!("cannot parse const {name}")));
            None
        }
    };
    Some(StorageFacts {
        seg_magic: get("SEG_MAGIC")?,
        seg_version: get("SEG_VERSION")?,
        seg_header: get("SEG_HEADER")?,
        record_overhead: get("RECORD_OVERHEAD")?,
        seg_footer_magic: get("SEG_FOOTER_MAGIC")?,
        seg_footer: get("SEG_FOOTER")?,
        ck_magic: get("CK_MAGIC")?,
        ck_version: get("CK_VERSION")?,
        ck_header: get("CK_HEADER")?,
        ck_index_entry: get("CK_INDEX_ENTRY")?,
        default_segment_bytes: get("DEFAULT_SEGMENT_BYTES")?,
    })
}

/// The golden test must pin every storage format value by literal — a
/// constant change that only touches storage.rs (so the test would keep
/// passing by re-deriving) is exactly the silent drift this rule exists
/// to catch.
fn check_storage_golden(src: &str, facts: &StorageFacts, out: &mut Vec<Finding>) {
    for (what, value) in [
        ("segment magic", facts.seg_magic),
        ("segment version", facts.seg_version),
        ("segment header size", facts.seg_header),
        ("record framing overhead", facts.record_overhead),
        ("segment footer magic", facts.seg_footer_magic),
        ("segment footer size", facts.seg_footer),
        ("checkpoint magic", facts.ck_magic),
        ("checkpoint version", facts.ck_version),
        ("checkpoint header size", facts.ck_header),
        ("checkpoint index entry size", facts.ck_index_entry),
        ("default segment budget", facts.default_segment_bytes),
    ] {
        if !src_has_value(src, value) {
            out.push(fail(
                STORAGE_GOLDEN,
                1,
                format!("golden bytes never pin the {what} ({value:#x}) that storage.rs defines"),
            ));
        }
    }
    if !src_has_value(src, 0xCBF4_3926) {
        out.push(fail(
            STORAGE_GOLDEN,
            1,
            "CRC-32 check value 0xCBF4_3926 not pinned".into(),
        ));
    }
}

fn spell_magic(v: u64) -> String {
    format!("0x{:04X}_{:04X}", v >> 16, v & 0xFFFF)
}

/// Cross-check the DESIGN.md §3d storage-format section by value
/// presence: the spelled magics, the byte totals, and the default
/// budget must all appear with the numbers storage.rs actually uses.
fn check_storage_design(text: &str, facts: &StorageFacts, out: &mut Vec<Finding>) {
    let Some(at) = text.find("## 3d.") else {
        out.push(fail(
            DESIGN,
            1,
            "storage format section (§3d) not found".into(),
        ));
        return;
    };
    let section = match text[at..].find("\n## ") {
        Some(end) => &text[at..at + end],
        None => &text[at..],
    };
    let checks = [
        ("segment magic", spell_magic(facts.seg_magic)),
        ("footer magic", spell_magic(facts.seg_footer_magic)),
        ("checkpoint magic", spell_magic(facts.ck_magic)),
        (
            "segment header total",
            format!("header total: {}", facts.seg_header),
        ),
        (
            "segment footer total",
            format!("footer total: {}", facts.seg_footer),
        ),
        (
            "checkpoint header size",
            format!("fixed {}-byte header", facts.ck_header),
        ),
        (
            "checkpoint index entry size",
            format!("{}-byte index entry", facts.ck_index_entry),
        ),
        (
            "record framing overhead",
            format!("{} bytes of framing per record", facts.record_overhead),
        ),
        (
            "default segment budget",
            format!("default {} bytes", facts.default_segment_bytes),
        ),
    ];
    for (what, needle) in checks {
        if !section.contains(&needle) {
            out.push(fail(
                DESIGN,
                1,
                format!("§3d never pins the {what} (`{needle}`) that storage.rs defines"),
            ));
        }
    }
    if facts.seg_version != 1 || facts.ck_version != 1 {
        out.push(fail(
            STORAGE,
            1,
            format!(
                "storage format version bumped (segment {} / checkpoint {}): update §3d and \
                 the golden tests, then this rule",
                facts.seg_version, facts.ck_version
            ),
        ));
    }
}

/// Run the whole drift check against a workspace root.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let read = |rel: &str, out: &mut Vec<Finding>| -> Option<String> {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => Some(s),
            Err(e) => {
                out.push(fail(rel, 0, format!("cannot read: {e}")));
                None
            }
        }
    };
    let Some(codec) = read(CODEC, &mut out) else {
        return out;
    };
    let Some(facts) = codec_facts(&codec, &mut out) else {
        return out;
    };
    if let Some(golden) = read(GOLDEN, &mut out) {
        check_golden(&golden, &facts, &mut out);
    }
    let design = read(DESIGN, &mut out);
    if let Some(design) = &design {
        check_design(design, &facts, &mut out);
    }
    if let Some(storage) = read(STORAGE, &mut out) {
        if let Some(sfacts) = storage_facts(&storage, &mut out) {
            if let Some(golden) = read(STORAGE_GOLDEN, &mut out) {
                check_storage_golden(&golden, &sfacts, &mut out);
            }
            if let Some(design) = &design {
                check_storage_design(design, &sfacts, &mut out);
            }
        }
    }
    out
}
