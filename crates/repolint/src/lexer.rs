//! A small, exact Rust lexer: enough surface syntax to walk real source
//! without misparsing the cases that break naive scanners — nested block
//! comments, raw strings with hashes, char literals holding `"` or `//`,
//! byte and raw-byte strings, lifetimes vs chars.
//!
//! The rules engine works on this token stream; comments are not tokens
//! but are scanned for `// lint:allow(<rule>): <reason>` suppressions.

/// Kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also raw identifiers, prefix stripped).
    Ident,
    /// Numeric literal; `float` is true for floating-point literals.
    Num {
        /// Whether the literal is floating-point (`1.0`, `1e3`, `2f64`).
        float: bool,
    },
    /// String literal (`"…"`); text holds the raw (unescaped) contents.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`).
    RawStr,
    /// Byte or raw-byte string (`b"…"`, `br#"…"#`).
    ByteStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, maximal munch (`==`, `::`, `..=`, `[`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text: identifier name, number spelling, string *contents*
    /// (without quotes/prefix), or punctuation characters.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// An inline suppression: `// lint:allow(rule): reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon (may be empty — that is itself
    /// reported by the engine).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Full lex result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The significant tokens in order.
    pub tokens: Vec<Tok>,
    /// Inline suppression comments found anywhere in the file.
    pub allows: Vec<Allow>,
    /// Number of lines in the file.
    pub lines: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && f(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Parse `lint:allow(rule): reason` out of a comment body.
fn parse_allow(body: &str, line: u32) -> Option<Allow> {
    let rest = body.trim_start().strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start()
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Allow { rule, reason, line })
}

/// Lex one Rust source file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while cur.pos < cur.src.len() {
        let line = cur.line;
        let c = cur.peek(0);

        // Whitespace.
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }

        // Line comment (also doc comments). May carry a suppression.
        if c == b'/' && cur.peek(1) == b'/' {
            let body = cur.eat_while(|c| c != b'\n');
            let body = body.trim_start_matches('/').trim_start_matches('!');
            if let Some(a) = parse_allow(body, line) {
                out.allows.push(a);
            }
            continue;
        }

        // Block comment, nested. Suppressions inside are honoured too.
        if c == b'/' && cur.peek(1) == b'*' {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let start = cur.pos;
            while cur.pos < cur.src.len() && depth > 0 {
                if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                } else {
                    cur.bump();
                }
            }
            let end = cur.pos.saturating_sub(2).max(start);
            let body = String::from_utf8_lossy(&cur.src[start..end]);
            if let Some(a) = parse_allow(&body, line) {
                out.allows.push(a);
            }
            continue;
        }

        // Identifiers, keywords, and literal prefixes (r"", b"", br"", b'').
        if is_ident_start(c) {
            let ident = cur.eat_while(is_ident_cont);
            match ident.as_str() {
                "r" | "br" | "b" if cur.peek(0) == b'"' || cur.peek(0) == b'#' => {
                    let raw = ident != "b";
                    if raw {
                        let hashes = cur.eat_while(|c| c == b'#').len();
                        if cur.peek(0) != b'"' {
                            // `r#ident` — a raw identifier, hashes consumed.
                            let name = cur.eat_while(is_ident_cont);
                            out.tokens.push(Tok {
                                kind: TokKind::Ident,
                                text: name,
                                line,
                            });
                            continue;
                        }
                        cur.bump(); // opening quote
                        let text = raw_str_body(&mut cur, hashes);
                        out.tokens.push(Tok {
                            kind: if ident == "br" {
                                TokKind::ByteStr
                            } else {
                                TokKind::RawStr
                            },
                            text,
                            line,
                        });
                    } else {
                        // `b"…"` (c == '"' here; `b#` is not valid Rust).
                        cur.bump();
                        let text = escaped_str_body(&mut cur, b'"');
                        out.tokens.push(Tok {
                            kind: TokKind::ByteStr,
                            text,
                            line,
                        });
                    }
                }
                "b" if cur.peek(0) == b'\'' => {
                    cur.bump();
                    let text = escaped_str_body(&mut cur, b'\'');
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                    });
                }
                _ => out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line,
                }),
            }
            continue;
        }

        // Plain string literal.
        if c == b'"' {
            cur.bump();
            let text = escaped_str_body(&mut cur, b'"');
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            cur.bump();
            let next = cur.peek(0);
            if next == b'\\' {
                let text = escaped_str_body(&mut cur, b'\'');
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
            } else if is_ident_start(next) && cur.peek(1) != b'\'' {
                let name = cur.eat_while(is_ident_cont);
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                });
            } else {
                let text = escaped_str_body(&mut cur, b'\'');
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let tok = lex_number(&mut cur, line);
            out.tokens.push(tok);
            continue;
        }

        // Punctuation, maximal munch.
        let three = &cur.src[cur.pos..(cur.pos + 3).min(cur.src.len())];
        let two = &three[..three.len().min(2)];
        const THREE: &[&[u8]] = &[b"..=", b"...", b"<<=", b">>="];
        const TWO: &[&[u8]] = &[
            b"==", b"!=", b"<=", b">=", b"&&", b"||", b"::", b"..", b"->", b"=>", b"+=", b"-=",
            b"*=", b"/=", b"^=", b"|=", b"&=", b"%=", b"<<", b">>",
        ];
        let text = if THREE.contains(&three) {
            (0..3).for_each(|_| {
                cur.bump();
            });
            String::from_utf8_lossy(three).into_owned()
        } else if TWO.contains(&two) {
            (0..2).for_each(|_| {
                cur.bump();
            });
            String::from_utf8_lossy(two).into_owned()
        } else {
            (cur.bump() as char).to_string()
        };
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text,
            line,
        });
    }

    out.lines = cur.line;
    out
}

/// Body of a raw (byte) string after the opening quote: runs to a `"`
/// followed by `hashes` `#` characters. No escapes.
fn raw_str_body(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let start = cur.pos;
    loop {
        if cur.pos >= cur.src.len() {
            return String::from_utf8_lossy(&cur.src[start..]).into_owned();
        }
        if cur.peek(0) == b'"' {
            let all = (0..hashes).all(|i| cur.peek(1 + i) == b'#');
            if all {
                let body = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                return body;
            }
        }
        cur.bump();
    }
}

/// Body of an escaped string/char after the opening quote, up to the
/// unescaped `close` quote. Returns the raw contents, escapes included.
fn escaped_str_body(cur: &mut Cursor<'_>, close: u8) -> String {
    let start = cur.pos;
    loop {
        if cur.pos >= cur.src.len() {
            return String::from_utf8_lossy(&cur.src[start..]).into_owned();
        }
        let c = cur.peek(0);
        if c == b'\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if c == close {
            let body = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
            cur.bump();
            return body;
        }
        cur.bump();
    }
}

fn lex_number(cur: &mut Cursor<'_>, line: u32) -> Tok {
    let start = cur.pos;
    let mut float = false;
    if cur.peek(0) == b'0' && matches!(cur.peek(1), b'x' | b'o' | b'b') {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        // A `.` continues the number only when it is not `..` (range) and
        // not a method call on the literal (`1.max(2)`).
        if cur.peek(0) == b'.' && cur.peek(1) != b'.' && !is_ident_start(cur.peek(1)) {
            float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
        if matches!(cur.peek(0), b'e' | b'E')
            && (cur.peek(1).is_ascii_digit()
                || (matches!(cur.peek(1), b'+' | b'-') && cur.peek(2).is_ascii_digit()))
        {
            float = true;
            cur.bump();
            if matches!(cur.peek(0), b'+' | b'-') {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
        // Type suffix (`1f64`, `2u32`).
        let suffix = cur.eat_while(is_ident_cont);
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
    }
    Tok {
        kind: TokKind::Num { float },
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        line,
    }
}

/// Compact one-line-per-token dump used by the golden lexer tests.
pub fn dump(lexed: &Lexed) -> String {
    let mut out = String::new();
    for t in &lexed.tokens {
        let kind = match &t.kind {
            TokKind::Ident => "ident",
            TokKind::Num { float: true } => "float",
            TokKind::Num { float: false } => "int",
            TokKind::Str => "str",
            TokKind::RawStr => "rawstr",
            TokKind::ByteStr => "bytestr",
            TokKind::Char => "char",
            TokKind::Lifetime => "lifetime",
            TokKind::Punct => "punct",
        };
        out.push_str(&format!("{}:{kind}:{}\n", t.line, t.text));
    }
    out
}
