//! Manifest audit: the offline-build contract and the lint wall.
//!
//! * Every package in `Cargo.lock` is either a workspace member or has a
//!   vendored source under `vendor/` (the build must never want the
//!   network), and every vendored crate is actually in the lock (no dead
//!   vendor dirs).
//! * The root `Cargo.toml` declares a `[workspace.lints]` wall and every
//!   crate under `crates/` inherits it (`[lints] workspace = true`), so
//!   deny-level hygiene is uniform — no crate quietly opts out.

use std::collections::BTreeSet;
use std::path::Path;

use crate::Finding;

fn fail(path: String, message: String) -> Finding {
    Finding {
        rule: "manifest".into(),
        path,
        line: 0,
        message,
        call_path: Vec::new(),
    }
}

/// First `name = "…"` value in a manifest (the `[package]` name).
fn package_name(toml: &str) -> Option<String> {
    toml.lines().find_map(|l| {
        l.trim()
            .strip_prefix("name")?
            .trim_start()
            .strip_prefix('=')?
            .trim()
            .strip_prefix('"')?
            .split('"')
            .next()
            .map(str::to_string)
    })
}

/// Whether a manifest contains a `[lints]` table with `workspace = true`.
fn inherits_lints(toml: &str) -> bool {
    let mut in_lints = false;
    for line in toml.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
        } else if in_lints && t.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

/// Run the manifest audit against a workspace root.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).unwrap_or_default();

    let root_toml = read("Cargo.toml");
    if root_toml.is_empty() {
        out.push(fail(
            "Cargo.toml".into(),
            "cannot read workspace manifest".into(),
        ));
        return out;
    }
    if !root_toml.contains("[workspace.lints") {
        out.push(fail(
            "Cargo.toml".into(),
            "no [workspace.lints] wall — crate-level lint levels drift apart".into(),
        ));
    }
    if !inherits_lints(&root_toml) {
        out.push(fail(
            "Cargo.toml".into(),
            "root package does not inherit the wall ([lints] workspace = true)".into(),
        ));
    }

    // Workspace member names, from crates/*/Cargo.toml plus the root.
    let mut members: BTreeSet<String> = package_name(&root_toml).into_iter().collect();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let manifest = entry.path().join("Cargo.toml");
            let rel = format!("crates/{}/Cargo.toml", entry.file_name().to_string_lossy());
            let Ok(toml) = std::fs::read_to_string(&manifest) else {
                continue;
            };
            match package_name(&toml) {
                Some(name) => {
                    members.insert(name);
                }
                None => out.push(fail(rel.clone(), "no package name".into())),
            }
            if !inherits_lints(&toml) {
                out.push(fail(
                    rel,
                    "crate does not inherit the lint wall ([lints] workspace = true)".into(),
                ));
            }
        }
    } else {
        out.push(fail("crates".into(), "cannot list crates/".into()));
    }

    // Vendored crates actually present on disk.
    let mut vendored: BTreeSet<String> = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(root.join("vendor")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                vendored.insert(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }

    // Every locked package resolves offline; every vendor dir is live.
    let lock = read("Cargo.lock");
    if lock.is_empty() {
        out.push(fail(
            "Cargo.lock".into(),
            "missing or unreadable lockfile".into(),
        ));
        return out;
    }
    let mut locked: BTreeSet<String> = BTreeSet::new();
    for package in lock.split("[[package]]").skip(1) {
        if let Some(name) = package_name(package) {
            locked.insert(name);
        }
    }
    for name in &locked {
        if !members.contains(name) && !vendored.contains(name) {
            out.push(fail(
                "Cargo.lock".into(),
                format!("locked package '{name}' is neither a workspace member nor vendored — offline builds would need the network"),
            ));
        }
    }
    for name in &vendored {
        if !locked.contains(name) {
            out.push(fail(
                format!("vendor/{name}"),
                "vendored crate absent from Cargo.lock — dead code or a missing dependency edge"
                    .into(),
            ));
        }
    }
    out
}
