//! `repolint` — workspace-native static analysis for the SBR repo.
//!
//! A std-only pass that lexes the workspace's Rust sources (comment,
//! string, raw-string and char-literal aware — no `syn`, consistent with
//! the vendored-deps policy) and enforces the invariants the test suite
//! cannot see per-commit:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `panic-free` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in the decode/network-facing zones |
//! | `index` | no unguarded slice/array subscripts in those zones |
//! | `panic-reachability` | zone fns must not *transitively* reach a panicking sink through the workspace call graph (reported with the call path) |
//! | `cast-truncation` | `as u32/u64/usize` narrowing of length/offset-like values in the wire zones — `try_from` + `SbrError::Corrupt` instead |
//! | `determinism` | hash-container iteration that can leak order into output; wall-clock reads outside `sbr-obs`/`bench` |
//! | `lock-discipline` | Mutex guards in `sbr-obs::timeline`/`sensor-net` not held across recorder re-entry |
//! | `float-eq` | no `==`/`!=` against float literals outside tests |
//! | `atomics` | raw atomics confined to `sbr-obs` (facade elsewhere) |
//! | `obs-gate` | `sbr_obs::` paths in `sbr-core` sit behind `cfg(feature = "obs")` |
//! | `wire-drift` | codec constants == golden bytes == DESIGN.md §3b table |
//! | `manifest` | every locked package vendored or local; uniform `[lints]` wall |
//! | `bad-suppression` | every `lint:allow` carries a reason |
//!
//! Inline escape hatch: `// lint:allow(<rule>): <reason>` on the
//! offending line or the line above. Findings are emitted human-readable
//! plus as `LINT_REPORT.json` (schema `repolint/v2`); the process exits
//! non-zero when any finding survives.

use std::path::{Path, PathBuf};

pub mod items;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod wire;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`panic-free`, `index`, …).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// For `panic-reachability`: the zone→sink call chain, each element
    /// `name@path:line`. Empty for single-site findings.
    pub call_path: Vec<String>,
}

/// The coarse family a rule belongs to (`repolint/v2` report field).
pub fn rule_family(rule: &str) -> &'static str {
    match rule {
        "panic-free" | "index" | "panic-reachability" => "panic",
        "cast-truncation" => "cast",
        "determinism" => "determinism",
        "lock-discipline" => "lock",
        "float-eq" => "float",
        "atomics" | "obs-gate" => "confinement",
        "wire-drift" => "wire",
        "manifest" => "manifest",
        "bad-suppression" => "hygiene",
        _ => "other",
    }
}

/// A finding silenced by a reasoned `lint:allow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The justification the suppression carried.
    pub reason: String,
}

/// Outcome of a full lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Reasoned suppressions that fired.
    pub suppressed: Vec<Suppressed>,
    /// Rust source files scanned by the token rules.
    pub files_scanned: usize,
}

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lex one source file, run the token rules, and collect its fn items
/// for the call-graph pass. Shared by [`run`] and [`run_sources`].
fn scan_file(rel: &str, crate_name: &str, src: &str, rep: &mut Report) -> items::FileItems {
    let ctx = rules::FileCtx {
        path: rel,
        crate_dir: crate_name,
    };
    // One lex per file, shared between the token rules and the
    // item/call-graph pass.
    let lexed = lexer::lex(src);
    let regions = rules::find_regions(&lexed.tokens);
    let scan = rules::scan_lexed(&ctx, &lexed, &regions);
    rep.findings.extend(scan.findings);
    rep.suppressed.extend(scan.suppressed);
    let fns = items::collect(&ctx, &lexed, &regions.test, &mut rep.suppressed);
    rep.files_scanned += 1;
    items::FileItems {
        path: rel.to_string(),
        fns,
        allows: lexed.allows,
    }
}

/// Sort findings/suppressions, then dedupe by (rule, path, line): two
/// detectors hitting the same site (or one allow silencing two same-line
/// findings) must not double-report.
fn finish(rep: &mut Report) {
    rep.findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    rep.findings
        .dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    rep.suppressed
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    rep.suppressed
        .dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
}

/// Run the token rules and the cross-file call-graph pass over in-memory
/// sources — `(workspace-relative path, source)` pairs. No filesystem,
/// wire, or manifest checks; this is the golden-fixture entry point the
/// linter's own tests drive the call-graph analysis through.
pub fn run_sources(files: &[(&str, &str)]) -> Report {
    let mut rep = Report::default();
    let mut graph_files: Vec<items::FileItems> = Vec::new();
    for (rel, src) in files {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or_default();
        graph_files.push(scan_file(rel, crate_name, src, &mut rep));
    }
    items::reachability(&graph_files, &mut rep.findings, &mut rep.suppressed);
    finish(&mut rep);
    rep
}

/// Run every rule against the workspace at `root`.
pub fn run(root: &Path) -> Report {
    let mut rep = Report::default();

    // Token rules over every crate's production sources (src/ only — unit
    // test modules are excluded by region, integration tests by path).
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    let mut graph_files: Vec<items::FileItems> = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        rust_files(&crate_dir.join("src"), &mut files);
        for file in files {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            graph_files.push(scan_file(&rel, &crate_name, &src, &mut rep));
        }
    }

    // Cross-file pass: the panic-reachability call-graph walk.
    items::reachability(&graph_files, &mut rep.findings, &mut rep.suppressed);

    // Cross-artifact rules.
    rep.findings.extend(wire::check(root));
    rep.findings.extend(manifest::check(root));

    finish(&mut rep);
    rep
}
