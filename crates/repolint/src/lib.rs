//! `repolint` — workspace-native static analysis for the SBR repo.
//!
//! A std-only pass that lexes the workspace's Rust sources (comment,
//! string, raw-string and char-literal aware — no `syn`, consistent with
//! the vendored-deps policy) and enforces the invariants the test suite
//! cannot see per-commit:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `panic-free` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in the decode/network-facing zones |
//! | `index` | no unguarded slice/array subscripts in those zones |
//! | `float-eq` | no `==`/`!=` against float literals outside tests |
//! | `atomics` | raw atomics confined to `sbr-obs` (facade elsewhere) |
//! | `obs-gate` | `sbr_obs::` paths in `sbr-core` sit behind `cfg(feature = "obs")` |
//! | `wire-drift` | codec constants == golden bytes == DESIGN.md §3b table |
//! | `manifest` | every locked package vendored or local; uniform `[lints]` wall |
//! | `bad-suppression` | every `lint:allow` carries a reason |
//!
//! Inline escape hatch: `// lint:allow(<rule>): <reason>` on the
//! offending line or the line above. Findings are emitted human-readable
//! plus as `LINT_REPORT.json` (schema `repolint/v1`); the process exits
//! non-zero when any finding survives.

use std::path::{Path, PathBuf};

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod wire;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`panic-free`, `index`, …).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A finding silenced by a reasoned `lint:allow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The justification the suppression carried.
    pub reason: String,
}

/// Outcome of a full lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Reasoned suppressions that fired.
    pub suppressed: Vec<Suppressed>,
    /// Rust source files scanned by the token rules.
    pub files_scanned: usize,
}

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run every rule against the workspace at `root`.
pub fn run(root: &Path) -> Report {
    let mut rep = Report::default();

    // Token rules over every crate's production sources (src/ only — unit
    // test modules are excluded by region, integration tests by path).
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        rust_files(&crate_dir.join("src"), &mut files);
        for file in files {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let ctx = rules::FileCtx {
                path: &rel,
                crate_dir: &crate_name,
            };
            let scan = rules::scan_source(&ctx, &src);
            rep.findings.extend(scan.findings);
            rep.suppressed.extend(scan.suppressed);
            rep.files_scanned += 1;
        }
    }

    // Cross-artifact rules.
    rep.findings.extend(wire::check(root));
    rep.findings.extend(manifest::check(root));

    rep.findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    rep
}
