//! `LINT_REPORT.json` emission — hand-rolled JSON (the linter is
//! dependency-free), schema `repolint/v1`:
//!
//! ```text
//! {
//!   "schema": "repolint/v1",
//!   "files_scanned": <int>,
//!   "findings": [ {"rule", "path", "line", "message"}, … ],
//!   "suppressed": [ {"rule", "path", "line", "reason"}, … ]
//! }
//! ```

use crate::Report;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report as the stable `repolint/v1` JSON document.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"repolint/v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(&f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    s.push_str("\n  ],\n  \"suppressed\": [");
    for (i, a) in report.suppressed.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            esc(&a.rule),
            esc(&a.path),
            a.line,
            esc(&a.reason)
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}
