//! `LINT_REPORT.json` emission — hand-rolled JSON (the linter is
//! dependency-free), schema `repolint/v2`:
//!
//! ```text
//! {
//!   "schema": "repolint/v2",
//!   "files_scanned": <int>,
//!   "findings": [ {"rule", "rule_family", "path", "line", "message",
//!                  "call_path"?}, … ],
//!   "suppressed": [ {"rule", "path", "line", "reason"}, … ]
//! }
//! ```
//!
//! v2 is additive over v1: findings gain `rule_family` (always) and
//! `call_path` (panic-reachability only — the zone→sink chain as
//! `name@path:line` strings), so v1 readers still parse the document.
//! Findings and suppressions are deduplicated by (rule, path, line)
//! upstream in [`crate::run`].

use crate::{rule_family, Report};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report as the stable `repolint/v2` JSON document.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"repolint/v2\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"rule_family\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            esc(&f.rule),
            esc(rule_family(&f.rule)),
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
        if !f.call_path.is_empty() {
            let hops: Vec<String> = f
                .call_path
                .iter()
                .map(|h| format!("\"{}\"", esc(h)))
                .collect();
            s.push_str(&format!(", \"call_path\": [{}]", hops.join(", ")));
        }
        s.push('}');
    }
    s.push_str("\n  ],\n  \"suppressed\": [");
    for (i, a) in report.suppressed.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            esc(&a.rule),
            esc(&a.path),
            a.line,
            esc(&a.reason)
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}
