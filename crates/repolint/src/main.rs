//! CLI entry point: `cargo run -p repolint --offline [-- --root <dir>]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
repolint — workspace-native static analysis

USAGE:
  repolint [--root <dir>] [--json <path>] [--quiet]

  --root <dir>    workspace root to lint (default: .)
  --json <path>   where to write the repolint/v2 report
                  (default: <root>/LINT_REPORT.json)
  --quiet         suppress per-finding lines; print only the summary

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json requires a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "repolint: {} has no Cargo.toml — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = repolint::run(&root);
    if !quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
    }
    println!(
        "repolint: {} finding(s), {} suppression(s), {} file(s) scanned",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );

    let json_path = json.unwrap_or_else(|| root.join("LINT_REPORT.json"));
    if let Err(e) = std::fs::write(&json_path, repolint::report::to_json(&report)) {
        eprintln!("repolint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("repolint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
