//! Token-stream rules: panic-freedom zones, unguarded indexing, the
//! float-eq ban, atomics confinement and `obs` feature-gate hygiene.
//!
//! Every rule honours `// lint:allow(<rule>): <reason>` on the finding's
//! line or the line directly above. A suppression with an empty reason is
//! itself a finding (`bad-suppression`): the escape hatch exists, but it
//! must say why.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::{Finding, Suppressed};

/// Source files in which *any* panic path (and unguarded indexing) is a
/// finding: the decode/network-facing surface whose contract is "fails
/// explicitly, never silently wrong" — a malformed frame must map to
/// `SbrError`, not take down the node.
pub const PANIC_FREE_ZONES: &[&str] = &[
    "crates/sbr-core/src/codec.rs",
    "crates/sbr-core/src/decoder.rs",
    "crates/sbr-core/src/transmission.rs",
    "crates/sbr-core/src/error.rs",
    "crates/sensor-net/src/base_station.rs",
    "crates/sensor-net/src/storage.rs",
    "crates/sensor-net/src/node.rs",
    "crates/sensor-net/src/fault.rs",
    "crates/cli/src/commands.rs",
];

/// Keywords that can directly precede a `[` without it being an index
/// expression (`return [..]`, `match [a, b] {..}`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "for", "as", "dyn",
    "where", "move", "ref", "pub", "use", "crate", "type", "const", "static", "enum", "struct",
    "trait", "fn", "impl", "mod", "unsafe", "loop", "while", "await", "box",
];

/// Per-file context the token rules run under.
pub struct FileCtx<'a> {
    /// Workspace-relative path (`crates/x/src/y.rs`), `/`-separated.
    pub path: &'a str,
    /// The crate directory name (`sbr-core`, `cli`, …).
    pub crate_dir: &'a str,
}

/// Result of scanning one file's source.
#[derive(Debug, Default)]
pub struct ScanOut {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `lint:allow`.
    pub suppressed: Vec<Suppressed>,
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items, and separately by `#[cfg(feature = "obs")]` items.
#[derive(Debug, Default)]
struct Regions {
    test: Vec<(u32, u32)>,
    obs_gated: Vec<(u32, u32)>,
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Find the line span of the item an attribute at `toks[i..]` is attached
/// to: skip any further attributes, then run to the matching `}` of the
/// first open brace, or to a `;` if one comes first.
fn item_span(toks: &[Tok], mut i: usize) -> (u32, u32) {
    let start = toks[i].line;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (start, t.line);
                    }
                }
                ";" if depth == 0 => return (start, t.line),
                _ => {}
            }
        }
        i += 1;
    }
    (start, toks.last().map_or(start, |t| t.line))
}

/// Walk the token stream for `#[…]` attributes and record the regions the
/// interesting ones cover.
fn find_regions(toks: &[Tok]) -> Regions {
    let mut regions = Regions::default();
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_attr = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "[";
        if !is_attr {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut body: Vec<&Tok> = Vec::new();
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
            }
            if depth > 0 {
                body.push(t);
            }
            j += 1;
        }
        let is_ident = |t: &&Tok, name: &str| t.kind == TokKind::Ident && t.text == name;
        let is_test_attr = body.first().is_some_and(|t| is_ident(t, "test"))
            || (body.first().is_some_and(|t| is_ident(t, "cfg"))
                && body.iter().any(|t| is_ident(t, "test")));
        let is_obs_gate = body.first().is_some_and(|t| is_ident(t, "cfg"))
            && body.iter().any(|t| is_ident(t, "feature"))
            && body
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text == "obs");
        if is_test_attr {
            regions.test.push(item_span(toks, j));
        } else if is_obs_gate {
            regions.obs_gated.push(item_span(toks, j));
        }
        i = j;
    }
    regions
}

/// Run every token rule over one source file.
pub fn scan_source(ctx: &FileCtx<'_>, src: &str) -> ScanOut {
    let lexed = lex(src);
    let regions = find_regions(&lexed.tokens);
    let mut out = ScanOut::default();
    let zone = PANIC_FREE_ZONES.contains(&ctx.path);

    let mut raw: Vec<Finding> = Vec::new();
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_ranges(&regions.test, t.line) {
            continue; // every rule here is production-code-only
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);

        if zone {
            panic_free(ctx, t, prev, next, &mut raw);
            index_guard(ctx, t, prev, &mut raw);
        }
        float_eq(ctx, t, prev, next, toks.get(i + 2), &mut raw);
        if ctx.crate_dir != "sbr-obs" {
            atomics(ctx, t, prev, next, &mut raw);
        }
        if ctx.crate_dir == "sbr-core" && ctx.path != "crates/sbr-core/src/obs.rs" {
            obs_gate(ctx, t, &regions, &mut raw);
        }
    }

    // Apply suppressions: an allow on the finding's line or the line above.
    for f in raw {
        let hit = lexed
            .allows
            .iter()
            .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        match hit {
            Some(a) if !a.reason.is_empty() => out.suppressed.push(Suppressed {
                rule: f.rule,
                path: f.path,
                line: f.line,
                reason: a.reason.clone(),
            }),
            _ => out.findings.push(f),
        }
    }
    // Reason-less suppressions are findings in their own right.
    for a in &lexed.allows {
        if a.reason.is_empty() {
            out.findings.push(Finding {
                rule: "bad-suppression".into(),
                path: ctx.path.into(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a reason — every escape hatch must say why",
                    a.rule
                ),
            });
        }
    }
    out.findings.sort_by_key(|f| f.line);
    out
}

fn finding(ctx: &FileCtx<'_>, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.into(),
        path: ctx.path.into(),
        line,
        message,
    }
}

/// `panic-free`: no `.unwrap()` / `.expect(…)` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` in the zones.
fn panic_free(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Ident {
        return;
    }
    let next_is = |s: &str| next.is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
    let prev_is_dot = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
    match t.text.as_str() {
        "unwrap" | "expect" if prev_is_dot && next_is("(") => out.push(finding(
            ctx,
            "panic-free",
            t.line,
            format!(
                ".{}() in a panic-freedom zone — return a typed SbrError instead",
                t.text
            ),
        )),
        "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => out.push(finding(
            ctx,
            "panic-free",
            t.line,
            format!(
                "{}! in a panic-freedom zone — malformed input must fail explicitly, not abort",
                t.text
            ),
        )),
        _ => {}
    }
}

/// `index`: `expr[…]` indexing in the zones — any out-of-range subscript
/// panics, so zone code must bounds-check (`get`/`get_mut`) or carry a
/// reasoned `lint:allow(index)` proving the index in range.
fn index_guard(ctx: &FileCtx<'_>, t: &Tok, prev: Option<&Tok>, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Punct || t.text != "[" {
        return;
    }
    let Some(p) = prev else { return };
    let indexable = match p.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
        TokKind::Punct => p.text == ")" || p.text == "]",
        _ => false,
    };
    if indexable {
        out.push(finding(
            ctx,
            "index",
            t.line,
            "unguarded slice/array index in a panic-freedom zone — use .get()/.get_mut() or justify with lint:allow(index)".into(),
        ));
    }
}

/// `float-eq`: `==`/`!=` with a floating-point literal operand, anywhere
/// outside tests. Exact float comparison is occasionally intentional
/// (zero-variance guards); those sites carry a reasoned suppression so
/// the byte-identity story stays auditable.
fn float_eq(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    next2: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
        return;
    }
    let is_float =
        |t: Option<&Tok>| matches!(t, Some(t) if t.kind == (TokKind::Num { float: true }));
    let next_neg_float =
        next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "-") && is_float(next2);
    if is_float(prev) || is_float(next) || next_neg_float {
        out.push(finding(
            ctx,
            "float-eq",
            t.line,
            format!(
                "`{}` against a float literal — exact float comparison; justify with lint:allow(float-eq) or compare with a tolerance",
                t.text
            ),
        ));
    }
}

/// `atomics`: raw atomic types / `std::sync::atomic` confined to
/// `sbr-obs`; every other crate records through the `sbr_core::obs`
/// facade handles so metrics stay swappable and orderings live in one
/// audited place.
fn atomics(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Ident {
        return;
    }
    let is_atomic_type = t.text.starts_with("Atomic")
        && t.text
            .as_bytes()
            .get(6)
            .is_some_and(|c| c.is_ascii_uppercase() || c.is_ascii_digit());
    let is_atomic_path = t.text == "atomic"
        && prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == "::")
        && next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "::");
    if is_atomic_type || is_atomic_path {
        out.push(finding(
            ctx,
            "atomics",
            t.line,
            format!(
                "`{}` outside sbr-obs — metrics go through the sbr_core::obs facade; other uses need lint:allow(atomics)",
                t.text
            ),
        ));
    }
}

/// `obs-gate`: inside `sbr-core`, direct `sbr_obs::` paths outside the
/// facade module must sit under `#[cfg(feature = "obs")]`, or
/// `--no-default-features` builds break.
fn obs_gate(ctx: &FileCtx<'_>, t: &Tok, regions: &Regions, out: &mut Vec<Finding>) {
    if t.kind == TokKind::Ident && t.text == "sbr_obs" && !in_ranges(&regions.obs_gated, t.line) {
        out.push(finding(
            ctx,
            "obs-gate",
            t.line,
            "direct sbr_obs:: path outside the obs facade without #[cfg(feature = \"obs\")] — breaks --no-default-features".into(),
        ));
    }
}

/// Expose the parsed token stream (used by the wire-drift rule and the
/// lexer tests).
pub fn lex_file(src: &str) -> Lexed {
    lex(src)
}
