//! Token-stream rules: panic-freedom zones, unguarded indexing, the
//! float-eq ban, atomics confinement and `obs` feature-gate hygiene.
//!
//! Every rule honours `// lint:allow(<rule>): <reason>` on the finding's
//! line or the line directly above. A suppression with an empty reason is
//! itself a finding (`bad-suppression`): the escape hatch exists, but it
//! must say why.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::{Finding, Suppressed};

/// Source files in which *any* panic path (and unguarded indexing) is a
/// finding: the decode/network-facing surface whose contract is "fails
/// explicitly, never silently wrong" — a malformed frame must map to
/// `SbrError`, not take down the node.
pub const PANIC_FREE_ZONES: &[&str] = &[
    "crates/sbr-core/src/codec.rs",
    "crates/sbr-core/src/decoder.rs",
    "crates/sbr-core/src/transmission.rs",
    "crates/sbr-core/src/error.rs",
    "crates/sensor-net/src/base_station.rs",
    "crates/sensor-net/src/storage.rs",
    "crates/sensor-net/src/node.rs",
    "crates/sensor-net/src/fault.rs",
    "crates/cli/src/commands.rs",
];

/// Files that parse or emit wire/storage bytes: `as` narrowing of
/// length/offset/sequence values here silently truncates and corrupts
/// streams instead of failing typed.
pub const CAST_ZONES: &[&str] = &[
    "crates/sbr-core/src/codec.rs",
    "crates/sbr-core/src/decoder.rs",
    "crates/sbr-core/src/transmission.rs",
    "crates/sensor-net/src/storage.rs",
];

/// Keywords that can directly precede a `[` without it being an index
/// expression (`return [..]`, `match [a, b] {..}`, …).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "for", "as", "dyn",
    "where", "move", "ref", "pub", "use", "crate", "type", "const", "static", "enum", "struct",
    "trait", "fn", "impl", "mod", "unsafe", "loop", "while", "await", "box",
];

/// Per-file context the token rules run under.
pub struct FileCtx<'a> {
    /// Workspace-relative path (`crates/x/src/y.rs`), `/`-separated.
    pub path: &'a str,
    /// The crate directory name (`sbr-core`, `cli`, …).
    pub crate_dir: &'a str,
}

/// Result of scanning one file's source.
#[derive(Debug, Default)]
pub struct ScanOut {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `lint:allow`.
    pub suppressed: Vec<Suppressed>,
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items, and separately by `#[cfg(feature = "obs")]` items.
#[derive(Debug, Default)]
pub(crate) struct Regions {
    pub(crate) test: Vec<(u32, u32)>,
    pub(crate) obs_gated: Vec<(u32, u32)>,
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Find the line span of the item an attribute at `toks[i..]` is attached
/// to: skip any further attributes, then run to the matching `}` of the
/// first open brace, or to a `;` if one comes first.
fn item_span(toks: &[Tok], mut i: usize) -> (u32, u32) {
    let start = toks[i].line;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (start, t.line);
                    }
                }
                ";" if depth == 0 => return (start, t.line),
                _ => {}
            }
        }
        i += 1;
    }
    (start, toks.last().map_or(start, |t| t.line))
}

/// Walk the token stream for `#[…]` attributes and record the regions the
/// interesting ones cover.
pub(crate) fn find_regions(toks: &[Tok]) -> Regions {
    let mut regions = Regions::default();
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_attr = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "[";
        if !is_attr {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut body: Vec<&Tok> = Vec::new();
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
            }
            if depth > 0 {
                body.push(t);
            }
            j += 1;
        }
        let is_ident = |t: &&Tok, name: &str| t.kind == TokKind::Ident && t.text == name;
        let is_test_attr = body.first().is_some_and(|t| is_ident(t, "test"))
            || (body.first().is_some_and(|t| is_ident(t, "cfg"))
                && body.iter().any(|t| is_ident(t, "test")));
        let is_obs_gate = body.first().is_some_and(|t| is_ident(t, "cfg"))
            && body.iter().any(|t| is_ident(t, "feature"))
            && body
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text == "obs");
        if is_test_attr {
            regions.test.push(item_span(toks, j));
        } else if is_obs_gate {
            regions.obs_gated.push(item_span(toks, j));
        }
        i = j;
    }
    regions
}

/// Run every token rule over one source file.
pub fn scan_source(ctx: &FileCtx<'_>, src: &str) -> ScanOut {
    let lexed = lex(src);
    let regions = find_regions(&lexed.tokens);
    scan_lexed(ctx, &lexed, &regions)
}

/// Run every token rule over an already-lexed file (the driver lexes each
/// file once and shares the stream with the item/call-graph pass).
pub(crate) fn scan_lexed(ctx: &FileCtx<'_>, lexed: &Lexed, regions: &Regions) -> ScanOut {
    let mut out = ScanOut::default();
    let zone = PANIC_FREE_ZONES.contains(&ctx.path);

    let mut raw: Vec<Finding> = Vec::new();
    let toks = &lexed.tokens;
    if CAST_ZONES.contains(&ctx.path) {
        cast_truncation(ctx, toks, &regions.test, &mut raw);
    }
    determinism(ctx, toks, &regions.test, &mut raw);
    if ctx.path == "crates/sbr-obs/src/timeline.rs"
        || ctx.path.starts_with("crates/sensor-net/src/")
    {
        lock_discipline(ctx, toks, &regions.test, &mut raw);
    }
    for (i, t) in toks.iter().enumerate() {
        if in_ranges(&regions.test, t.line) {
            continue; // every rule here is production-code-only
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);

        if zone {
            panic_free(ctx, t, prev, next, &mut raw);
            index_guard(ctx, t, prev, &mut raw);
        }
        float_eq(ctx, t, prev, next, toks.get(i + 2), &mut raw);
        if ctx.crate_dir != "sbr-obs" {
            atomics(ctx, t, prev, next, &mut raw);
        }
        if ctx.crate_dir == "sbr-core" && ctx.path != "crates/sbr-core/src/obs.rs" {
            obs_gate(ctx, t, regions, &mut raw);
        }
    }

    // Apply suppressions: an allow on the finding's line or the line above.
    for f in raw {
        let hit = lexed
            .allows
            .iter()
            .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        match hit {
            Some(a) if !a.reason.is_empty() => out.suppressed.push(Suppressed {
                rule: f.rule,
                path: f.path,
                line: f.line,
                reason: a.reason.clone(),
            }),
            _ => out.findings.push(f),
        }
    }
    // Reason-less suppressions are findings in their own right.
    for a in &lexed.allows {
        if a.reason.is_empty() {
            out.findings.push(Finding {
                rule: "bad-suppression".into(),
                path: ctx.path.into(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a reason — every escape hatch must say why",
                    a.rule
                ),
                call_path: Vec::new(),
            });
        }
    }
    out.findings.sort_by_key(|f| f.line);
    out
}

fn finding(ctx: &FileCtx<'_>, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.into(),
        path: ctx.path.into(),
        line,
        message,
        call_path: Vec::new(),
    }
}

/// `panic-free`: no `.unwrap()` / `.expect(…)` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` in the zones.
fn panic_free(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Ident {
        return;
    }
    let next_is = |s: &str| next.is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
    let prev_is_dot = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
    match t.text.as_str() {
        "unwrap" | "expect" if prev_is_dot && next_is("(") => out.push(finding(
            ctx,
            "panic-free",
            t.line,
            format!(
                ".{}() in a panic-freedom zone — return a typed SbrError instead",
                t.text
            ),
        )),
        "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => out.push(finding(
            ctx,
            "panic-free",
            t.line,
            format!(
                "{}! in a panic-freedom zone — malformed input must fail explicitly, not abort",
                t.text
            ),
        )),
        _ => {}
    }
}

/// `index`: `expr[…]` indexing in the zones — any out-of-range subscript
/// panics, so zone code must bounds-check (`get`/`get_mut`) or carry a
/// reasoned `lint:allow(index)` proving the index in range.
fn index_guard(ctx: &FileCtx<'_>, t: &Tok, prev: Option<&Tok>, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Punct || t.text != "[" {
        return;
    }
    let Some(p) = prev else { return };
    let indexable = match p.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
        TokKind::Punct => p.text == ")" || p.text == "]",
        _ => false,
    };
    if indexable {
        out.push(finding(
            ctx,
            "index",
            t.line,
            "unguarded slice/array index in a panic-freedom zone — use .get()/.get_mut() or justify with lint:allow(index)".into(),
        ));
    }
}

/// `float-eq`: `==`/`!=` with a floating-point literal operand, anywhere
/// outside tests. Exact float comparison is occasionally intentional
/// (zero-variance guards); those sites carry a reasoned suppression so
/// the byte-identity story stays auditable.
fn float_eq(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    next2: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
        return;
    }
    let is_float =
        |t: Option<&Tok>| matches!(t, Some(t) if t.kind == (TokKind::Num { float: true }));
    let next_neg_float =
        next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "-") && is_float(next2);
    if is_float(prev) || is_float(next) || next_neg_float {
        out.push(finding(
            ctx,
            "float-eq",
            t.line,
            format!(
                "`{}` against a float literal — exact float comparison; justify with lint:allow(float-eq) or compare with a tolerance",
                t.text
            ),
        ));
    }
}

/// `atomics`: raw atomic types / `std::sync::atomic` confined to
/// `sbr-obs`; every other crate records through the `sbr_core::obs`
/// facade handles so metrics stay swappable and orderings live in one
/// audited place.
fn atomics(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    out: &mut Vec<Finding>,
) {
    if t.kind != TokKind::Ident {
        return;
    }
    let is_atomic_type = t.text.starts_with("Atomic")
        && t.text
            .as_bytes()
            .get(6)
            .is_some_and(|c| c.is_ascii_uppercase() || c.is_ascii_digit());
    let is_atomic_path = t.text == "atomic"
        && prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == "::")
        && next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "::");
    if is_atomic_type || is_atomic_path {
        out.push(finding(
            ctx,
            "atomics",
            t.line,
            format!(
                "`{}` outside sbr-obs — metrics go through the sbr_core::obs facade; other uses need lint:allow(atomics)",
                t.text
            ),
        ));
    }
}

/// `obs-gate`: inside `sbr-core`, direct `sbr_obs::` paths outside the
/// facade module must sit under `#[cfg(feature = "obs")]`, or
/// `--no-default-features` builds break.
fn obs_gate(ctx: &FileCtx<'_>, t: &Tok, regions: &Regions, out: &mut Vec<Finding>) {
    if t.kind == TokKind::Ident && t.text == "sbr_obs" && !in_ranges(&regions.obs_gated, t.line) {
        out.push(finding(
            ctx,
            "obs-gate",
            t.line,
            "direct sbr_obs:: path outside the obs facade without #[cfg(feature = \"obs\")] — breaks --no-default-features".into(),
        ));
    }
}

/// Identifier fragments that suggest a length/offset/sequence quantity —
/// the values whose silent truncation corrupts wire or storage bytes.
const SUSPECT_SUBSTR: &[&str] = &[
    "len",
    "count",
    "seq",
    "offset",
    "pos",
    "size",
    "total",
    "ordinal",
    "covered",
    "record",
    "slot",
    "sample",
    "signal",
    "frame",
    "byte",
    "remaining",
    "budget",
    "idx",
    "index",
    "num",
    "first",
];

/// Short identifiers that are length-like in this codebase (`w` is the
/// paper's window width, `n`/`m` element counts, …) — exact match only.
const SUSPECT_EXACT: &[&str] = &[
    "w", "n", "m", "ns", "nu", "ni", "start", "chunk", "cold", "ord",
];

/// Cursor/byte reads whose result provably fits 32 bits: casting them to
/// `usize`/`u64` widens and cannot truncate (the workspace targets
/// 64-bit; DESIGN.md §7b records the assumption).
const SMALL_SOURCES: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "get_u8",
    "get_u16",
    "get_u16_le",
    "get_u32",
    "get_u32_le",
    "take_u8",
    "take_u16",
    "take_u32",
    "read_u16",
    "read_u32",
];

/// `cast-truncation`: in the wire/storage zones, `expr as u32/u64/usize`
/// where the source expression names a length/offset/seq-like value must
/// become `try_from` + `SbrError::Corrupt` (or carry a reasoned allow) —
/// `as` silently wraps, and a wrapped length is a corrupt stream that
/// still parses.
fn cast_truncation(ctx: &FileCtx<'_>, toks: &[Tok], test: &[(u32, u32)], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || in_ranges(test, t.line) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !matches!(target.text.as_str(), "u32" | "u64" | "usize")
        {
            continue;
        }
        // Walk the source expression backwards (`as` binds tighter than
        // binary operators, so stop at any depth-0 operator) collecting
        // the identifiers it mentions.
        let mut idents: Vec<&str> = Vec::new();
        let mut depth = 0u32;
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 24 {
            j -= 1;
            steps += 1;
            let p = &toks[j];
            match p.kind {
                TokKind::Punct => match p.text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "." | "::" | "?" => {}
                    _ if depth > 0 => {}
                    _ => break,
                },
                TokKind::Ident if p.text == "as" => break,
                TokKind::Ident => idents.push(p.text.as_str()),
                TokKind::Num { .. } => {}
                _ => break,
            }
        }
        let suspect = idents.iter().any(|id| {
            SUSPECT_EXACT.contains(id)
                || SUSPECT_SUBSTR.iter().any(|s| id.to_lowercase().contains(s))
        });
        let widening = matches!(target.text.as_str(), "u64" | "usize")
            && idents.iter().any(|id| SMALL_SOURCES.contains(id));
        if suspect && !widening {
            out.push(finding(
                ctx,
                "cast-truncation",
                t.line,
                format!(
                    "`as {}` on a length/offset-like value in a wire zone — use {}::try_from + SbrError::Corrupt, or justify with lint:allow(cast-truncation)",
                    target.text, target.text
                ),
            ));
        }
    }
}

/// Hash-container methods whose visit order is the hasher's, not the
/// data's.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `determinism`: iteration over a `HashMap`/`HashSet` declared in the
/// same file (order can leak into output, breaking byte-identity and
/// seeded replay), and wall-clock reads (`Instant::now`, `SystemTime`)
/// outside `sbr-obs`/`bench`.
fn determinism(ctx: &FileCtx<'_>, toks: &[Tok], test: &[(u32, u32)], out: &mut Vec<Finding>) {
    // Pass 1: names declared with a hash-container type or constructor
    // (`pairs: HashMap<…>`, `let seen = HashSet::new()`, …).
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Strip `path::` prefixes and wrapper generics (`Mutex<HashMap…`,
        // `Arc<RwLock<HashMap…`), then expect `name :` or `name =`.
        let mut j = i;
        loop {
            if j >= 2
                && toks[j - 1].kind == TokKind::Punct
                && matches!(toks[j - 1].text.as_str(), "::" | "<")
                && toks[j - 2].kind == TokKind::Ident
            {
                j -= 2;
                continue;
            }
            break;
        }
        if j >= 2
            && toks[j - 1].kind == TokKind::Punct
            && matches!(toks[j - 1].text.as_str(), ":" | "=")
            && toks[j - 2].kind == TokKind::Ident
        {
            hash_names.push(toks[j - 2].text.as_str());
        }
    }
    if !hash_names.is_empty() {
        for (i, t) in toks.iter().enumerate() {
            if in_ranges(test, t.line) {
                continue;
            }
            // `name.iter()` and friends, walking the receiver chain back
            // through `.lock()`-style adaptors.
            let is_iter_call = t.kind == TokKind::Ident
                && HASH_ITER_METHODS.contains(&t.text.as_str())
                && i >= 2
                && toks[i - 1].kind == TokKind::Punct
                && toks[i - 1].text == "."
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
            if is_iter_call {
                let mut depth = 0u32;
                let mut j = i - 1;
                let mut steps = 0;
                let mut hit: Option<&str> = None;
                while j > 0 && steps < 16 {
                    j -= 1;
                    steps += 1;
                    let p = &toks[j];
                    match p.kind {
                        TokKind::Punct => match p.text.as_str() {
                            ")" | "]" => depth += 1,
                            "(" | "[" => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            "." | "::" | "?" => {}
                            _ if depth > 0 => {}
                            _ => break,
                        },
                        TokKind::Ident if depth == 0 => {
                            if hash_names.contains(&p.text.as_str()) {
                                hit = Some(p.text.as_str());
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                if let Some(name) = hit {
                    out.push(finding(
                        ctx,
                        "determinism",
                        t.line,
                        format!(
                            ".{}() on hash container `{}` — iteration order is nondeterministic; use BTreeMap/BTreeSet or sort, or justify with lint:allow(determinism)",
                            t.text, name
                        ),
                    ));
                }
            }
            // `for x in &name { … }` iterating the container directly.
            if t.kind == TokKind::Ident && t.text == "in" {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|n| n.kind == TokKind::Punct && (n.text == "&" || n.text == "&&"))
                    || toks
                        .get(j)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text == "mut")
                {
                    j += 1;
                }
                let named = toks
                    .get(j)
                    .filter(|n| n.kind == TokKind::Ident && hash_names.contains(&n.text.as_str()));
                let then_brace = toks
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "{");
                if let (Some(n), true) = (named, then_brace) {
                    out.push(finding(
                        ctx,
                        "determinism",
                        t.line,
                        format!(
                            "for-loop over hash container `{}` — iteration order is nondeterministic; use BTreeMap/BTreeSet or sort, or justify with lint:allow(determinism)",
                            n.text
                        ),
                    ));
                }
            }
        }
    }
    // Pass 2: wall-clock reads outside the observability/bench crates.
    if ctx.crate_dir == "sbr-obs" || ctx.crate_dir == "bench" {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_ranges(test, t.line) {
            continue;
        }
        let now_read = t.text == "Instant"
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text == "now");
        if now_read || t.text == "SystemTime" {
            out.push(finding(
                ctx,
                "determinism",
                t.line,
                format!(
                    "wall-clock read ({}) outside sbr-obs/bench — breaks seeded replay; derive time from the simulation clock, or justify with lint:allow(determinism)",
                    if now_read { "Instant::now" } else { "SystemTime" }
                ),
            ));
        }
    }
}

/// Methods that enter the recorder (and may take its internal locks).
const RECORDER_METHODS: &[&str] = &[
    "record",
    "record_value",
    "frame_event",
    "counter",
    "gauge",
    "histogram",
    "span",
];

/// `lock-discipline`: in `sbr-obs::timeline` and `sensor-net`, a `Mutex`
/// guard must not be held across a call that can re-enter the recorder —
/// the recorder takes its own locks, and holding an unrelated guard
/// across that boundary is how lock-order inversions are born.
///
/// Scope model (conservative, statement-shaped):
/// - `let g = x.lock()…;` holds to the enclosing block's `}` or `drop(g)`;
/// - `for … in x.lock()…` holds through the loop body (the temporary
///   guard lives for the whole loop);
/// - any other `x.lock()` temporary holds to the end of its statement.
fn lock_discipline(ctx: &FileCtx<'_>, toks: &[Tok], test: &[(u32, u32)], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let is_lock = t.kind == TokKind::Ident
            && t.text == "lock"
            && i >= 1
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text == "."
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
        if !is_lock || in_ranges(test, t.line) {
            continue;
        }
        // Statement start: the token after the previous `;`/`{`/`}`.
        let mut s = i;
        while s > 0 {
            let p = &toks[s - 1];
            if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}") {
                break;
            }
            s -= 1;
        }
        let stmt_is_let = toks
            .get(s)
            .is_some_and(|p| p.kind == TokKind::Ident && p.text == "let");
        let stmt_is_for = toks[s..i]
            .iter()
            .any(|p| p.kind == TokKind::Ident && p.text == "for");
        // Walk past the lock-call chain: `lock()` plus any
        // unwrap/expect/unwrap_or_else(...) adaptors.
        let mut j = i + 1; // at `(`
        let mut close = j;
        let mut depth = 0i32;
        while close < toks.len() {
            let p = &toks[close];
            if p.kind == TokKind::Punct {
                match p.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            close += 1;
        }
        j = close + 1;
        loop {
            let dot_adapt = toks
                .get(j)
                .is_some_and(|p| p.kind == TokKind::Punct && p.text == ".")
                && toks.get(j + 1).is_some_and(|p| {
                    p.kind == TokKind::Ident
                        && matches!(p.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                });
            if !dot_adapt {
                break;
            }
            let mut k = j + 2; // at `(`
            let mut d = 0i32;
            while k < toks.len() {
                let p = &toks[k];
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // Determine the guard's live token span [start, end).
        let chain_ends_stmt = toks
            .get(j)
            .is_some_and(|p| p.kind == TokKind::Punct && p.text == ";");
        let (start, end) = if stmt_is_let && chain_ends_stmt {
            // Guard binding: to the enclosing block's `}` or `drop(g)`.
            let guard = toks[s..i]
                .iter()
                .skip(1)
                .find(|p| p.kind == TokKind::Ident && p.text != "mut")
                .map(|p| p.text.as_str())
                .unwrap_or("");
            let mut e = j + 1;
            let mut d = 0i32;
            while e < toks.len() {
                let p = &toks[e];
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        }
                        _ => {}
                    }
                }
                let dropped = p.kind == TokKind::Ident
                    && p.text == "drop"
                    && toks
                        .get(e + 2)
                        .is_some_and(|g| g.kind == TokKind::Ident && g.text == guard);
                if dropped {
                    break;
                }
                e += 1;
            }
            (j + 1, e)
        } else if stmt_is_for {
            // Loop temporary: through the loop body.
            let mut b = j;
            while b < toks.len() && !(toks[b].kind == TokKind::Punct && toks[b].text == "{") {
                b += 1;
            }
            let mut e = b;
            let mut d = 0i32;
            while e < toks.len() {
                let p = &toks[e];
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                e += 1;
            }
            (b, e)
        } else {
            // Statement temporary: to the statement's `;`.
            let mut e = j;
            let mut d = 0i32;
            while e < toks.len() {
                let p = &toks[e];
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        ";" if d <= 0 => break,
                        _ => {}
                    }
                }
                e += 1;
            }
            (j, e)
        };
        for k in start..end.min(toks.len()) {
            let p = &toks[k];
            let reenters = p.kind == TokKind::Ident
                && RECORDER_METHODS.contains(&p.text.as_str())
                && k >= 1
                && toks[k - 1].kind == TokKind::Punct
                && toks[k - 1].text == "."
                && toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
            if reenters {
                out.push(finding(
                    ctx,
                    "lock-discipline",
                    p.line,
                    format!(
                        "Mutex guard (locked on line {}) held across recorder call .{}() — release the guard first, or justify with lint:allow(lock-discipline)",
                        t.line, p.text
                    ),
                ));
            }
        }
    }
}

/// Expose the parsed token stream (used by the wire-drift rule and the
/// lexer tests).
pub fn lex_file(src: &str) -> Lexed {
    lex(src)
}
