//! Item-level analysis: a lightweight `fn` parser over the lexer's token
//! stream, a name-resolution-lite call graph across the workspace, and
//! the `panic-reachability` pass that walks it.
//!
//! The parser extracts every production `fn` item (name, definition line,
//! self-receiver, body span) and, inside each body, the call sites and
//! panicking sinks. Resolution is *name-resolution-lite* by design —
//! std-only, no `syn`, no type inference:
//!
//! - a method call `.foo(…)` widens to every workspace `fn foo` that
//!   takes a `self` receiver;
//! - a free or path call `foo(…)` / `x::foo(…)` widens to every
//!   workspace `fn foo`;
//! - calls that resolve to nothing in the workspace (std, vendored
//!   crates) contribute no edge.
//!
//! The contract is conservative over-approximation: the graph may
//! contain edges the compiler would never take (same-named methods on
//! unrelated types), so a clean pass proves the absence of reachable
//! panics, while an individual finding may need a reasoned
//! `lint:allow(panic-reachability)` at the sink or call site.

use std::collections::HashMap;

use crate::lexer::{Allow, Lexed, Tok, TokKind};
use crate::rules::{FileCtx, NON_INDEX_KEYWORDS, PANIC_FREE_ZONES};
use crate::{Finding, Suppressed};

/// Keywords that read like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "in", "for", "loop", "let", "as", "move", "fn", "unsafe",
    "else", "await", "box", "ref", "mut", "use", "pub", "where", "impl", "dyn",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`decode_any`, `push`, …).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// True for `.name(…)` method syntax (widened over self-receivers).
    pub method: bool,
}

/// The kind of panicking sink a body contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `.unwrap()` / `.expect(…)` — workspace-wide.
    UnwrapExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` — workspace-wide.
    PanicMacro,
    /// Unguarded `expr[…]` subscript — panic-freedom zones only.
    Index,
    /// `.copy_from_slice(…)` / `.copy_to_slice(…)` (length-mismatch
    /// panics) — panic-freedom zones only.
    CopySlice,
    /// Integer `/` or `%` by a non-constant — panic-freedom zones only.
    DivMod,
}

/// One panicking sink inside a function body.
#[derive(Debug, Clone)]
pub struct SinkSite {
    /// What kind of sink.
    pub kind: SinkKind,
    /// Short spelling for messages (`unwrap()`, `copy_from_slice()`, …).
    pub what: String,
    /// 1-based line of the sink token.
    pub line: u32,
}

/// One parsed production `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Call sites inside the body (nested items included, conservatively).
    pub calls: Vec<CallSite>,
    /// Panicking sinks inside the body, after suppression.
    pub sinks: Vec<SinkSite>,
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

fn reasoned_allow<'a>(allows: &'a [Allow], rule: &str, line: u32) -> Option<&'a Allow> {
    allows
        .iter()
        .find(|a| a.rule == rule && !a.reason.is_empty() && (a.line == line || a.line + 1 == line))
}

/// Parse every production `fn` item out of one file's token stream.
/// Sinks carrying a reasoned `lint:allow(panic-reachability)` are dropped
/// from the graph and recorded in `suppressed`; sinks already excused by
/// the token rules' own allows (`panic-free`, `index`) are dropped
/// silently — those suppressions are recorded by the token rules.
pub fn collect(
    ctx: &FileCtx<'_>,
    lexed: &Lexed,
    test_ranges: &[(u32, u32)],
    suppressed: &mut Vec<Suppressed>,
) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let zone = PANIC_FREE_ZONES.contains(&ctx.path);
    let mut items = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        let t = &toks[i];
        let named = t.kind == TokKind::Ident
            && t.text == "fn"
            && toks[i + 1].kind == TokKind::Ident
            && !in_ranges(test_ranges, t.line);
        if !named {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = t.line;
        // Params `(` at generic-angle depth 0 (so `fn f<F: Fn() -> T>` is
        // not fooled by the bound's parens); `;`/`{` first means a
        // bodyless trait signature or malformed item — skip.
        let mut j = i + 2;
        let mut angle: i32 = 0;
        let mut params = None;
        while j < toks.len() {
            let tt = &toks[j];
            if tt.kind == TokKind::Punct {
                match tt.text.as_str() {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle = (angle - 1).max(0),
                    ">>" => angle = (angle - 2).max(0),
                    "(" if angle == 0 => {
                        params = Some(j);
                    }
                    ";" | "{" => break,
                    _ => {}
                }
            }
            if params.is_some() {
                break;
            }
            j += 1;
        }
        let Some(ps) = params else {
            i += 2;
            continue;
        };
        // Self receiver: an Ident `self` in the first parameter slot.
        let mut has_self = false;
        let mut k = ps + 1;
        let mut depth = 1i32;
        while k < toks.len() && depth > 0 {
            let tt = &toks[k];
            if tt.kind == TokKind::Punct {
                match tt.text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "," if depth == 1 => break,
                    _ => {}
                }
            }
            if tt.kind == TokKind::Ident && tt.text == "self" {
                has_self = true;
                break;
            }
            k += 1;
        }
        // Skip to the params' closing `)`, then the body braces.
        let mut k = ps;
        let mut depth = 0i32;
        while let Some(tt) = toks.get(k) {
            if is_punct(tt, "(") {
                depth += 1;
            } else if is_punct(tt, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let mut body = None;
        let mut m = k + 1;
        while m < toks.len() {
            let tt = &toks[m];
            if is_punct(tt, ";") {
                break; // trait method declaration, no body
            }
            if is_punct(tt, "{") {
                body = Some(m);
                break;
            }
            m += 1;
        }
        let Some(bs) = body else {
            i += 2;
            continue;
        };
        let mut be = bs;
        let mut depth = 0i32;
        while be < toks.len() {
            let tt = &toks[be];
            if is_punct(tt, "{") {
                depth += 1;
            } else if is_punct(tt, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            be += 1;
        }
        let mut item = FnItem {
            name,
            path: ctx.path.to_string(),
            line,
            has_self,
            calls: Vec::new(),
            sinks: Vec::new(),
        };
        extract_body(
            toks,
            bs + 1..be,
            &lexed.allows,
            zone,
            ctx,
            &mut item,
            suppressed,
        );
        items.push(item);
        // Continue right after the name so nested `fn` items are also
        // collected as their own nodes (their calls stay attributed to the
        // enclosing item too — conservative, per the module contract).
        i += 2;
    }
    items
}

/// Scan one body span for call sites and panicking sinks.
#[allow(clippy::too_many_arguments)]
fn extract_body(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    allows: &[Allow],
    zone: bool,
    ctx: &FileCtx<'_>,
    item: &mut FnItem,
    suppressed: &mut Vec<Suppressed>,
) {
    let mut push_sink = |kind: SinkKind, what: &str, line: u32, sinks: &mut Vec<SinkSite>| {
        if let Some(a) = reasoned_allow(allows, "panic-reachability", line) {
            suppressed.push(Suppressed {
                rule: "panic-reachability".into(),
                path: ctx.path.into(),
                line,
                reason: a.reason.clone(),
            });
            return;
        }
        // In the zones, the token rules already police (and record
        // suppressions for) these sink kinds — honour their allows
        // silently so one annotation clears both passes.
        if zone {
            let token_rule = match kind {
                SinkKind::UnwrapExpect | SinkKind::PanicMacro => Some("panic-free"),
                SinkKind::Index => Some("index"),
                SinkKind::CopySlice | SinkKind::DivMod => None,
            };
            if let Some(rule) = token_rule {
                if reasoned_allow(allows, rule, line).is_some() {
                    return;
                }
            }
        }
        sinks.push(SinkSite {
            kind,
            what: what.into(),
            line,
        });
    };

    for i in range.clone() {
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);
        let next_is = |s: &str| next.is_some_and(|n| is_punct(n, s));
        let prev_is = |s: &str| prev.is_some_and(|p| is_punct(p, s));

        if t.kind == TokKind::Ident && next_is("(") {
            match t.text.as_str() {
                "unwrap" | "expect" if prev_is(".") => {
                    push_sink(
                        SinkKind::UnwrapExpect,
                        &format!("{}()", t.text),
                        t.line,
                        &mut item.sinks,
                    );
                }
                "copy_from_slice" | "copy_to_slice" if zone && prev_is(".") => {
                    push_sink(
                        SinkKind::CopySlice,
                        &format!("{}()", t.text),
                        t.line,
                        &mut item.sinks,
                    );
                }
                _ => {}
            }
            let callable = !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && !t.text.chars().next().is_some_and(|c| c.is_uppercase());
            if callable {
                item.calls.push(CallSite {
                    name: t.text.clone(),
                    line: t.line,
                    method: prev_is("."),
                });
            }
        }
        if t.kind == TokKind::Ident && next_is("!") {
            if let "panic" | "unreachable" | "todo" | "unimplemented" = t.text.as_str() {
                push_sink(
                    SinkKind::PanicMacro,
                    &format!("{}!", t.text),
                    t.line,
                    &mut item.sinks,
                );
            }
        }
        if zone && is_punct(t, "[") {
            let indexable = prev.is_some_and(|p| match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            });
            if indexable {
                push_sink(SinkKind::Index, "index[]", t.line, &mut item.sinks);
            }
        }
        if zone && t.kind == TokKind::Punct && (t.text == "/" || t.text == "%") {
            let divisor_var = next.is_some_and(|n| {
                n.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&n.text.as_str())
            });
            // Float division cannot panic; `… as f64 / x` and `1.0 / x`
            // are visibly float-typed at the token level.
            let dividend = prev.is_some_and(|p| match p.kind {
                TokKind::Ident => {
                    !NON_CALL_KEYWORDS.contains(&p.text.as_str())
                        && p.text != "f64"
                        && p.text != "f32"
                }
                TokKind::Punct => p.text == ")" || p.text == "]",
                TokKind::Num { float } => !float,
                _ => false,
            });
            if divisor_var && dividend {
                let what = if t.text == "/" {
                    "div-by-var"
                } else {
                    "mod-by-var"
                };
                push_sink(SinkKind::DivMod, what, t.line, &mut item.sinks);
            }
        }
    }
}

/// Per-file input to the reachability pass.
pub struct FileItems {
    /// Workspace-relative path.
    pub path: String,
    /// Parsed production fn items.
    pub fns: Vec<FnItem>,
    /// The file's inline allows (for call-site suppressions).
    pub allows: Vec<Allow>,
}

/// The `panic-reachability` pass: every `fn` defined in a panic-freedom
/// zone must not reach a panicking sink through the call graph.
///
/// Transitive sinks (≥ 1 call edge away) are reported once per
/// (zone fn, call-site line), anchored at the zone fn's call site, with
/// the shortest zone→sink path in `call_path`. Direct sinks of the kinds
/// the token rules do not cover (`copy_from_slice`, div-mod) are
/// reported at the sink line itself.
pub fn reachability(
    files: &[FileItems],
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<Suppressed>,
) {
    // Flatten to an indexed node list.
    let mut fns: Vec<&FnItem> = Vec::new();
    for f in files {
        fns.extend(f.fns.iter());
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    let resolve = |c: &CallSite| -> Vec<usize> {
        let Some(cands) = by_name.get(c.name.as_str()) else {
            return Vec::new();
        };
        cands
            .iter()
            .copied()
            .filter(|&id| !c.method || fns[id].has_self)
            .collect()
    };

    // dist[f] = call edges from f to the nearest sink-containing fn
    // (0 when f itself holds a sink); hop[f] = next callee on that path.
    // Multi-source BFS over reverse edges gives shortest paths.
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; fns.len()];
    let mut hop = vec![usize::MAX; fns.len()];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (caller, f) in fns.iter().enumerate() {
        for c in &f.calls {
            for callee in resolve(c) {
                rev[callee].push(caller);
            }
        }
    }
    let mut queue = std::collections::VecDeque::new();
    for (id, f) in fns.iter().enumerate() {
        if !f.sinks.is_empty() {
            dist[id] = 0;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &caller in &rev[id] {
            if dist[caller] == INF {
                dist[caller] = dist[id] + 1;
                hop[caller] = id;
                queue.push_back(caller);
            }
        }
    }

    // Render `name (path:line)` path elements.
    let fn_at = |id: usize| format!("{}@{}:{}", fns[id].name, fns[id].path, fns[id].line);
    let path_from = |mut id: usize| -> Vec<String> {
        let mut out = vec![fn_at(id)];
        while dist[id] > 0 {
            id = hop[id];
            out.push(fn_at(id));
        }
        let sink = &fns[id].sinks[0];
        out.push(format!("{}@{}:{}", sink.what, fns[id].path, sink.line));
        out
    };

    let mut seen: std::collections::HashSet<(String, u32)> = std::collections::HashSet::new();
    for file in files {
        if !PANIC_FREE_ZONES.contains(&file.path.as_str()) {
            continue;
        }
        for root in &file.fns {
            // Direct sinks the token rules cannot see.
            for s in &root.sinks {
                if matches!(s.kind, SinkKind::CopySlice | SinkKind::DivMod)
                    && seen.insert((file.path.clone(), s.line))
                {
                    findings.push(Finding {
                        rule: "panic-reachability".into(),
                        path: file.path.clone(),
                        line: s.line,
                        message: format!(
                            "{} in zone fn `{}` can panic — bounds-check and return SbrError::Corrupt, or justify with lint:allow(panic-reachability)",
                            s.what, root.name
                        ),
                        call_path: vec![
                            fn_at_item(root),
                            format!("{}@{}:{}", s.what, file.path, s.line),
                        ],
                    });
                }
            }
            // Transitive sinks through the call graph.
            for c in &root.calls {
                let best = resolve(c)
                    .into_iter()
                    .filter(|&id| dist[id] != INF)
                    .min_by_key(|&id| dist[id]);
                let Some(id) = best else { continue };
                if let Some(a) = reasoned_allow(&file.allows, "panic-reachability", c.line) {
                    suppressed.push(Suppressed {
                        rule: "panic-reachability".into(),
                        path: file.path.clone(),
                        line: c.line,
                        reason: a.reason.clone(),
                    });
                    continue;
                }
                if !seen.insert((file.path.clone(), c.line)) {
                    continue;
                }
                let mut call_path = vec![fn_at_item(root)];
                call_path.extend(path_from(id));
                let sink = call_path.last().cloned().unwrap_or_default();
                findings.push(Finding {
                    rule: "panic-reachability".into(),
                    path: file.path.clone(),
                    line: c.line,
                    message: format!(
                        "zone fn `{}` can reach {} via {} — make the path return SbrError, or justify with lint:allow(panic-reachability)",
                        root.name,
                        sink,
                        call_path.join(" -> "),
                    ),
                    call_path,
                });
            }
        }
    }
}

fn fn_at_item(f: &FnItem) -> String {
    format!("{}@{}:{}", f.name, f.path, f.line)
}
