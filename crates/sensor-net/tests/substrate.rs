//! Substrate integration: topology + lossy link + aggregation + battery
//! driven together, the way the network example composes them.

use sbr_core::SbrConfig;
use sensor_net::aggregation::{aggregate_epoch, flood_cost, Partial};
use sensor_net::{Battery, EnergyModel, LossyLink, Network, Strategy, Topology};

fn feeds(n_nodes: usize, len: usize) -> Vec<Vec<Vec<f64>>> {
    (0..n_nodes)
        .map(|n| {
            (0..2)
                .map(|s| {
                    (0..len)
                        .map(|t| ((t as f64 * 0.23) + (n * 2 + s) as f64).sin() * 8.0 + 20.0)
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[test]
fn lifetime_ordering_raw_worst_sbr_best_at_low_ratio() {
    let data = feeds(6, 256);
    let battery = Battery::default();
    let life = |strategy: &Strategy| {
        let mut net = Network::new(Topology::random(7, 8.0, 3.0, 5), EnergyModel::default());
        let r = net.simulate(&data, 128, strategy).unwrap();
        battery.network_lifetime(&r.ledgers)
    };
    let raw = life(&Strategy::Raw);
    let sbr10 = life(&Strategy::Sbr(SbrConfig::new(2 * 128 / 10, 64)));
    let sbr30 = life(&Strategy::Sbr(SbrConfig::new(2 * 128 * 3 / 10, 64)));
    assert!(sbr10 > sbr30, "lower ratio must live longer");
    assert!(sbr30 > raw, "any compression must beat raw");
    assert!(
        sbr10 > 5.0 * raw,
        "10% ratio should buy ~an order of magnitude"
    );
}

#[test]
fn deep_chains_amplify_compression_gains() {
    // On a 10-hop chain, every saved value is saved ten times.
    let data = feeds(10, 128);
    let run = |topology: Topology, strategy: &Strategy| {
        let mut net = Network::new(topology, EnergyModel::default());
        net.simulate(&data, 128, strategy).unwrap().total_energy()
    };
    let sbr = Strategy::Sbr(SbrConfig::new(2 * 128 / 10, 64));
    let chain_raw = run(Topology::line(11, 1.0), &Strategy::Raw);
    let chain_sbr = run(Topology::line(11, 1.0), &sbr);
    let star_raw = run(Topology::star(11, 1.0), &Strategy::Raw);
    let star_sbr = run(Topology::star(11, 1.0), &sbr);
    let chain_gain = chain_raw / chain_sbr;
    let star_gain = star_raw / star_sbr;
    // Both topologies gain about the ratio; absolute energy differs a lot.
    assert!(
        chain_raw > 2.0 * star_raw,
        "relaying must cost more on chains"
    );
    assert!(chain_gain > 5.0 && star_gain > 5.0);
}

#[test]
fn arq_compensates_loss_without_fidelity_cost() {
    let data = feeds(3, 256);
    let sbr = Strategy::Sbr(SbrConfig::new(2 * 128 / 8, 64));
    let mut clean = Network::new(Topology::line(4, 1.0), EnergyModel::default());
    let clean_report = clean.simulate(&data, 128, &sbr).unwrap();
    let mut noisy = Network::new(Topology::line(4, 1.0), EnergyModel::default());
    noisy.set_link(LossyLink::new(0.3, 40, 11));
    let noisy_report = noisy.simulate(&data, 128, &sbr).unwrap();
    // ~1/(1-p) = 1.43× attempts; energy up, answers identical.
    assert!(noisy_report.hop_attempts > clean_report.hop_attempts);
    assert!((noisy_report.sse - clean_report.sse).abs() < 1e-9);
    assert_eq!(
        noisy.station().chunk_count(1),
        clean.station().chunk_count(1)
    );
}

#[test]
fn aggregation_tree_cost_is_topology_invariant() {
    // One partial per edge regardless of depth — unlike flooding.
    let readings: Vec<f64> = (0..12).map(|i| i as f64).collect();
    let chain = Topology::line(12, 1.0);
    let star = Topology::star(12, 1.0);
    let chain_epoch = aggregate_epoch(&chain, &readings);
    let star_epoch = aggregate_epoch(&star, &readings);
    assert_eq!(chain_epoch.total_values, star_epoch.total_values);
    assert_eq!(chain_epoch.aggregate, star_epoch.aggregate);
    assert!(flood_cost(&chain) > flood_cost(&star));
}

#[test]
fn aggregate_epoch_matches_direct_computation() {
    let t = Topology::random(25, 9.0, 3.0, 13);
    let readings: Vec<f64> = (0..25).map(|i| ((i * 7) % 13) as f64 - 4.0).collect();
    let r = aggregate_epoch(&t, &readings);
    let direct = readings
        .iter()
        .fold(Partial::IDENTITY, |acc, &v| acc.merge(Partial::of(v)));
    assert_eq!(r.aggregate, direct);
}

#[test]
fn overhearing_scales_with_density() {
    // Same traffic, denser radio range ⇒ more rx energy burned by
    // bystanders.
    let data = feeds(5, 128);
    let run = |range: f64| {
        let mut net = Network::new(Topology::random(6, 6.0, range, 3), EnergyModel::default());
        let r = net.simulate(&data, 128, &Strategy::Raw).unwrap();
        r.ledgers.iter().map(|l| l.rx).sum::<f64>()
    };
    let sparse = run(1.0);
    let dense = run(8.0); // everyone hears everyone
    assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
}
