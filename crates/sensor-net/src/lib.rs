//! # Sensor-network substrate
//!
//! The environment §3 of the paper assumes, built out so the compression
//! framework can be exercised end to end:
//!
//! * [`node`] — a sensor that buffers `N × M` samples and flushes each full
//!   buffer through its `SbrEncoder` (§3.2's batch model),
//! * [`topology`] — seeded geometric topologies with greedy geographic
//!   routing trees and radio-range neighbor sets,
//! * [`energy`] — the radio/CPU energy model (§3.1: one transmitted bit ≈
//!   1000 CPU instructions on a MICA mote; multi-hop relaying; broadcast
//!   overhearing by every node in the sender's range),
//! * [`base_station`] — per-sensor append-only logs of wire frames plus
//!   historical reconstruction queries (the log-file architecture of
//!   Figure 1),
//! * [`network`] — a discrete-event-ish driver tying the above together and
//!   an [`network::Strategy`] enum for comparing SBR against sending raw
//!   values or per-batch aggregates.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregation;
pub mod base_station;
pub mod energy;
pub mod fault;
pub mod link;
pub mod network;
pub mod node;
pub mod storage;
pub mod topology;

pub use base_station::{BaseStation, Receipt, StorageObs};
pub use energy::{Battery, EnergyLedger, EnergyModel};
pub use fault::FaultPlan;
pub use link::LossyLink;
pub use network::{Network, RecoveryStats, RunReport, Strategy};
pub use node::SensorNode;
pub use topology::Topology;

/// Identifier of a node in the network. Node 0 is always the base station.
pub type NodeId = usize;
