//! Seeded, deterministic fault injection for chaos runs.
//!
//! A [`FaultPlan`] sits on the *end-to-end* path between a sensor and the
//! base station (the per-hop [`LossyLink`](crate::LossyLink) models radio
//! attempts; this models everything the hops cannot see: queue drops,
//! duplicated routes, late delivery, bit rot in a relay's buffer, and the
//! node itself crashing). Every decision comes from one xorshift64 stream,
//! so a `(plan, seed)` pair replays the exact same chaos — failures found
//! by the chaos suites are reproducible by construction.

use bytes::Bytes;

use crate::NodeId;

/// Deterministic drop/duplicate/reorder/corrupt/crash schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability a frame is dropped end-to-end.
    pub drop_prob: f64,
    /// Probability a delivered frame is delivered twice.
    pub dup_prob: f64,
    /// Probability a frame is held back and delivered after its successor.
    pub reorder_prob: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_prob: f64,
    crash_at: Option<(NodeId, u64)>,
    state: u64,
    held: Option<Bytes>,
    drops: u64,
    dups: u64,
    reorders: u64,
    corrupts: u64,
    crashes: u64,
}

impl FaultPlan {
    /// A plan with every fault probability at zero — the identity channel.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            crash_at: None,
            state: seed | 1,
            held: None,
            drops: 0,
            dups: 0,
            reorders: 0,
            corrupts: 0,
            crashes: 0,
        }
    }

    fn checked(p: f64, what: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability must be in [0, 1]: got {p}"
        );
        p
    }

    /// Drop each frame with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = Self::checked(p, "drop");
        self
    }

    /// Duplicate each delivered frame with probability `p`.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_prob = Self::checked(p, "duplicate");
        self
    }

    /// Hold each frame past its successor with probability `p`.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder_prob = Self::checked(p, "reorder");
        self
    }

    /// Flip one byte of each frame with probability `p`.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = Self::checked(p, "corrupt");
        self
    }

    /// Crash (reboot) `node` right after it flushes its `chunk`-th batch
    /// (0-based). Fires once.
    pub fn with_crash_at(mut self, node: NodeId, chunk: u64) -> Self {
        self.crash_at = Some((node, chunk));
        self
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn roll(&mut self, p: f64) -> bool {
        // p = 0 never consumes the stream, so an all-zero plan is the
        // identity channel bit-for-bit regardless of seed.
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Should `node` crash now, having just flushed its `flushed`-th chunk
    /// (0-based)? Consumes the scheduled crash when it fires.
    pub fn crash_due(&mut self, node: NodeId, flushed: u64) -> bool {
        if self.crash_at == Some((node, flushed)) {
            self.crash_at = None;
            self.crashes += 1;
            true
        } else {
            false
        }
    }

    /// Push one frame through the faulty channel; returns what actually
    /// arrives at the far end, in arrival order (0, 1 or 2 frames, plus a
    /// previously held one).
    pub fn channel(&mut self, frame: &Bytes) -> Vec<Bytes> {
        let late = self.held.take();
        let mut out = Vec::new();
        if self.roll(self.drop_prob) {
            self.drops += 1;
        } else {
            let f = if self.roll(self.corrupt_prob) {
                self.corrupts += 1;
                self.flip_one_byte(frame)
            } else {
                frame.clone()
            };
            if self.roll(self.reorder_prob) {
                self.reorders += 1;
                self.held = Some(f);
            } else {
                out.push(f.clone());
                if self.roll(self.dup_prob) {
                    self.dups += 1;
                    out.push(f);
                }
            }
        }
        // A frame held on an earlier call arrives after the current one.
        out.extend(late);
        out
    }

    /// Release any still-held frame (end of run).
    pub fn drain(&mut self) -> Vec<Bytes> {
        self.held.take().into_iter().collect()
    }

    fn flip_one_byte(&mut self, frame: &Bytes) -> Bytes {
        let mut bytes = frame.to_vec();
        if !bytes.is_empty() {
            // lint:allow(panic-reachability): bytes is checked non-empty above
            let i = (self.next_u64() % bytes.len() as u64) as usize;
            let bit = (self.next_u64() % 8) as u32;
            if let Some(b) = bytes.get_mut(i) {
                *b ^= 1 << bit;
            }
        }
        Bytes::from(bytes)
    }

    /// Frames dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Frames duplicated so far.
    pub fn dups(&self) -> u64 {
        self.dups
    }

    /// Frames held back so far.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Frames corrupted so far.
    pub fn corrupts(&self) -> u64 {
        self.corrupts
    }

    /// Crashes fired so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 16])
    }

    #[test]
    fn zero_plan_is_identity() {
        let mut p = FaultPlan::new(42);
        for t in 0..20 {
            assert_eq!(p.channel(&frame(t)), vec![frame(t)]);
        }
        assert!(p.drain().is_empty());
        assert_eq!(
            (p.drops(), p.dups(), p.reorders(), p.corrupts()),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn same_seed_same_chaos() {
        let mk = || {
            FaultPlan::new(7)
                .with_drop(0.3)
                .with_dup(0.2)
                .with_reorder(0.2)
                .with_corrupt(0.1)
        };
        let (mut a, mut b) = (mk(), mk());
        for t in 0..200 {
            assert_eq!(a.channel(&frame(t as u8)), b.channel(&frame(t as u8)));
        }
        assert_eq!(a.drops(), b.drops());
        assert_eq!(a.corrupts(), b.corrupts());
    }

    #[test]
    fn reorder_holds_exactly_one_frame_and_swaps() {
        let mut p = FaultPlan::new(1).with_reorder(1.0);
        // Every frame gets held; the previous hostage arrives in its place.
        assert_eq!(p.channel(&frame(0)), Vec::<Bytes>::new());
        assert_eq!(p.channel(&frame(1)), vec![frame(0)]);
        assert_eq!(p.channel(&frame(2)), vec![frame(1)]);
        assert_eq!(p.drain(), vec![frame(2)]);
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let mut p = FaultPlan::new(9).with_corrupt(1.0);
        let out = p.channel(&frame(0));
        assert_eq!(out.len(), 1);
        let diff: u32 = out[0]
            .iter()
            .zip(frame(0).iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn crash_fires_once_at_the_scheduled_chunk() {
        let mut p = FaultPlan::new(3).with_crash_at(4, 2);
        assert!(!p.crash_due(4, 1));
        assert!(!p.crash_due(5, 2));
        assert!(p.crash_due(4, 2));
        assert!(!p.crash_due(4, 2), "fires once");
        assert_eq!(p.crashes(), 1);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut p = FaultPlan::new(11).with_drop(0.25);
        let n = 10_000;
        let delivered: usize = (0..n).map(|t| p.channel(&frame(t as u8)).len()).sum();
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }
}
