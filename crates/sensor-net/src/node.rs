//! A sensor node: sample buffering plus the embedded SBR encoder.
//!
//! §3.2: nodes do not transmit each new measurement; they fill an `N × M`
//! buffer and flush it as one compressed batch, letting the radio sleep in
//! between.

use sbr_core::codec;
use sbr_core::{SbrConfig, SbrEncoder, SbrError, Transmission};

use crate::NodeId;

/// A sensor with an `N × M` sample buffer and an SBR encoder.
#[derive(Debug)]
pub struct SensorNode {
    id: NodeId,
    encoder: SbrEncoder,
    buffer: Vec<Vec<f64>>,
    samples_per_signal: usize,
}

/// One flushed batch: the logical transmission plus its wire frame.
#[derive(Debug, Clone)]
pub struct Flush {
    /// The logical transmission.
    pub transmission: Transmission,
    /// Its byte framing, as it would cross the radio.
    pub frame: bytes::Bytes,
    /// Number of raw values the batch held.
    pub raw_values: usize,
}

impl SensorNode {
    /// Create a node recording `n_signals` quantities with buffer depth
    /// `samples_per_signal`.
    pub fn new(
        id: NodeId,
        n_signals: usize,
        samples_per_signal: usize,
        config: SbrConfig,
    ) -> Result<Self, SbrError> {
        let encoder = SbrEncoder::new(n_signals, samples_per_signal, config)?;
        Ok(SensorNode {
            id,
            encoder,
            buffer: vec![Vec::with_capacity(samples_per_signal); n_signals],
            samples_per_signal,
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of samples currently buffered per signal.
    pub fn buffered(&self) -> usize {
        self.buffer[0].len()
    }

    /// Immutable access to the embedded encoder (base-signal state, stats).
    pub fn encoder(&self) -> &SbrEncoder {
        &self.encoder
    }

    /// Record one sample per signal. When the buffer fills, it is
    /// compressed and drained, and the flush is returned.
    pub fn record(&mut self, sample: &[f64]) -> Result<Option<Flush>, SbrError> {
        if sample.len() != self.buffer.len() {
            return Err(SbrError::ShapeMismatch {
                expected_signals: self.buffer.len(),
                expected_len: 1,
                got: (sample.len(), 1),
            });
        }
        for (row, &v) in self.buffer.iter_mut().zip(sample) {
            row.push(v);
        }
        if self.buffered() < self.samples_per_signal {
            return Ok(None);
        }
        let tx = self.encoder.encode(&self.buffer)?;
        let raw_values = self.buffer.len() * self.samples_per_signal;
        for row in &mut self.buffer {
            row.clear();
        }
        let frame = {
            let obs = &self.encoder.config().obs;
            let _span = obs.span("sbr_core.codec.encode_ns", &obs.codec_encode_ns);
            codec::encode(&tx)
        };
        Ok(Some(Flush {
            transmission: tx,
            frame,
            raw_values,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> SensorNode {
        SensorNode::new(5, 2, 32, SbrConfig::new(40, 32)).unwrap()
    }

    #[test]
    fn flush_fires_exactly_when_full() {
        let mut n = node();
        for t in 0..31 {
            let out = n.record(&[t as f64, (t * 2) as f64]).unwrap();
            assert!(out.is_none(), "flushed early at {t}");
        }
        let out = n.record(&[31.0, 62.0]).unwrap();
        let flush = out.expect("buffer full, must flush");
        assert_eq!(flush.raw_values, 64);
        assert_eq!(flush.transmission.seq, 0);
        assert_eq!(n.buffered(), 0);
    }

    #[test]
    fn consecutive_batches_increment_seq() {
        let mut n = node();
        let mut seqs = Vec::new();
        for t in 0..96 {
            if let Some(f) = n.record(&[(t % 7) as f64, (t % 5) as f64]).unwrap() {
                seqs.push(f.transmission.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn frame_parses_back() {
        let mut n = node();
        let mut flush = None;
        for t in 0..32 {
            flush = n.record(&[t as f64, -(t as f64)]).unwrap();
        }
        let flush = flush.unwrap();
        let parsed = sbr_core::codec::decode(&mut flush.frame.clone()).unwrap();
        assert_eq!(parsed, flush.transmission);
    }

    #[test]
    fn wrong_sample_width_rejected() {
        let mut n = node();
        assert!(n.record(&[1.0]).is_err());
        assert!(n.record(&[1.0, 2.0, 3.0]).is_err());
    }
}
