//! A sensor node: sample buffering plus the embedded SBR encoder.
//!
//! §3.2: nodes do not transmit each new measurement; they fill an `N × M`
//! buffer and flush it as one compressed batch, letting the radio sleep in
//! between.
//!
//! On top of that, the node implements the sender half of the end-to-end
//! ARQ protocol: every flushed frame enters a **bounded retransmission
//! buffer** (when ARQ is enabled) until a cumulative ACK from the base
//! station covers it. If the buffer overflows — the link was down longer
//! than the node can remember — or the node reboots, the node bumps its
//! **epoch** and emits a resync frame carrying its pre-encode base-signal
//! snapshot, letting the decoder re-anchor: the gapped chunks are lost,
//! every later chunk is exact.

use std::collections::VecDeque;

use sbr_core::codec;
use sbr_core::{Frame, SbrConfig, SbrEncoder, SbrError, Transmission};
use sbr_obs::{EventKind, FrameId};

use crate::NodeId;

/// A sensor with an `N × M` sample buffer and an SBR encoder.
#[derive(Debug)]
pub struct SensorNode {
    id: NodeId,
    encoder: SbrEncoder,
    buffer: Vec<Vec<f64>>,
    samples_per_signal: usize,
    config: SbrConfig,
    epoch: u32,
    needs_resync: bool,
    /// Un-ACKed frames, oldest first. `None` capacity = ARQ disabled
    /// (direct-delivery substrate, nothing is tracked).
    retx: VecDeque<PendingFrame>,
    retx_capacity: Option<usize>,
    retx_overflows: u64,
}

/// One flushed batch: the logical transmission plus its wire frame.
#[derive(Debug, Clone)]
pub struct Flush {
    /// The logical transmission.
    pub transmission: Transmission,
    /// Its byte framing (v2), as it would cross the radio.
    pub frame: bytes::Bytes,
    /// Number of raw values the batch held.
    pub raw_values: usize,
    /// Epoch the frame was emitted under.
    pub epoch: u32,
    /// Whether this flush re-anchors the decoder (overflow or reboot).
    pub resync: bool,
}

/// An encoded frame waiting for a cumulative ACK from the base station.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    /// Epoch the frame belongs to (always the node's current epoch — the
    /// queue is cleared whenever the epoch bumps).
    pub epoch: u32,
    /// Sequence number of the embedded transmission.
    pub seq: u64,
    /// The serialized v2 frame.
    pub bytes: bytes::Bytes,
}

impl SensorNode {
    /// Create a node recording `n_signals` quantities with buffer depth
    /// `samples_per_signal`.
    pub fn new(
        id: NodeId,
        n_signals: usize,
        samples_per_signal: usize,
        config: SbrConfig,
    ) -> Result<Self, SbrError> {
        let encoder = SbrEncoder::new(n_signals, samples_per_signal, config.clone())?;
        Ok(SensorNode {
            id,
            encoder,
            buffer: vec![Vec::with_capacity(samples_per_signal); n_signals],
            samples_per_signal,
            config,
            epoch: 0,
            needs_resync: false,
            retx: VecDeque::new(),
            retx_capacity: None,
            retx_overflows: 0,
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of samples currently buffered per signal.
    pub fn buffered(&self) -> usize {
        self.buffer.first().map_or(0, Vec::len)
    }

    /// Immutable access to the embedded encoder (base-signal state, stats).
    pub fn encoder(&self) -> &SbrEncoder {
        &self.encoder
    }

    /// Current resync epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Enable end-to-end ARQ: flushed frames are retained (up to
    /// `capacity` of them) until [`SensorNode::ack`] covers them; on
    /// overflow the node resyncs instead of silently dropping history.
    ///
    /// # Panics
    ///
    /// If `capacity` is 0 — the node must be able to hold at least the
    /// frame it is about to send.
    pub fn enable_arq(&mut self, capacity: usize) {
        assert!(capacity >= 1, "retransmission buffer needs capacity >= 1");
        self.retx_capacity = Some(capacity);
    }

    /// Frames currently awaiting an ACK, oldest first.
    pub fn pending(&self) -> impl Iterator<Item = &PendingFrame> {
        self.retx.iter()
    }

    /// Number of frames awaiting an ACK.
    pub fn pending_depth(&self) -> usize {
        self.retx.len()
    }

    /// Times the retransmission buffer overflowed (each one cost a resync).
    pub fn retx_overflows(&self) -> u64 {
        self.retx_overflows
    }

    /// Apply a cumulative ACK: the base station has durably applied every
    /// frame of `epoch` below `next_seq`. Returns how many pending frames
    /// that released. Stale ACKs (earlier epoch) are ignored — the queue
    /// only ever holds current-epoch frames.
    pub fn ack(&mut self, epoch: u32, next_seq: u64) -> usize {
        if epoch != self.epoch {
            return 0;
        }
        let before = self.retx.len();
        self.retx.retain(|p| p.seq >= next_seq);
        before - self.retx.len()
    }

    /// Simulate a crash + reboot: RAM state (sample buffer, encoder
    /// dictionary, retransmission queue) is gone; the epoch — kept in
    /// non-volatile storage, a u32 — survives and bumps, so the first
    /// flush after the reboot is a resync frame with an empty snapshot and
    /// sequence numbers restarting at 0.
    pub fn reboot(&mut self) -> Result<(), SbrError> {
        self.encoder = SbrEncoder::new(
            self.buffer.len(),
            self.samples_per_signal,
            self.config.clone(),
        )?;
        for row in &mut self.buffer {
            row.clear();
        }
        self.retx.clear();
        self.epoch += 1;
        self.needs_resync = true;
        Ok(())
    }

    /// Record one sample per signal. When the buffer fills, it is
    /// compressed and drained, and the flush is returned.
    ///
    /// With ARQ enabled the flush also enters the retransmission buffer;
    /// if that buffer is already full, the node gives up on the un-ACKed
    /// history first — epoch bump, queue cleared — and the flush goes out
    /// as a resync frame snapshotting the pre-encode base signal.
    pub fn record(&mut self, sample: &[f64]) -> Result<Option<Flush>, SbrError> {
        if sample.len() != self.buffer.len() {
            return Err(SbrError::ShapeMismatch {
                expected_signals: self.buffer.len(),
                expected_len: 1,
                got: (sample.len(), 1),
            });
        }
        for (row, &v) in self.buffer.iter_mut().zip(sample) {
            row.push(v);
        }
        if self.buffered() < self.samples_per_signal {
            return Ok(None);
        }
        if let Some(cap) = self.retx_capacity {
            if self.retx.len() >= cap {
                // Overflow: sacrifice the un-ACKed history, re-anchor.
                self.retx.clear();
                self.epoch += 1;
                self.needs_resync = true;
                self.retx_overflows += 1;
            }
        }
        let resync = self.needs_resync;
        // Snapshot *before* encoding: the receiver installs it and then
        // decodes the transmission with ordinary shift semantics. After a
        // reboot the base is empty, so the snapshot is too.
        let snapshot = if resync {
            self.encoder.base().values().to_vec()
        } else {
            Vec::new()
        };
        let tx = self.encoder.encode(&self.buffer)?;
        let raw_values = self.buffer.len() * self.samples_per_signal;
        for row in &mut self.buffer {
            row.clear();
        }
        let frame = {
            let obs = &self.encoder.config().obs;
            let _span = obs.span("sbr_core.codec.encode_ns", &obs.codec_encode_ns);
            let wire = if resync {
                obs.resync_frames.inc();
                Frame::resync(self.epoch, snapshot, tx.clone())
            } else {
                Frame::data(self.epoch, tx.clone())
            };
            codec::encode_v2(&wire)
        };
        self.needs_resync = false;
        // Lifecycle attribution: the encoder's timeline (shared with the
        // network's when one is attached) learns the frame exists. A
        // resync frame's `encoded` event is the trigger preceding the
        // station's eventual `resynced` verdict.
        let timeline = &self.encoder.config().obs.timeline;
        let frame_id = FrameId::new(self.id as u32, self.epoch, tx.seq);
        timeline.record(frame_id, EventKind::Encoded);
        if self.retx_capacity.is_some() {
            self.retx.push_back(PendingFrame {
                epoch: self.epoch,
                seq: tx.seq,
                bytes: frame.clone(),
            });
            timeline.record(frame_id, EventKind::Queued);
        }
        Ok(Some(Flush {
            transmission: tx,
            frame,
            raw_values,
            epoch: self.epoch,
            resync,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbr_core::{Decoder, FrameKind};

    fn node() -> SensorNode {
        SensorNode::new(5, 2, 32, SbrConfig::new(40, 32)).unwrap()
    }

    fn drive(n: &mut SensorNode, base: f64) -> Option<Flush> {
        let mut out = None;
        for t in 0..32 {
            out = n
                .record(&[base + t as f64, base - t as f64])
                .unwrap()
                .or(out);
        }
        out
    }

    #[test]
    fn flush_fires_exactly_when_full() {
        let mut n = node();
        for t in 0..31 {
            let out = n.record(&[t as f64, (t * 2) as f64]).unwrap();
            assert!(out.is_none(), "flushed early at {t}");
        }
        let out = n.record(&[31.0, 62.0]).unwrap();
        let flush = out.expect("buffer full, must flush");
        assert_eq!(flush.raw_values, 64);
        assert_eq!(flush.transmission.seq, 0);
        assert_eq!(flush.epoch, 0);
        assert!(!flush.resync);
        assert_eq!(n.buffered(), 0);
    }

    #[test]
    fn consecutive_batches_increment_seq() {
        let mut n = node();
        let mut seqs = Vec::new();
        for t in 0..96 {
            if let Some(f) = n.record(&[(t % 7) as f64, (t % 5) as f64]).unwrap() {
                seqs.push(f.transmission.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn frame_parses_back() {
        let mut n = node();
        let flush = drive(&mut n, 0.0).unwrap();
        let parsed = codec::decode_any(&mut flush.frame.clone()).unwrap();
        assert_eq!(parsed, Frame::data(0, flush.transmission));
    }

    #[test]
    fn wrong_sample_width_rejected() {
        let mut n = node();
        assert!(n.record(&[1.0]).is_err());
        assert!(n.record(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn arq_tracks_and_acks_cumulatively() {
        let mut n = node();
        n.enable_arq(8);
        for k in 0..3 {
            drive(&mut n, k as f64 * 10.0).unwrap();
        }
        assert_eq!(n.pending_depth(), 3);
        assert_eq!(
            n.pending().map(|p| p.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Cumulative ACK through seq 1 releases two frames.
        assert_eq!(n.ack(0, 2), 2);
        assert_eq!(n.pending_depth(), 1);
        // Stale-epoch ACK is a no-op.
        assert_eq!(n.ack(5, 99), 0);
        assert_eq!(n.pending_depth(), 1);
    }

    #[test]
    fn overflow_clears_queue_and_emits_resync() {
        let mut n = node();
        n.enable_arq(2);
        drive(&mut n, 0.0).unwrap();
        drive(&mut n, 1.0).unwrap();
        assert_eq!(n.pending_depth(), 2);
        // Third un-ACKed flush overflows the buffer: history sacrificed,
        // epoch bumps, the flush itself is a resync frame.
        let f = drive(&mut n, 2.0).unwrap();
        assert!(f.resync);
        assert_eq!(f.epoch, 1);
        assert_eq!(n.retx_overflows(), 1);
        assert_eq!(n.pending_depth(), 1);
        let frame = codec::decode_any(&mut f.frame.clone()).unwrap();
        assert_eq!(frame.kind, FrameKind::Resync);
        assert_eq!(frame.epoch, 1);
        // Snapshot is the pre-encode base: installing it lets a decoder
        // that missed everything decode this chunk exactly.
        let mut d = Decoder::new();
        d.decode_frame(&frame).unwrap();
        assert_eq!(d.base().unwrap().values(), n.encoder().base().values());
    }

    #[test]
    fn reboot_restarts_sequences_under_new_epoch() {
        let mut n = node();
        n.enable_arq(4);
        drive(&mut n, 0.0).unwrap();
        drive(&mut n, 1.0).unwrap();
        n.reboot().unwrap();
        assert_eq!(n.pending_depth(), 0);
        let f = drive(&mut n, 2.0).unwrap();
        assert!(f.resync);
        assert_eq!(f.epoch, 1);
        assert_eq!(f.transmission.seq, 0, "fresh encoder restarts at 0");
        let frame = codec::decode_any(&mut f.frame.clone()).unwrap();
        assert_eq!(frame.kind, FrameKind::Resync);
        assert!(frame.snapshot.is_empty(), "reboot snapshot is empty");
        // A decoder mid-stream re-anchors on it.
        let mut d = Decoder::new();
        d.decode_frame(&frame).unwrap();
        assert_eq!(d.next_seq(), 1);
        assert_eq!(d.epoch(), 1);
    }
}
